//! Pinned scenario corpus: eight lifecycle scenarios — originally found
//! by the fuzzer and shrunk by hand to the clause that makes each one
//! interesting — checked against all four lifecycle properties, with
//! their outcomes asserted byte-for-byte identical across two in-process
//! runs. This is the regression net under the `trust-vo-scenario` crate:
//! a behavior change anywhere in the formation/operation/dissolution
//! path, the fault injector, the journal, or the admission gate shows up
//! here as an outcome-summary diff long before it breaks a property.
//!
//! Every corpus entry is also a valid `trustvo scenario repro` command
//! line (asserted via the args round trip), so any diff observed here
//! can be replayed from a shell.

use trust_vo::scenario_dsl::{check_scenario, Churn, ManaClause, Scenario, Storm, Window};

/// The corpus: `(name, scenario)`. Keep these *small* — each is checked
/// two to four ways (replay, parallel, journal cuts) per run.
fn corpus() -> Vec<(&'static str, Scenario)> {
    vec![
        ("minimal", Scenario::minimal(7)),
        (
            // A storm revoking a member's certificate right after
            // admission: the revoked certificate must fail verification
            // while its peers keep verifying.
            "revocation-after-admission",
            Scenario {
                parties: 2,
                storms: vec![Storm { revoke: 1 }],
                ..Scenario::minimal(13)
            },
        ),
        (
            // A partition cutting the TN service mid-formation (the
            // phase-2 window of the first admissions): calls refuse with
            // typed faults until the partition heals, then formation
            // completes.
            "partition-mid-formation",
            Scenario {
                parties: 2,
                depth: 2,
                loss_pct: 5,
                partitions: vec![Window {
                    start_pct: 50,
                    len_ms: 800,
                }],
                ..Scenario::minimal(29)
            },
        ),
        (
            // Churn under load: a lossy link, then a replacement (the
            // spare provider is admitted through a fresh negotiation)
            // and a renewal during the operation phase.
            "churn-and-replacement-under-load",
            Scenario {
                parties: 2,
                loss_pct: 20,
                storms: vec![Storm { revoke: 1 }],
                churn: vec![Churn::Replace { role: 1 }, Churn::Renew { member: 0 }],
                ..Scenario::minimal(13)
            },
        ),
        (
            // A crash outage wiping the service's volatile sessions
            // mid-formation: the journal-backed database survives, and
            // the clients restart their negotiations.
            "crash-mid-formation",
            Scenario {
                parties: 3,
                depth: 2,
                loss_pct: 20,
                crashes: vec![Window {
                    start_pct: 40,
                    len_ms: 900,
                }],
                ..Scenario::minimal(17)
            },
        ),
        (
            // An uncoverable flow budget: capacity below one call's cost,
            // so the gate refuses every start with a u64::MAX hint and
            // formation fails — deterministically.
            "uncoverable-flow-budget",
            Scenario {
                parties: 3,
                mana: Some(ManaClause {
                    capacity_milli: 500,
                    refill_milli: 700,
                }),
                ..Scenario::minimal(19)
            },
        ),
        (
            // Ontology drift: paraphrased concept lookups resolved by
            // similarity mapping, feeding the outcome's `mapped` count.
            "ontology-drift",
            Scenario {
                parties: 2,
                drift: 4,
                ..Scenario::minimal(31)
            },
        ),
        (
            // Heavy loss with deeper interlocking chains: retries and
            // backoff all the way down, still forming.
            "lossy-deep-chains",
            Scenario {
                parties: 3,
                depth: 2,
                alternatives: 2,
                loss_pct: 20,
                ..Scenario::minimal(11)
            },
        ),
    ]
}

#[test]
fn corpus_passes_and_outcomes_replay_byte_for_byte() {
    for (name, scenario) in corpus() {
        let first = check_scenario(&scenario)
            .unwrap_or_else(|f| panic!("corpus '{name}' violated a property: {f}"));
        let second = check_scenario(&scenario)
            .unwrap_or_else(|f| panic!("corpus '{name}' violated a property on rerun: {f}"));
        assert_eq!(
            first.summary(),
            second.summary(),
            "corpus '{name}': outcome summary must be byte-identical across reruns"
        );
    }
}

#[test]
fn corpus_scenarios_produce_their_expected_shapes() {
    let outcomes: std::collections::BTreeMap<&str, _> = corpus()
        .into_iter()
        .map(|(name, s)| (name, check_scenario(&s).expect(name)))
        .collect();

    let formed = |name: &str| {
        outcomes[name]
            .formed
            .as_ref()
            .unwrap_or_else(|e| panic!("'{name}' must form: {e}"))
    };

    assert_eq!(formed("minimal").members.len(), 1);
    assert_eq!(formed("revocation-after-admission").revoked, 1);
    assert!(
        outcomes["partition-mid-formation"].partitioned > 0,
        "the partition window must refuse at least one call"
    );
    let churned = formed("churn-and-replacement-under-load");
    assert!(
        churned.churn[0].contains("-> Spare001"),
        "replacement must land on the spare: {}",
        churned.churn[0]
    );
    assert!(outcomes["crash-mid-formation"].crashes > 0);
    let crashed = formed("crash-mid-formation");
    assert!(crashed.resumes + crashed.restarts > 0);
    assert!(outcomes["uncoverable-flow-budget"].refusals > 0);
    assert!(outcomes["uncoverable-flow-budget"].formed.is_err());
    assert!(outcomes["ontology-drift"].mapped >= 3);
    assert!(formed("lossy-deep-chains").retries > 0);
}

#[test]
fn corpus_round_trips_through_repro_command_lines() {
    for (name, scenario) in corpus() {
        let parsed = Scenario::from_args(&scenario.repro_args())
            .unwrap_or_else(|e| panic!("corpus '{name}' repro args must parse: {e}"));
        assert_eq!(parsed, scenario, "corpus '{name}' round trip");
        assert!(scenario
            .repro_command()
            .starts_with("trustvo scenario repro --seed"));
    }
}
