//! Cross-crate XML interop: credentials and policies survive the full
//! serialize → store → query → parse → verify pipeline (the prototype's
//! Oracle/MySQL round trip, §6.3).

use trust_vo::credential::{Attribute, Credential, CredentialAuthority, TimeRange, Timestamp};
use trust_vo::crypto::KeyPair;
use trust_vo::policy::xml::{policy_from_xml, policy_to_xml};
use trust_vo::policy::{Condition, DisclosurePolicy, Resource, Term};
use trust_vo::store::Database;
use trust_vo::xmldoc::XPathExpr;

fn window() -> TimeRange {
    TimeRange::one_year_from(Timestamp::parse_iso("2009-10-26T21:32:52").unwrap())
}

#[test]
fn credential_survives_store_roundtrip_and_still_verifies() {
    let mut ca = CredentialAuthority::new("INFN");
    let holder = KeyPair::from_seed(b"holder");
    let cred = ca
        .issue(
            "ISO9000Certified",
            "Aerospace Company",
            holder.public,
            vec![
                Attribute::new("QualityRegulation", "UNI EN ISO 9000"),
                Attribute::new("AuditScore", 97i64),
                Attribute::new("Audited", true),
            ],
            window(),
        )
        .unwrap();

    let db = Database::new();
    db.with_collection("credentials", |c| {
        c.put(cred.id().0.as_str(), cred.to_xml());
    });

    // Query it back by an XPath condition, as the TN service does.
    let found = db.with_collection("credentials", |c| {
        c.find(&XPathExpr::parse("//credType = 'ISO9000Certified'").unwrap())
    });
    let (_, doc) = found.expect("stored credential matches");
    let text = trust_vo::xmldoc::to_string(&doc);
    let parsed = Credential::from_xml(&trust_vo::xmldoc::parse(&text).unwrap()).unwrap();
    assert_eq!(parsed, cred);
    assert!(parsed.verify_signature().is_ok());
    assert_eq!(
        parsed.attr("AuditScore"),
        Some(&trust_vo::credential::AttrValue::Int(97))
    );
}

#[test]
fn policy_survives_store_roundtrip() {
    let policy = DisclosurePolicy::rule(
        "vo-portal",
        Resource::service("VoMembership").with_attr("vo", "AircraftOptimization"),
        vec![
            Term::of_type("ISO9000Certified").where_attr("QualityRegulation", "UNI EN ISO 9000"),
            Term::of_concept("BusinessProof")
                .with_condition(Condition::parse("//content/Issuer = 'BBB'").unwrap()),
        ],
    );
    let db = Database::new();
    db.with_collection("policies", |c| {
        c.put("vo-portal", policy_to_xml(&policy));
    });
    let doc = db
        .with_collection("policies", |c| c.get(&"vo-portal".into()).cloned())
        .unwrap();
    let text = trust_vo::xmldoc::to_string(&doc);
    let back = policy_from_xml(&trust_vo::xmldoc::parse(&text).unwrap()).unwrap();
    assert_eq!(back, policy);
}

#[test]
fn tampered_stored_credential_fails_verification() {
    let mut ca = CredentialAuthority::new("INFN");
    let holder = KeyPair::from_seed(b"holder");
    let cred = ca
        .issue(
            "T",
            "holder",
            holder.public,
            vec![Attribute::new("k", "honest")],
            window(),
        )
        .unwrap();
    // An attacker edits the stored XML.
    let mut doc = cred.to_xml();
    let text = trust_vo::xmldoc::to_string(&doc).replace("honest", "forged!");
    doc = trust_vo::xmldoc::parse(&text).unwrap();
    let parsed = Credential::from_xml(&doc).unwrap();
    assert!(parsed.verify_signature().is_err());
}

#[test]
fn profile_document_queryable_with_xpath() {
    let mut ca = CredentialAuthority::new("CA");
    let holder = KeyPair::from_seed(b"holder");
    let mut profile = trust_vo::credential::XProfile::new("holder");
    for (ty, sens) in [
        ("A", trust_vo::credential::Sensitivity::Low),
        ("B", trust_vo::credential::Sensitivity::High),
    ] {
        let cred = ca
            .issue(ty, "holder", holder.public, vec![], window())
            .unwrap();
        profile.add_with_sensitivity(cred, sens);
    }
    let doc = profile.to_xml();
    // Count high-sensitivity credentials via an attribute predicate.
    let sel = trust_vo::xmldoc::Selector::parse("//credential[@sensitivity='high']").unwrap();
    assert_eq!(sel.select(&doc).len(), 1);
    let sel = trust_vo::xmldoc::Selector::parse("//credential/@credID").unwrap();
    assert_eq!(sel.values(&doc).len(), 2);
}

#[test]
fn store_versioning_keeps_policy_history() {
    // The identification phase may revise policies; prior revisions stay
    // auditable.
    let v1 = DisclosurePolicy::deliv("p", Resource::service("VoMembership"));
    let v2 = DisclosurePolicy::rule(
        "p",
        Resource::service("VoMembership"),
        vec![Term::of_type("ISO9000Certified")],
    );
    let db = Database::new();
    db.with_collection("policies", |c| {
        c.put("p", policy_to_xml(&v1));
        c.put("p", policy_to_xml(&v2));
    });
    let (r1, r2) = db.with_collection("policies", |c| {
        (
            c.get_revision(&"p".into(), 1).cloned(),
            c.get_revision(&"p".into(), 2).cloned(),
        )
    });
    assert_eq!(policy_from_xml(&r1.unwrap()).unwrap(), v1);
    assert_eq!(policy_from_xml(&r2.unwrap()).unwrap(), v2);
}
