//! End-to-end observability: a formation run on an instrumented clock
//! must emit a span for every negotiation phase, parent-link them under
//! the formation spans, and report counters that exactly match the
//! engine's own transcript/cache accounting — serial and parallel alike.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use trust_vo::negotiation::{
    negotiate, ConcurrentSequenceCache, NegotiationConfig, Strategy, Transcript,
};
use trust_vo::netsim::{FaultPlan, LinkProfile, NetSim};
use trust_vo::obs::{Collector, MetricsSnapshot, Record, SpanLink, TraceContext};
use trust_vo::soa::simclock::SimClock;
use trust_vo::soa::{Envelope, ResumePolicy, RetryPolicy, ServiceBus, TnService, Transport};
use trust_vo::store::Database;
use trust_vo::vo::mailbox::MailboxSystem;
use trust_vo::vo::{
    form_vo, form_vo_cached, form_vo_parallel, form_vo_resilient, register_formation_parties,
    ReputationLedger,
};
use trust_vo::xmldoc::Element;
use trust_vo_bench::workloads::{self, ParallelJoinWorld};

fn observed_clock() -> (SimClock, Collector) {
    let clock = workloads::free_clock();
    let collector = Collector::new();
    clock.attach_obs(&collector);
    (clock, collector)
}

/// Re-run every (role, accepting-candidate) negotiation of `world`
/// standalone — the same pairs, parties, and config the formation path
/// uses — and return the transcripts. Each role has exactly one
/// accepting candidate in this workload, so this is precisely the set of
/// negotiations `form_vo` performs.
fn independent_transcripts(world: &ParallelJoinWorld, clock: &SimClock) -> Vec<Transcript> {
    let mut transcripts = Vec::new();
    for role in &world.contract.roles {
        for description in world.registry.find_by_capability(&role.capability) {
            let Some(candidate) = world.providers.get(&description.provider) else {
                continue;
            };
            if !candidate.accepts_invitations {
                continue;
            }
            let mut initiator_party = world.initiator.party.clone();
            if let Some(set) = world.contract.policies_for(&role.name) {
                for policy in set.iter() {
                    initiator_party.policies.add(policy.clone());
                }
            }
            let cfg = NegotiationConfig::new(Strategy::Standard, clock.timestamp());
            let outcome = negotiate(&candidate.party, &initiator_party, "VoMembership", &cfg)
                .expect("workload negotiations succeed");
            transcripts.push(outcome.transcript);
        }
    }
    transcripts
}

fn span_records(collector: &Collector) -> Vec<trust_vo::obs::SpanRecord> {
    collector
        .records()
        .into_iter()
        .filter_map(|r| match r {
            Record::Span(s) => Some(s),
            _ => None,
        })
        .collect()
}

#[test]
fn serial_formation_emits_phase_spans_and_transcript_exact_counters() {
    let world = workloads::parallel_join_world(3, 4, 2);
    let (clock, collector) = observed_clock();
    let vo = form_vo(
        world.contract.clone(),
        &world.initiator,
        &world.providers,
        &world.registry,
        &mut MailboxSystem::new(),
        &mut ReputationLedger::new(),
        &clock,
        Strategy::Standard,
    )
    .expect("formation succeeds");
    assert_eq!(vo.members().len(), 3);

    // Span structure: one root, one join attempt per member, and under
    // each attempt exactly one span per negotiation phase.
    let spans = span_records(&collector);
    let roots: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "formation.form_vo")
        .collect();
    assert_eq!(roots.len(), 1);
    assert_eq!(roots[0].parent, None);
    let attempts: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "formation.join_attempt")
        .collect();
    assert_eq!(attempts.len(), 3);
    for attempt in &attempts {
        assert_eq!(attempt.parent, Some(roots[0].id), "attempt under root");
        for phase in ["negotiation.policy_phase", "negotiation.exchange_phase"] {
            let children: Vec<_> = spans
                .iter()
                .filter(|s| s.name == phase && s.parent == Some(attempt.id))
                .collect();
            assert_eq!(children.len(), 1, "one {phase} span per join attempt");
        }
    }

    // Counters must equal the engine's own accounting, recomputed by
    // running the identical negotiations standalone.
    let transcripts = independent_transcripts(&world, &workloads::free_clock());
    assert_eq!(transcripts.len(), 3);
    let sum =
        |f: fn(&Transcript) -> usize| -> u64 { transcripts.iter().map(|t| f(t) as u64).sum() };
    let snap = collector.metrics();
    assert_eq!(
        snap.counter("negotiation.messages"),
        sum(Transcript::message_count)
    );
    assert_eq!(
        snap.counter("negotiation.policy_rounds"),
        sum(|t| t.policy_rounds)
    );
    assert_eq!(
        snap.counter("negotiation.policies_disclosed"),
        sum(|t| t.policies_disclosed)
    );
    assert_eq!(
        snap.counter("negotiation.policy_evaluations"),
        sum(|t| t.policies_disclosed)
    );
    assert_eq!(
        snap.counter("negotiation.credentials_disclosed"),
        sum(|t| t.credentials_disclosed)
    );
    assert_eq!(
        snap.counter("negotiation.verifications"),
        sum(|t| t.verifications)
    );
    assert_eq!(
        snap.counter("negotiation.ownership_proofs"),
        sum(|t| t.ownership_proofs)
    );
    assert_eq!(
        snap.counter("negotiation.failed_alternatives"),
        sum(|t| t.failed_alternatives)
    );
    assert_eq!(snap.counter("negotiation.failures"), 0);
    assert_eq!(snap.counter("formation.attempts"), 3);
    assert_eq!(snap.counter("formation.admissions"), 3);
}

#[test]
fn observed_cache_counters_equal_cache_stats() {
    let world = workloads::parallel_join_world(3, 4, 2);
    let (clock, collector) = observed_clock();
    let cache = ConcurrentSequenceCache::observed(collector.registry().expect("collector enabled"));
    for round in 0..2 {
        let vo = form_vo_cached(
            world.contract.clone(),
            &world.initiator,
            &world.providers,
            &world.registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &clock,
            Strategy::Standard,
            &cache,
        )
        .expect("cached formation succeeds");
        assert_eq!(vo.members().len(), 3, "round {round}");
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, 3, "first round misses");
    assert_eq!(stats.hits, 3, "second round hits");
    let snap = collector.metrics();
    assert_eq!(snap.counter("cache.hits"), stats.hits);
    assert_eq!(snap.counter("cache.misses"), stats.misses);
    assert_eq!(snap.counter("cache.invalidations"), stats.invalidations);
    assert_eq!(snap.counter("cache.evictions"), stats.evictions);
}

/// The counters the serial/parallel equivalence covers: everything the
/// negotiation engine and the sequence cache record.
fn engine_counters(snap: &MetricsSnapshot) -> BTreeMap<String, u64> {
    snap.counters
        .iter()
        .filter(|(name, _)| name.starts_with("negotiation.") || name.starts_with("cache."))
        .map(|(name, value)| (name.clone(), *value))
        .collect()
}

#[test]
fn parallel_formation_matches_serial_counter_totals() {
    for applicants in [4usize, 16, 64] {
        let world = workloads::parallel_join_world(applicants, 4, 2);

        let (serial_clock, serial_collector) = observed_clock();
        let serial_cache = ConcurrentSequenceCache::observed(
            serial_collector.registry().expect("collector enabled"),
        );
        let serial = form_vo_cached(
            world.contract.clone(),
            &world.initiator,
            &world.providers,
            &world.registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &serial_clock,
            Strategy::Standard,
            &serial_cache,
        )
        .expect("serial formation succeeds");

        let (parallel_clock, parallel_collector) = observed_clock();
        let parallel_cache = ConcurrentSequenceCache::observed(
            parallel_collector.registry().expect("collector enabled"),
        );
        let parallel = form_vo_parallel(
            world.contract.clone(),
            &world.initiator,
            &world.providers,
            &world.registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &parallel_clock,
            Strategy::Standard,
            &parallel_cache,
            4,
        )
        .expect("parallel formation succeeds");

        assert_eq!(serial.members().len(), applicants);
        assert_eq!(parallel.members().len(), applicants);
        let serial_counters = engine_counters(&serial_collector.metrics());
        let parallel_counters = engine_counters(&parallel_collector.metrics());
        assert_eq!(
            serial_counters, parallel_counters,
            "serial and parallel counter totals diverge at {applicants} applicants"
        );
        assert_eq!(
            parallel_collector.metrics().counter("formation.speculated"),
            applicants as u64,
            "one speculation per (role, accepting candidate)"
        );
    }
}

#[test]
fn lossy_netsim_formation_leaves_no_orphan_bus_spans() {
    // A full resilient formation at 20% per-direction loss: every span
    // the bus side emits — negotiations, per-attempt deliveries, backoff
    // waits, transits, dispatches, service operations, checkpoints —
    // must carry the formation root's trace id and be reachable from the
    // root through parent links alone.
    let world = workloads::parallel_join_world(3, 4, 2);
    let (clock, collector) = observed_clock();
    let bus = ServiceBus::new(clock.clone());
    let svc = Arc::new(TnService::new(clock, Database::new()));
    register_formation_parties(&svc, &world.contract, &world.initiator, &world.providers);
    bus.register("tn", svc);
    let net = NetSim::new(bus, FaultPlan::lossy(1234, 0.2));

    let (vo, stats) = form_vo_resilient(
        world.contract.clone(),
        &world.initiator,
        &world.providers,
        &world.registry,
        &mut MailboxSystem::new(),
        &mut ReputationLedger::new(),
        &net,
        "tn",
        Strategy::Standard,
        &RetryPolicy::standard(),
        &ResumePolicy::standard(),
        7,
    )
    .expect("formation survives 20% loss");
    assert_eq!(vo.members().len(), 3);
    assert!(
        stats.retries > 0,
        "20% loss should force at least one retry"
    );
    assert!(
        net.metrics().drops.get() > 0,
        "0.2 loss plan dropped nothing"
    );

    let spans = span_records(&collector);
    let by_id: HashMap<u64, &trust_vo::obs::SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let root = spans
        .iter()
        .find(|s| s.name == "formation.form_vo_resilient")
        .expect("resilient formation root span");
    assert_ne!(root.trace_id, 0, "formation root mints a trace");

    let bus_side = [
        "client.negotiation",
        "client.call",
        "soa.attempt",
        "retry.backoff",
        "client.reconnect",
        "net.transit",
        "bus.dispatch",
        "tn.operation",
        "tn.checkpoint",
    ];
    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for span in spans.iter().filter(|s| bus_side.contains(&s.name.as_str())) {
        *seen.entry(span.name.as_str()).or_default() += 1;
        assert_eq!(
            span.trace_id, root.trace_id,
            "span '{}' ({}) is outside the formation trace",
            span.name, span.id
        );
        let mut cursor: &trust_vo::obs::SpanRecord = span;
        let mut hops = 0usize;
        while let Some(parent) = cursor.parent {
            cursor = by_id.get(&parent).copied().unwrap_or_else(|| {
                panic!(
                    "span '{}' ({}) has a dangling parent {parent}",
                    cursor.name, cursor.id
                )
            });
            hops += 1;
            assert!(hops < 64, "parent cycle from span '{}'", span.name);
        }
        assert_eq!(
            cursor.id, root.id,
            "span '{}' ({}) is orphaned from the formation root",
            span.name, span.id
        );
    }
    // The interesting hop kinds all actually occurred in this run.
    for name in [
        "client.negotiation",
        "client.call",
        "soa.attempt",
        "retry.backoff",
        "net.transit",
        "bus.dispatch",
        "tn.operation",
        "tn.checkpoint",
    ] {
        assert!(seen.get(name).copied().unwrap_or(0) > 0, "no '{name}' span");
    }
    // Retries mean more delivery attempts than logical calls, all with
    // distinct span ids on the one shared trace.
    assert!(
        seen["soa.attempt"] > seen["client.call"],
        "retries must add extra attempt spans"
    );
}

#[test]
fn duplicate_deliveries_share_the_trace_with_distinct_spans() {
    // Force duplication of every delivered, unkeyed call: the endpoint
    // runs twice, and both dispatches must appear as sibling spans —
    // same trace id, distinct span ids — under one net.transit.
    let (clock, collector) = observed_clock();
    let bus = ServiceBus::new(clock.clone());
    bus.register("tn", Arc::new(TnService::new(clock, Database::new())));
    let plan = FaultPlan {
        default_link: LinkProfile {
            duplicate_probability: 1.0,
            ..LinkProfile::reliable()
        },
        ..FaultPlan::reliable(9)
    };
    let net = NetSim::new(bus, plan);

    let trace_id = collector.new_trace_id();
    let root = collector.span_linked(
        "test.root",
        SpanLink {
            trace_id,
            parent: None,
        },
    );
    let request = Envelope::request(
        "StartNegotiation",
        Element::new("StartNegotiationRequest")
            .child(Element::new("strategy").text("standard"))
            .child(Element::new("requester").text("Nobody"))
            .child(Element::new("counterpartUrl").text("NobodyElse"))
            .child(Element::new("resource").text("VoMembership")),
    )
    .with_trace(TraceContext {
        trace_id,
        span_id: root.id().expect("enabled collector"),
        parent_span_id: None,
    });
    // The verdict itself is irrelevant — only the delivery shape is.
    let _ = net.call("tn", &request);
    drop(root);
    assert_eq!(net.metrics().dups.get(), 1);

    let spans = span_records(&collector);
    let transits: Vec<_> = spans.iter().filter(|s| s.name == "net.transit").collect();
    assert_eq!(transits.len(), 1, "one logical transit");
    assert_eq!(transits[0].trace_id, trace_id);
    let dispatches: Vec<_> = spans.iter().filter(|s| s.name == "bus.dispatch").collect();
    assert_eq!(dispatches.len(), 2, "unkeyed duplicate delivers twice");
    assert_ne!(dispatches[0].id, dispatches[1].id);
    for dispatch in &dispatches {
        assert_eq!(
            dispatch.trace_id, trace_id,
            "duplicate shares the logical trace"
        );
        assert_eq!(
            dispatch.parent,
            Some(transits[0].id),
            "duplicate parents under the same transit"
        );
    }
}
