//! Parallel vs. serial formation equivalence.
//!
//! The parallel admission engine speculates every (role, accepting
//! candidate) negotiation on a thread pool and then replays the serial
//! decision procedure, so it must be *observationally identical* to serial
//! formation: same member set, same role assignment, same membership
//! certificate serials, same sim-clock charges — and, against the shared
//! [`ConcurrentSequenceCache`], the same aggregate [`CacheStats`] totals.

use std::collections::BTreeMap;
use trust_vo_credential::{CredentialAuthority, TimeRange, Timestamp};
use trust_vo_negotiation::{CacheStats, ConcurrentSequenceCache, Party, Strategy};
use trust_vo_policy::{DisclosurePolicy, PolicySet, Resource, Term};
use trust_vo_soa::simclock::{CostModel, SimClock};
use trust_vo_vo::mailbox::MailboxSystem;
use trust_vo_vo::{
    form_vo, form_vo_cached, form_vo_parallel, Contract, FormedVo, ReputationLedger,
    ResourceDescription, Role, ServiceProvider, ServiceRegistry,
};

fn clock() -> SimClock {
    SimClock::new(
        CostModel::paper_testbed(),
        Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0),
    )
}

/// A three-role world. Each role has its own capability and three distinct
/// candidates ranked by advertised quality:
///
/// * a *decliner* (quality 0.95) that refuses the invitation,
/// * a *bad* candidate (quality 0.90) lacking the required credential, so
///   its trust negotiation fails,
/// * a *good* candidate (quality 0.80) holding the credential.
///
/// Serial formation therefore tries all three per role in that order; the
/// speculation pass negotiates with exactly the two accepting candidates
/// per role, so serial-through-cache and parallel perform the same
/// negotiations and the aggregate cache stats must match.
fn world() -> (
    Contract,
    ServiceProvider,
    BTreeMap<String, ServiceProvider>,
    ServiceRegistry,
) {
    let mut ca = CredentialAuthority::new("EquivCA");
    let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
    let mut initiator = Party::new("Initiator");
    initiator.trust_root(ca.public_key());

    let mut contract = Contract::new("EquivVo", "parallel/serial equivalence");
    let mut providers = BTreeMap::new();
    let mut registry = ServiceRegistry::new();

    for i in 0..3 {
        let cred_type = format!("RoleCred{i}");
        let role_name = format!("Role{i}");
        let capability = format!("cap{i}");

        let good_name = format!("Good{i}");
        let mut good = Party::new(&good_name);
        let cred = ca
            .issue(&cred_type, &good_name, good.keys.public, vec![], window)
            .expect("open schema");
        good.profile.add(cred);
        good.trust_root(ca.public_key());

        let bad_name = format!("Bad{i}");
        let bad = Party::new(&bad_name);
        let decliner_name = format!("Decliner{i}");
        let decliner = Party::new(&decliner_name);

        contract = contract.with_role(Role::new(&role_name, &capability, "equivalence"));
        let mut policies = PolicySet::new();
        policies.add(DisclosurePolicy::rule(
            format!("vo-r{i}"),
            Resource::service("VoMembership"),
            vec![Term::of_type(&cred_type)],
        ));
        contract.set_role_policies(&role_name, policies);

        registry.publish(ResourceDescription::new(
            &decliner_name,
            &capability,
            "x",
            0.95,
        ));
        registry.publish(ResourceDescription::new(&bad_name, &capability, "x", 0.90));
        registry.publish(ResourceDescription::new(&good_name, &capability, "x", 0.80));

        providers.insert(good_name, ServiceProvider::new(good));
        providers.insert(bad_name, ServiceProvider::new(bad));
        providers.insert(decliner_name, ServiceProvider::new(decliner).declining());
    }

    (
        contract,
        ServiceProvider::new(initiator),
        providers,
        registry,
    )
}

fn membership(vo: &FormedVo) -> Vec<(String, String, u64)> {
    vo.members()
        .iter()
        .map(|m| (m.provider.clone(), m.role.clone(), m.certificate.serial))
        .collect()
}

struct Formed {
    vo: FormedVo,
    stats: CacheStats,
    elapsed: trust_vo_soa::simclock::SimDuration,
    reputation: ReputationLedger,
}

fn run_serial_cached(
    world: &(
        Contract,
        ServiceProvider,
        BTreeMap<String, ServiceProvider>,
        ServiceRegistry,
    ),
) -> Formed {
    let (contract, initiator, providers, registry) = world;
    let clock = clock();
    let cache = ConcurrentSequenceCache::new();
    let mut reputation = ReputationLedger::new();
    let vo = form_vo_cached(
        contract.clone(),
        initiator,
        providers,
        registry,
        &mut MailboxSystem::new(),
        &mut reputation,
        &clock,
        Strategy::Standard,
        &cache,
    )
    .expect("serial cached formation succeeds");
    Formed {
        vo,
        stats: cache.stats(),
        elapsed: clock.elapsed(),
        reputation,
    }
}

fn run_parallel(
    world: &(
        Contract,
        ServiceProvider,
        BTreeMap<String, ServiceProvider>,
        ServiceRegistry,
    ),
    workers: usize,
) -> Formed {
    let (contract, initiator, providers, registry) = world;
    let clock = clock();
    let cache = ConcurrentSequenceCache::new();
    let mut reputation = ReputationLedger::new();
    let vo = form_vo_parallel(
        contract.clone(),
        initiator,
        providers,
        registry,
        &mut MailboxSystem::new(),
        &mut reputation,
        &clock,
        Strategy::Standard,
        &cache,
        workers,
    )
    .expect("parallel formation succeeds");
    Formed {
        vo,
        stats: cache.stats(),
        elapsed: clock.elapsed(),
        reputation,
    }
}

#[test]
fn parallel_formation_is_observationally_identical_to_serial() {
    let world = world();
    let serial = run_serial_cached(&world);

    for workers in [1, 2, 8] {
        let parallel = run_parallel(&world, workers);

        // Identical member sets, role assignment, and certificate serials.
        assert_eq!(
            membership(&serial.vo),
            membership(&parallel.vo),
            "membership diverged at {workers} workers"
        );
        // Identical simulated cost: replay charges exactly like serial.
        assert_eq!(
            serial.elapsed, parallel.elapsed,
            "sim-clock diverged at {workers} workers"
        );
        // Identical aggregate cache totals: speculation performs the same
        // negotiations serial formation does, just concurrently.
        assert_eq!(
            serial.stats, parallel.stats,
            "cache stats diverged at {workers} workers"
        );
        // Reputation evolves identically.
        for provider in world.2.keys() {
            assert_eq!(
                serial.reputation.get(provider),
                parallel.reputation.get(provider),
                "reputation diverged for {provider} at {workers} workers"
            );
        }
    }
}

#[test]
fn parallel_formation_matches_plain_serial_membership() {
    let (contract, initiator, providers, registry) = world();
    let serial_clock = clock();
    let serial = form_vo(
        contract.clone(),
        &initiator,
        &providers,
        &registry,
        &mut MailboxSystem::new(),
        &mut ReputationLedger::new(),
        &serial_clock,
        Strategy::Standard,
    )
    .expect("plain serial formation succeeds");

    let parallel = run_parallel(&(contract, initiator, providers, registry), 4);
    assert_eq!(membership(&serial), membership(&parallel.vo));
    assert_eq!(serial_clock.elapsed(), parallel.elapsed);
}

#[test]
fn parallel_formation_fills_expected_roles() {
    let world = world();
    let formed = run_parallel(&world, 8);
    assert_eq!(formed.vo.members().len(), 3);
    for i in 0..3 {
        let record = formed
            .vo
            .member_for_role(&format!("Role{i}"))
            .expect("role filled");
        assert_eq!(record.provider, format!("Good{i}"));
    }
    // Two negotiations per role (bad + good), all cold: six misses, no hits.
    assert_eq!(formed.stats.misses, 6);
    assert_eq!(formed.stats.hits, 0);
    // Failed negotiations lower reputation, successes raise it.
    for i in 0..3 {
        assert!(formed.reputation.get(&format!("Bad{i}")) < 0.5);
        assert!(formed.reputation.get(&format!("Good{i}")) > 0.5);
    }
}
