//! Crash-recovery properties of the fact journal (PR 6 tentpole).
//!
//! The contract under test: a process killed after *any byte prefix* of
//! its journal recovers to the state after some clean prefix of its
//! committed operations — and an in-flight negotiation recovered this way
//! finishes with the same outcome as an uninterrupted run.

use std::sync::Arc;
use trust_vo::credential::{CredentialAuthority, TimeRange, Timestamp};
use trust_vo::journal::{Fact, Journal};
use trust_vo::negotiation::Party;
use trust_vo::obs::Collector;
use trust_vo::policy::{DisclosurePolicy, Resource, Term};
use trust_vo::soa::simclock::{CostModel, SimClock};
use trust_vo::soa::{Envelope, ServiceEndpoint, TnService};
use trust_vo::store::Database;
use trust_vo::xmldoc::Element;

/// A deterministic mixed workload over three collections. Returns the
/// `(journal boundary, state digest)` after every operation.
fn scripted_workload(db: &Database, journal: &Journal) -> Vec<(u64, u64)> {
    let mut checkpoints = vec![(journal.len_bytes(), db.state_digest())];
    for i in 0u64..30 {
        let coll = ["vos", "profiles", "checkpoints"][(i % 3) as usize];
        let id = format!("doc{}", i % 5);
        if i % 7 == 3 {
            db.with_collection(coll, |c| {
                c.delete(&id.as_str().into());
            });
        } else {
            db.with_collection(coll, |c| {
                c.put(
                    id.as_str(),
                    Element::new("d")
                        .attr("i", i.to_string())
                        .attr("coll", coll),
                );
            });
        }
        checkpoints.push((journal.len_bytes(), db.state_digest()));
    }
    checkpoints
}

#[test]
fn kill_at_any_prefix_restores_a_clean_state() {
    let db = Database::new();
    let journal = Arc::new(Journal::in_memory());
    db.attach_journal(journal.clone());
    let checkpoints = scripted_workload(&db, &journal);
    let bytes = journal.bytes();

    // Truncating exactly at each operation's boundary restores exactly
    // that operation's state.
    for &(cut, want) in &checkpoints {
        let restored = Database::new();
        let replay =
            restored.restore_from_journal(&Journal::from_bytes(bytes[..cut as usize].to_vec()));
        assert!(!replay.truncated, "boundary {cut} is a clean prefix");
        assert_eq!(restored.state_digest(), want, "boundary {cut}");
    }

    // Killing at EVERY byte offset — mid-record included — restores the
    // state of the last completed operation before the cut.
    for cut in 0..=bytes.len() {
        let restored = Database::new();
        restored.restore_from_journal(&Journal::from_bytes(bytes[..cut].to_vec()));
        let want = checkpoints
            .iter()
            .rev()
            .find(|(b, _)| *b as usize <= cut)
            .expect("boundary 0 always qualifies")
            .1;
        assert_eq!(restored.state_digest(), want, "cut at byte {cut}");
    }
}

#[test]
fn recovery_from_a_compacted_journal_is_identical() {
    let db = Database::new();
    let journal = Arc::new(Journal::in_memory());
    db.attach_journal(journal.clone());
    scripted_workload(&db, &journal);

    db.compact_into(&journal);
    // Post-compaction appends extend the snapshot baseline.
    db.with_collection("vos", |c| {
        c.put("after", Element::new("late"));
    });

    let restored = Database::new();
    let replay = restored.restore_from_journal(&journal);
    assert!(!replay.truncated);
    assert_eq!(replay.records, 2, "snapshot + one append");
    assert_eq!(restored.state_digest(), db.state_digest());
    assert_eq!(journal.stats().compactions, 1);
}

/// The Fig. 2 negotiation pair from the paper: Aerospace requests
/// VoMembership from Aircraft; two counter-requirements deep. Party keys
/// are seed-derived from names, so a "restarted process" rebuilding its
/// parties reproduces the keys its resume tokens are bound to.
fn fig2_parties() -> (Party, Party) {
    let mut ca = CredentialAuthority::new("AAA");
    let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
    let mut aircraft = Party::new("Aircraft");
    let mut aerospace = Party::new("Aerospace");
    let quality = ca
        .issue(
            "WebDesignerQuality",
            "Aerospace",
            aerospace.keys.public,
            vec![],
            window,
        )
        .unwrap();
    aerospace.profile.add(quality);
    let accr = ca
        .issue(
            "AAACreditation",
            "Aircraft",
            aircraft.keys.public,
            vec![],
            window,
        )
        .unwrap();
    aircraft.profile.add(accr);
    aircraft.policies.add(DisclosurePolicy::rule(
        "p1",
        Resource::service("VoMembership"),
        vec![Term::of_type("WebDesignerQuality")],
    ));
    aircraft.policies.add(DisclosurePolicy::deliv(
        "d1",
        Resource::credential("AAACreditation"),
    ));
    aerospace.policies.add(DisclosurePolicy::rule(
        "p2",
        Resource::credential("WebDesignerQuality"),
        vec![Term::of_type("AAACreditation")],
    ));
    aircraft.trust_root(ca.public_key());
    aerospace.trust_root(ca.public_key());
    (aerospace, aircraft)
}

fn clock() -> SimClock {
    SimClock::new(
        CostModel::free(),
        Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0),
    )
}

fn tn_service(clock: SimClock, db: Database) -> TnService {
    let (aerospace, aircraft) = fig2_parties();
    let svc = TnService::new(clock, db);
    svc.register_party(aerospace);
    svc.register_party(aircraft);
    svc
}

fn start_resumable(svc: &TnService) -> u64 {
    svc.handle(&Envelope::request(
        "StartNegotiation",
        Element::new("StartNegotiationRequest")
            .attr("resumable", "true")
            .child(Element::new("strategy").text("standard"))
            .child(Element::new("requester").text("Aerospace"))
            .child(Element::new("counterpartUrl").text("Aircraft"))
            .child(Element::new("resource").text("VoMembership")),
    ))
    .unwrap()
    .negotiation_id
    .unwrap()
}

fn policy_exchange(svc: &TnService, id: u64) -> Envelope {
    svc.handle(&Envelope::request("PolicyExchange", Element::new("x")).with_negotiation(id))
        .unwrap()
}

fn exchange(svc: &TnService, id: u64) -> Envelope {
    svc.handle(
        &Envelope::request(
            "CredentialExchange",
            Element::new("CredentialExchangeRequest"),
        )
        .with_negotiation(id),
    )
    .unwrap()
}

/// Drive a started negotiation to completion; returns the number of
/// credential-exchange rounds it took.
fn drive_to_completion(svc: &TnService, id: u64) -> u32 {
    let mut rounds = 0;
    loop {
        rounds += 1;
        if exchange(svc, id).body.get_attr("status") == Some("completed") {
            return rounds;
        }
        assert!(rounds < 64, "negotiation did not converge");
    }
}

#[test]
fn interrupted_negotiation_recovers_to_the_uninterrupted_outcome() {
    // Baseline: the uninterrupted run.
    let baseline = tn_service(clock(), Database::new());
    let id = start_resumable(&baseline);
    policy_exchange(&baseline, id);
    let baseline_rounds = drive_to_completion(&baseline, id);
    assert!(baseline.is_completed(id));

    // Journaled run, killed mid-negotiation. The phase-2 checkpoints the
    // TN service writes to its `checkpoints` collection flow into the
    // journal through the database spill hook.
    let db = Database::new();
    let journal = Arc::new(Journal::in_memory());
    db.attach_journal(journal.clone());
    let svc = tn_service(clock(), db);
    let id = start_resumable(&svc);
    let resp = policy_exchange(&svc, id);
    assert!(resp.body.first("ResumeToken").is_some());
    let resp = exchange(&svc, id);
    assert_eq!(resp.body.get_attr("status"), Some("in-progress"));
    let done_before_crash = 1;
    let token = resp.body.first("ResumeToken").unwrap().clone();
    // The process dies here. All that survives: the signed resume token
    // held by the client, and the journal bytes on disk (with whatever
    // torn tail the crash left — replay discards it).
    let mut salvaged = journal.bytes();
    salvaged.extend_from_slice(&[0xDE, 0xAD]); // torn tail
    drop(svc);

    // The restarted process: replay the journal into a fresh database,
    // rebuild the service, re-register its parties, present the token.
    let recovered_journal = Journal::from_bytes(salvaged);
    let db = Database::new();
    let replay = db.restore_from_journal(&recovered_journal);
    assert!(replay.truncated, "the torn tail is discarded");
    db.attach_journal(Arc::new(recovered_journal));
    let svc = tn_service(clock(), db);
    let resume = svc
        .handle(&Envelope::request(
            "ResumeNegotiation",
            Element::new("ResumeNegotiationRequest").child(token),
        ))
        .unwrap();
    assert_eq!(resume.body.get_attr("status"), Some("resumed"));
    let new_id = resume.negotiation_id.unwrap();
    let resumed_rounds = drive_to_completion(&svc, new_id);
    assert!(svc.is_completed(new_id));
    assert_eq!(svc.resumed_count(), 1);
    // Same outcome, same total work: the rounds done before the crash
    // plus the rounds after resume equal the uninterrupted count.
    assert_eq!(done_before_crash + resumed_rounds, baseline_rounds);
}

#[test]
fn one_journal_recovers_both_store_and_dictionary() {
    use trust_vo::crypto::KeyPair;
    use trust_vo::ontology::{dictionary_from_journal, Concept, MapMemo, MappingEngine, Ontology};

    let journal = Arc::new(Journal::in_memory());
    // Producer 1: the document store.
    let db = Database::new();
    db.attach_journal(journal.clone());
    db.with_collection("vos", |c| {
        c.put("v1", Element::new("vo").attr("name", "Aircraft"));
    });
    // Producer 2: the mapping memo, spilling a similarity resolution.
    let mut o = Ontology::new();
    o.add(
        Concept::new("QualityCertification")
            .keyword("ISO 9000")
            .implemented_by("ISO9000Certified"),
    );
    let mut ca = CredentialAuthority::new("INFN");
    let keys = KeyPair::from_seed(b"holder");
    let mut profile = trust_vo::credential::XProfile::new("holder");
    profile.add(
        ca.issue(
            "ISO9000Certified",
            "holder",
            keys.public,
            vec![trust_vo::credential::Attribute::new(
                "QualityRegulation",
                "UNI EN ISO 9000",
            )],
            TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0)),
        )
        .unwrap(),
    );
    let memo = MapMemo::new(4, 64);
    memo.attach_journal(journal.clone());
    let engine = MappingEngine::new(&o, &profile, 0.3).with_memo(&memo);
    assert!(engine.map("Quality_Certification_ISO9000").is_mapped());

    // Both fact kinds interleave in one log; each consumer recovers its
    // own and skips the other's.
    let kinds: Vec<bool> = journal
        .replay()
        .facts
        .iter()
        .map(|f| matches!(f, Fact::Mapping { .. }))
        .collect();
    assert_eq!(kinds, vec![false, true]);

    let restored = Database::new();
    restored.restore_from_journal(&journal);
    assert_eq!(restored.state_digest(), db.state_digest());
    let dictionary = dictionary_from_journal(&journal);
    assert_eq!(
        dictionary.resolve("Quality_Certification_ISO9000"),
        Some("QualityCertification")
    );
}

#[test]
fn journal_obs_counters_track_activity() {
    let collector = Collector::new();
    assert!(collector.is_enabled(), "root tests build with obs enabled");
    let journal = Journal::in_memory();
    journal.attach_obs(&collector);
    let fact = |n: u32| Fact::Put {
        collection: "c".into(),
        id: format!("d{n}"),
        xml: "<d/>".into(),
    };
    journal.append(&fact(1));
    journal.append(&fact(2));
    journal.compact(&[fact(1), fact(2)]);
    journal.append(&fact(3));
    journal.replay();

    let metrics = collector.metrics();
    assert_eq!(metrics.counter("journal.appends"), 3);
    assert_eq!(metrics.counter("journal.compactions"), 1);
    assert_eq!(
        metrics.counter("journal.replayed_records"),
        2,
        "snapshot record + post-compaction append"
    );
    assert_eq!(
        metrics.counter("journal.bytes"),
        journal.stats().bytes_written
    );
}
