//! Cross-crate ontology interop: persisted ontologies, dictionaries, and
//! cross-ontology matching driving real negotiations (§4.3's full story —
//! "parties … may not share the same credentials' language").

use trust_vo::credential::{Attribute, CredentialAuthority, TimeRange, Timestamp};
use trust_vo::negotiation::{negotiate, NegotiationConfig, Party, Strategy};
use trust_vo::ontology::{
    map_concept_with_dictionary, match_ontologies, ontology_from_xml, ontology_to_xml, Concept,
    Dictionary, Ontology,
};
use trust_vo::policy::{DisclosurePolicy, Resource, Term};

fn window() -> TimeRange {
    TimeRange::one_year_from(Timestamp::parse_iso("2009-10-26T21:32:52").unwrap())
}

fn at() -> Timestamp {
    Timestamp::parse_iso("2009-12-01T00:00:00").unwrap()
}

/// Two organizations with *different* local ontologies for the same
/// domain: the Italian subsidiary names its concepts differently.
fn italian_ontology() -> Ontology {
    let mut o = Ontology::new();
    o.add(
        Concept::new("Certificazione_Qualita")
            .keyword("quality certification ISO")
            .implemented_by("ISO9000Certified.QualityRegulation"),
    );
    o.add(
        Concept::new("Bilancio")
            .keyword("balance sheet financial")
            .implemented_by("CertificationAuthorityCompany"),
    );
    o
}

fn us_ontology() -> Ontology {
    let mut o = Ontology::new();
    o.add(
        Concept::new("QualityCertification")
            .keyword("ISO quality")
            .implemented_by("ISO9000Certified"),
    );
    o.add(
        Concept::new("BalanceSheet")
            .keyword("financial statement")
            .implemented_by("CertificationAuthorityCompany"),
    );
    o
}

#[test]
fn cross_ontology_matching_bridges_naming_schemas() {
    // "The extension of Trust-X with the reasoning engine facilitates the
    // interoperability among the negotiation parties, by bridging the
    // potential semantic gaps resulting from the usage of different naming
    // schemas." (§4.3)
    let mapping = match_ontologies(&italian_ontology(), &us_ontology());
    assert_eq!(mapping.len(), 2);
    let quality = mapping
        .iter()
        .find(|m| m.source == "Certificazione_Qualita")
        .unwrap();
    assert_eq!(quality.target, "QualityCertification");
    assert!(quality.confidence > 0.2, "{}", quality.confidence);
    let sheet = mapping.iter().find(|m| m.source == "Bilancio").unwrap();
    assert_eq!(sheet.target, "BalanceSheet");
}

#[test]
fn persisted_ontology_drives_concept_negotiation() {
    // The controller's ontology goes through an XML save/load cycle (the
    // Protégé storage path) before the negotiation uses it.
    let saved = trust_vo::xmldoc::to_string(&ontology_to_xml(&us_ontology()));
    let reloaded = ontology_from_xml(&trust_vo::xmldoc::parse(&saved).unwrap()).unwrap();

    let mut ca = CredentialAuthority::new("INFN");
    let mut requester = Party::new("R").with_ontology(reloaded);
    let mut controller = Party::new("C");
    let cred = ca
        .issue(
            "ISO9000Certified",
            "R",
            requester.keys.public,
            vec![Attribute::new("QualityRegulation", "UNI EN ISO 9000")],
            window(),
        )
        .unwrap();
    requester.profile.add(cred);
    requester.trust_root(ca.public_key());
    controller.trust_root(ca.public_key());
    // The controller asks for a *concept* the requester must resolve
    // through its (reloaded) ontology.
    controller.policies.add(DisclosurePolicy::rule(
        "p",
        Resource::service("Svc"),
        vec![Term::of_concept("QualityCertification")],
    ));
    let cfg = NegotiationConfig::new(Strategy::Standard, at());
    let outcome = negotiate(&requester, &controller, "Svc", &cfg).unwrap();
    assert_eq!(
        outcome.sequence.disclosures()[0].cred_type,
        "ISO9000Certified"
    );
}

#[test]
fn dictionary_front_end_resolves_foreign_aliases() {
    let mut ca = CredentialAuthority::new("BBB");
    let keys = trust_vo::crypto::KeyPair::from_seed(b"holder");
    let mut profile = trust_vo::credential::XProfile::new("holder");
    profile.add(
        ca.issue(
            "CertificationAuthorityCompany",
            "holder",
            keys.public,
            vec![Attribute::new("Issuer", "BBB")],
            window(),
        )
        .unwrap(),
    );
    let ontology = us_ontology();
    let mut dictionary = Dictionary::new();
    dictionary.alias("Bilancio", "BalanceSheet");
    // Zero token overlap between "Bilancio" and "BalanceSheet": similarity
    // alone fails, the dictionary resolves it.
    let out = map_concept_with_dictionary(&ontology, &dictionary, &profile, "Bilancio", 0.25);
    assert!(out.is_mapped(), "{out:?}");
    let out = trust_vo::ontology::mapping::map_concept(&ontology, &profile, "Bilancio", 0.25);
    assert!(!out.is_mapped());
}

#[test]
fn abstraction_then_resolution_is_lossless_for_satisfiability() {
    // §4.3.1 round trip: a concrete policy is abstracted to concepts by
    // one party and resolved back to credentials by the other; the
    // negotiation outcome is unchanged.
    let ontology = us_ontology();
    let concrete = DisclosurePolicy::rule(
        "p",
        Resource::service("Svc"),
        vec![Term::of_type("ISO9000Certified")],
    );
    let abstracted = trust_vo::policy::abstraction::abstract_policy(&concrete, &ontology, 0);
    assert_ne!(
        concrete, abstracted,
        "abstraction must change the term form"
    );

    let mut ca = CredentialAuthority::new("INFN");
    let make_parties = |policy: DisclosurePolicy, ca: &mut CredentialAuthority| {
        let mut requester = Party::new("R").with_ontology(us_ontology());
        let mut controller = Party::new("C");
        let cred = ca
            .issue(
                "ISO9000Certified",
                "R",
                requester.keys.public,
                vec![],
                window(),
            )
            .unwrap();
        requester.profile.add(cred);
        requester.trust_root(ca.public_key());
        controller.trust_root(ca.public_key());
        controller.policies.add(policy);
        (requester, controller)
    };
    let cfg = NegotiationConfig::new(Strategy::Standard, at());
    let (r1, c1) = make_parties(concrete, &mut ca);
    let (r2, c2) = make_parties(abstracted, &mut ca);
    let direct = negotiate(&r1, &c1, "Svc", &cfg).unwrap();
    let via_concepts = negotiate(&r2, &c2, "Svc", &cfg).unwrap();
    assert_eq!(
        direct.sequence.disclosures()[0].cred_type,
        via_concepts.sequence.disclosures()[0].cred_type
    );
}
