//! Cross-crate property tests: the DESIGN.md §6 invariants that span
//! multiple crates, checked on randomized policy graphs.

use proptest::prelude::*;
use trust_vo::credential::{Attribute, CredentialAuthority, Sensitivity, TimeRange, Timestamp};
use trust_vo::negotiation::message::Message;
use trust_vo::negotiation::{negotiate, NegotiationConfig, Party, Strategy};
use trust_vo::policy::{DisclosurePolicy, Resource, Term};

fn window() -> TimeRange {
    TimeRange::one_year_from(Timestamp::parse_iso("2009-10-26T21:32:52").unwrap())
}

fn at() -> Timestamp {
    Timestamp::parse_iso("2009-12-01T00:00:00").unwrap()
}

/// A randomized two-party world: `n` credential types alternating between
/// the parties, each protected either by a DELIV rule or by the next type,
/// with random sensitivities.
fn random_parties(depth: usize, deliv_mask: &[bool], sensitivities: &[u8]) -> (Party, Party) {
    let mut ca = CredentialAuthority::new("PropCA");
    let mut requester = Party::new("prop-requester");
    let mut controller = Party::new("prop-controller");
    for level in 0..depth {
        let ty = format!("T{level}");
        let owner = if level % 2 == 0 {
            &mut requester
        } else {
            &mut controller
        };
        let cred = ca
            .issue(
                &ty,
                &owner.name.clone(),
                owner.keys.public,
                vec![Attribute::new("L", level as i64)],
                window(),
            )
            .unwrap();
        let sens = match sensitivities.get(level).copied().unwrap_or(0) % 3 {
            0 => Sensitivity::Low,
            1 => Sensitivity::Medium,
            _ => Sensitivity::High,
        };
        owner.profile.add_with_sensitivity(cred, sens);
        let resource = Resource::credential(ty);
        // The last level is always deliverable so the chain can terminate.
        if level + 1 >= depth || deliv_mask.get(level).copied().unwrap_or(true) {
            owner
                .policies
                .add(DisclosurePolicy::deliv(format!("d{level}"), resource));
        } else {
            owner.policies.add(DisclosurePolicy::rule(
                format!("p{level}"),
                resource,
                vec![Term::of_type(format!("T{}", level + 1))],
            ));
        }
    }
    controller.policies.add(DisclosurePolicy::rule(
        "root",
        Resource::service("Target"),
        vec![Term::of_type("T0")],
    ));
    requester.trust_root(ca.public_key());
    controller.trust_root(ca.public_key());
    (requester, controller)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any terminating chain world is satisfiable, under every strategy,
    /// and all strategies agree on the outcome.
    #[test]
    fn strategies_agree_on_random_chains(
        depth in 1usize..8,
        deliv_mask in proptest::collection::vec(any::<bool>(), 8),
        sens in proptest::collection::vec(any::<u8>(), 8),
    ) {
        let (requester, controller) = random_parties(depth, &deliv_mask, &sens);
        let mut sequences = Vec::new();
        for strategy in Strategy::ALL {
            let cfg = NegotiationConfig::new(strategy, at());
            let outcome = negotiate(&requester, &controller, "Target", &cfg);
            prop_assert!(outcome.is_ok(), "strategy {strategy}: {outcome:?}");
            sequences.push(outcome.unwrap().sequence);
        }
        // Same satisfiable graph ⇒ the agreed sequence is strategy-independent.
        for seq in &sequences[1..] {
            prop_assert_eq!(seq, &sequences[0]);
        }
    }

    /// Negotiation safety: in the transcript, every credential disclosure
    /// is preceded by a policy disclosure governing the exchange (no
    /// credential leaves before phase 1 produced a sequence).
    #[test]
    fn credentials_never_precede_policies(
        depth in 2usize..8,
        sens in proptest::collection::vec(any::<u8>(), 8),
    ) {
        let deliv_mask = vec![false; depth]; // full chain, no shortcuts
        let (requester, controller) = random_parties(depth, &deliv_mask, &sens);
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let outcome = negotiate(&requester, &controller, "Target", &cfg).unwrap();
        let entries = outcome.transcript.entries();
        let first_credential = entries
            .iter()
            .position(|e| matches!(e.message, Message::CredentialDisclosure { .. }));
        let first_policy = entries
            .iter()
            .position(|e| matches!(e.message, Message::PolicyDisclosure { .. }));
        if let (Some(cred), Some(policy)) = (first_credential, first_policy) {
            prop_assert!(policy < cred, "a credential was disclosed before any policy");
        }
    }

    /// The trust sequence respects the dependency order of the chain: the
    /// credential satisfying a policy is disclosed before the credential
    /// that policy protects.
    #[test]
    fn sequence_respects_chain_order(depth in 2usize..8) {
        let deliv_mask = vec![false; depth];
        let (requester, controller) = random_parties(depth, &deliv_mask, &[]);
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let outcome = negotiate(&requester, &controller, "Target", &cfg).unwrap();
        let types: Vec<&str> = outcome
            .sequence
            .disclosures()
            .iter()
            .map(|d| d.cred_type.as_str())
            .collect();
        // T(depth-1) must come before T(depth-2) … before T0.
        for level in 0..depth.saturating_sub(1) {
            let outer = types.iter().position(|t| *t == format!("T{level}"));
            let inner = types.iter().position(|t| *t == format!("T{}", level + 1));
            if let (Some(outer), Some(inner)) = (outer, inner) {
                prop_assert!(inner < outer, "T{} disclosed after T{level}", level + 1);
            }
        }
    }

    /// Revoking any credential in the sequence makes the negotiation fail
    /// with a trust failure — never a panic, never a silent success.
    #[test]
    fn revocation_anywhere_fails_closed(
        depth in 1usize..6,
        victim in any::<prop::sample::Index>(),
    ) {
        let deliv_mask = vec![false; depth];
        let (requester, mut controller) = random_parties(depth, &deliv_mask, &[]);
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let baseline = negotiate(&requester, &controller, "Target", &cfg).unwrap();
        if baseline.sequence.is_empty() {
            return Ok(());
        }
        let disclosures = baseline.sequence.disclosures();
        let victim_id = disclosures[victim.index(disclosures.len())].cred_id.clone();
        // Both parties learn of the revocation via their CRL view; the
        // receiver-side check is what the paper specifies.
        controller.crl.revoke(victim_id.clone(), at());
        let mut requester2 = requester.clone();
        requester2.crl.revoke(victim_id, at());
        let result = negotiate(&requester2, &controller, "Target", &cfg);
        prop_assert!(
            matches!(result, Err(trust_vo::negotiation::NegotiationError::TrustFailure { .. })),
            "{result:?}"
        );
    }

    /// Message counts: trusting never uses more policy rounds than
    /// strong-suspicious on the same workload.
    #[test]
    fn trusting_rounds_lower_bound(depth in 1usize..7) {
        let deliv_mask = vec![false; depth];
        let (requester, controller) = random_parties(depth, &deliv_mask, &[]);
        let trusting = negotiate(
            &requester, &controller, "Target",
            &NegotiationConfig::new(Strategy::Trusting, at()),
        ).unwrap();
        let strong = negotiate(
            &requester, &controller, "Target",
            &NegotiationConfig::new(Strategy::StrongSuspicious, at()),
        ).unwrap();
        prop_assert!(trusting.transcript.policy_rounds <= strong.transcript.policy_rounds);
        prop_assert!(strong.transcript.ownership_proofs >= trusting.transcript.ownership_proofs);
    }
}

/// A randomized AND-OR policy world (not just chains): `n` credential
/// types split between the parties; each protected by up to `alts`
/// alternatives, each alternative a conjunction of up to `width` random
/// deeper types (acyclic by construction: requirements only reference
/// strictly higher indices), or DELIV at the frontier.
fn random_dag(
    n: usize,
    structure: &[u8], // randomness source, consumed round-robin
) -> (Party, Party) {
    let mut ca = CredentialAuthority::new("DagCA");
    let mut requester = Party::new("dag-requester");
    let mut controller = Party::new("dag-controller");
    let byte = |i: usize| {
        structure
            .get(i % structure.len().max(1))
            .copied()
            .unwrap_or(0) as usize
    };
    for level in 0..n {
        let ty = format!("T{level}");
        let owner = if level % 2 == 0 {
            &mut requester
        } else {
            &mut controller
        };
        let cred = ca
            .issue(
                &ty,
                &owner.name.clone(),
                owner.keys.public,
                vec![],
                window(),
            )
            .unwrap();
        owner.profile.add(cred);
        let resource = Resource::credential(ty);
        let remaining = n - level - 1;
        let alts = 1 + byte(level) % 3;
        let mut governed = false;
        for alt in 0..alts {
            // Terms reference types at least one level deeper with the
            // OPPOSITE parity (so the counterpart holds them); if no such
            // type exists, fall back to DELIV.
            let width = 1 + byte(level * 7 + alt) % 2;
            let mut terms = Vec::new();
            for w in 0..width {
                let offset = 1 + byte(level * 13 + alt * 5 + w) % remaining.max(1);
                let target = level + offset;
                if target < n && (target % 2) != (level % 2) {
                    terms.push(Term::of_type(format!("T{target}")));
                }
            }
            if terms.is_empty() {
                owner.policies.add(DisclosurePolicy::deliv(
                    format!("d{level}-{alt}"),
                    resource.clone(),
                ));
            } else {
                owner.policies.add(DisclosurePolicy::rule(
                    format!("p{level}-{alt}"),
                    resource.clone(),
                    terms,
                ));
            }
            governed = true;
        }
        let _ = governed;
    }
    controller.policies.add(DisclosurePolicy::rule(
        "root",
        Resource::service("Target"),
        vec![Term::of_type("T0")],
    ));
    requester.trust_root(ca.public_key());
    controller.trust_root(ca.public_key());
    (requester, controller)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Engine completeness: negotiate() succeeds exactly when the
    /// exhaustive enumerator finds at least one satisfiable view.
    #[test]
    fn engine_agrees_with_enumerator_on_random_dags(
        n in 1usize..8,
        structure in proptest::collection::vec(any::<u8>(), 1..24),
    ) {
        let (requester, controller) = random_dag(n, &structure);
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let views = trust_vo::negotiation::enumerate_sequences(
            &requester, &controller, "Target", &cfg, 500,
        );
        let outcome = negotiate(&requester, &controller, "Target", &cfg);
        prop_assert_eq!(
            outcome.is_ok(),
            !views.is_empty(),
            "engine {:?} vs {} enumerated views",
            outcome.err(),
            views.len()
        );
    }

    /// The engine's chosen sequence always appears among the enumerated
    /// views (it never invents a sequence the enumerator can't derive).
    #[test]
    fn engine_sequence_is_an_enumerated_view(
        n in 1usize..8,
        structure in proptest::collection::vec(any::<u8>(), 1..24),
    ) {
        let (requester, controller) = random_dag(n, &structure);
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        if let Ok(outcome) = negotiate(&requester, &controller, "Target", &cfg) {
            let views = trust_vo::negotiation::enumerate_sequences(
                &requester, &controller, "Target", &cfg, 2000,
            );
            prop_assert!(
                views.contains(&outcome.sequence),
                "sequence {} not among {} views",
                outcome.sequence,
                views.len()
            );
        }
    }

    /// view counting and enumeration agree on random DAGs.
    #[test]
    fn count_views_matches_enumeration_on_random_dags(
        n in 1usize..7,
        structure in proptest::collection::vec(any::<u8>(), 1..24),
    ) {
        let (requester, controller) = random_dag(n, &structure);
        let cfg = NegotiationConfig::new(Strategy::Standard, at());
        let enumerated = trust_vo::negotiation::enumerate_sequences(
            &requester, &controller, "Target", &cfg, 5000,
        ).len();
        let counted = trust_vo::negotiation::count_views(
            &requester, &controller, "Target", &cfg, 5000,
        );
        prop_assert_eq!(enumerated, counted);
    }
}
