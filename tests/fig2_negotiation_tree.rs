//! E2 — the Fig. 2 negotiation tree, end to end across crates.

use trust_vo::negotiation::message::Side;
use trust_vo::negotiation::Strategy;
use trust_vo::vo::scenario::{names, AircraftScenario};

#[test]
fn fig2_tree_structure_matches_the_paper() {
    let scenario = AircraftScenario::build();
    let outcome = scenario.fig2_negotiation(Strategy::Standard).unwrap();

    // Root: the requested VO membership, controlled by the Aircraft side.
    let rendered = outcome.tree.render();
    assert!(rendered.contains("VoMembership <controller>"), "{rendered}");
    // First level: the quality requirement on the Aerospace side.
    assert!(
        rendered.contains("ISO9000Certified <requester>"),
        "{rendered}"
    );
    // Second level: the accreditation counter-requirement.
    assert!(
        rendered.contains("AAAccreditation <controller>"),
        "{rendered}"
    );
    // The chosen path is marked.
    assert!(rendered.contains("[edge vo-portal *]"), "{rendered}");
    assert_eq!(outcome.tree.depth(), 3);
}

#[test]
fn fig2_trust_sequence_orders_accreditation_first() {
    let scenario = AircraftScenario::build();
    let outcome = scenario.fig2_negotiation(Strategy::Standard).unwrap();
    let sequence: Vec<(Side, &str)> = outcome
        .sequence
        .disclosures()
        .iter()
        .map(|d| (d.by, d.cred_type.as_str()))
        .collect();
    assert_eq!(
        sequence,
        [
            (Side::Controller, "AAAccreditation"),
            (Side::Requester, "ISO9000Certified"),
        ]
    );
}

#[test]
fn fig2_alternative_branch_exists_as_multialternative() {
    // The paper's Fig. 2 shows TWO alternatives under the quality node:
    // AAACreditation or a balance sheet. Both must be counted as views.
    let scenario = AircraftScenario::build();
    let mut initiator = scenario.provider(names::AIRCRAFT).party.clone();
    if let Some(set) = scenario
        .contract
        .policies_for(trust_vo::vo::scenario::roles::DESIGN_PORTAL)
    {
        for p in set.iter() {
            initiator.policies.add(p.clone());
        }
    }
    let aerospace = &scenario.provider(names::AEROSPACE).party;
    let cfg = trust_vo::negotiation::NegotiationConfig::new(
        Strategy::Standard,
        trust_vo::vo::scenario::scenario_time(),
    );
    let views =
        trust_vo::negotiation::count_views(aerospace, &initiator, "VoMembership", &cfg, 100);
    assert_eq!(
        views, 2,
        "AAACreditation and BusinessProof/balance-sheet alternatives"
    );
}

#[test]
fn fig2_succeeds_under_every_strategy_with_identical_sequences() {
    let scenario = AircraftScenario::build();
    let baseline = scenario.fig2_negotiation(Strategy::Standard).unwrap();
    for strategy in Strategy::ALL {
        let outcome = scenario.fig2_negotiation(strategy).unwrap();
        assert_eq!(
            outcome.sequence, baseline.sequence,
            "strategy {strategy} changed the agreed trust sequence"
        );
    }
}
