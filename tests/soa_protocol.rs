//! The TN web service protocol over the scenario parties: the §6.2 stack
//! (ClientWS → bus → TnService → negotiation engine → store).

use std::sync::Arc;
use trust_vo::negotiation::Strategy;
use trust_vo::soa::client::run_negotiation;
use trust_vo::soa::simclock::{CostKind, SimDuration};
use trust_vo::soa::{Envelope, ServiceBus, TnService};
use trust_vo::store::Database;
use trust_vo::vo::scenario::{names, roles, AircraftScenario};
use trust_vo::xmldoc::Element;

fn service_setup() -> (ServiceBus, Arc<TnService>) {
    let scenario = AircraftScenario::build();
    let clock = scenario.toolkit.clock.clone();
    clock.reset();
    let service = TnService::new(clock.clone(), Database::new());
    let mut initiator = scenario.provider(names::AIRCRAFT).party.clone();
    if let Some(set) = scenario.contract.policies_for(roles::DESIGN_PORTAL) {
        for policy in set.iter() {
            initiator.policies.add(policy.clone());
        }
    }
    service.register_party(initiator);
    service.register_party(scenario.provider(names::AEROSPACE).party.clone());
    let service = Arc::new(service);
    let bus = ServiceBus::new(clock);
    bus.register("tn", service.clone());
    (bus, service)
}

#[test]
fn client_completes_the_scenario_negotiation() {
    let (bus, service) = service_setup();
    let run = run_negotiation(
        &bus,
        "tn",
        names::AEROSPACE,
        names::AIRCRAFT,
        "VoMembership",
        Strategy::Standard,
    )
    .unwrap();
    assert_eq!(run.sequence_len, 2);
    assert!(service.is_completed(run.negotiation_id));
    assert!(run.sim_elapsed > SimDuration::ZERO);
}

#[test]
fn all_strategies_complete_over_the_service() {
    for strategy in Strategy::ALL {
        let (bus, service) = service_setup();
        let run = run_negotiation(
            &bus,
            "tn",
            names::AEROSPACE,
            names::AIRCRAFT,
            "VoMembership",
            strategy,
        )
        .unwrap_or_else(|e| panic!("{strategy}: {e}"));
        assert!(service.is_completed(run.negotiation_id), "{strategy}");
    }
}

#[test]
fn suspicious_strategy_costs_more_sim_time_than_trusting() {
    let mut elapsed = Vec::new();
    for strategy in [Strategy::Trusting, Strategy::StrongSuspicious] {
        let (bus, _service) = service_setup();
        let run = run_negotiation(
            &bus,
            "tn",
            names::AEROSPACE,
            names::AIRCRAFT,
            "VoMembership",
            strategy,
        )
        .unwrap();
        elapsed.push(run.sim_elapsed);
    }
    assert!(
        elapsed[1] >= elapsed[0],
        "strong-suspicious {:?} < trusting {:?}",
        elapsed[1],
        elapsed[0]
    );
}

#[test]
fn service_charges_expected_cost_kinds() {
    let (bus, _service) = service_setup();
    run_negotiation(
        &bus,
        "tn",
        names::AEROSPACE,
        names::AIRCRAFT,
        "VoMembership",
        Strategy::Standard,
    )
    .unwrap();
    let counts = bus.clock().counts();
    // 4 SOAP calls minimum: start + policy + 2 credential exchanges.
    assert!(counts[&CostKind::SoapRoundTrip] >= 4);
    assert!(counts[&CostKind::DbQuery] >= 3);
    assert!(counts[&CostKind::SignatureVerify] >= 2);
    assert!(counts[&CostKind::PolicyEvaluation] >= 1);
}

#[test]
fn concurrent_negotiations_get_distinct_ids() {
    let (bus, service) = service_setup();
    let mut ids = Vec::new();
    for _ in 0..4 {
        let run = run_negotiation(
            &bus,
            "tn",
            names::AEROSPACE,
            names::AIRCRAFT,
            "VoMembership",
            Strategy::Standard,
        )
        .unwrap();
        ids.push(run.negotiation_id);
    }
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 4);
    for id in ids {
        assert!(service.is_completed(id));
    }
}

#[test]
fn malformed_envelopes_fault_without_state_damage() {
    let (bus, service) = service_setup();
    // Missing negotiation id.
    let err = bus
        .call(
            "tn",
            &Envelope::request("PolicyExchange", Element::new("x")),
        )
        .unwrap_err();
    assert_eq!(err.code, "BadRequest");
    // A good run still works afterwards.
    let run = run_negotiation(
        &bus,
        "tn",
        names::AEROSPACE,
        names::AIRCRAFT,
        "VoMembership",
        Strategy::Standard,
    )
    .unwrap();
    assert!(service.is_completed(run.negotiation_id));
}
