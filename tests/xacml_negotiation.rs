//! The §8 extensions working end-to-end: XACML-imported policies and
//! compiled group conditions driving real negotiations.

use trust_vo::credential::{Attribute, CredentialAuthority, TimeRange, Timestamp};
use trust_vo::negotiation::{negotiate, NegotiationConfig, Party, Strategy};
use trust_vo::policy::{
    import_policy, vo_property_term, DisclosurePolicy, GroupCondition, Resource, Term,
};

fn window() -> TimeRange {
    TimeRange::one_year_from(Timestamp::parse_iso("2009-10-26T21:32:52").unwrap())
}

fn at() -> Timestamp {
    Timestamp::parse_iso("2009-12-01T00:00:00").unwrap()
}

const XACML: &str = r#"
<Policy PolicyId="vo-portal-xacml">
  <Target>
    <Resources><Resource>
      <ResourceMatch MatchId="urn:oasis:names:tc:xacml:1.0:function:string-equal">
        <AttributeValue>VoMembership</AttributeValue>
        <ResourceAttributeDesignator AttributeId="urn:oasis:names:tc:xacml:1.0:resource:resource-id"/>
      </ResourceMatch>
    </Resource></Resources>
  </Target>
  <Rule RuleId="iso-route" Effect="Permit">
    <Condition>
      <Apply FunctionId="urn:oasis:names:tc:xacml:1.0:function:string-equal">
        <SubjectAttributeDesignator AttributeId="ISO9000Certified/QualityRegulation"/>
        <AttributeValue>UNI EN ISO 9000</AttributeValue>
      </Apply>
    </Condition>
  </Rule>
  <Rule RuleId="deny-all" Effect="Deny"/>
</Policy>"#;

#[test]
fn xacml_imported_policy_drives_a_negotiation() {
    let mut ca = CredentialAuthority::new("INFN");
    let mut requester = Party::new("Aerospace");
    let mut controller = Party::new("Aircraft");
    let cred = ca
        .issue(
            "ISO9000Certified",
            "Aerospace",
            requester.keys.public,
            vec![Attribute::new("QualityRegulation", "UNI EN ISO 9000")],
            window(),
        )
        .unwrap();
    requester.profile.add(cred);
    requester.trust_root(ca.public_key());
    controller.trust_root(ca.public_key());

    // The controller's policies come straight from the XACML document.
    let doc = trust_vo::xmldoc::parse(XACML).unwrap();
    for policy in import_policy(&doc).unwrap() {
        controller.policies.add(policy);
    }

    let cfg = NegotiationConfig::new(Strategy::Standard, at());
    let outcome = negotiate(&requester, &controller, "VoMembership", &cfg).unwrap();
    assert_eq!(outcome.sequence.len(), 1);
    assert_eq!(
        outcome.sequence.disclosures()[0].cred_type,
        "ISO9000Certified"
    );
}

#[test]
fn xacml_imported_policy_rejects_noncompliant_requester() {
    let mut ca = CredentialAuthority::new("INFN");
    let mut requester = Party::new("Shady");
    let mut controller = Party::new("Aircraft");
    // Wrong regulation value — the imported condition must reject it.
    let cred = ca
        .issue(
            "ISO9000Certified",
            "Shady",
            requester.keys.public,
            vec![Attribute::new("QualityRegulation", "ISO 14000")],
            window(),
        )
        .unwrap();
    requester.profile.add(cred);
    let doc = trust_vo::xmldoc::parse(XACML).unwrap();
    for policy in import_policy(&doc).unwrap() {
        controller.policies.add(policy);
    }
    let cfg = NegotiationConfig::new(Strategy::Standard, at());
    assert!(negotiate(&requester, &controller, "VoMembership", &cfg).is_err());
}

#[test]
fn two_of_three_group_condition_negotiates() {
    let mut ca = CredentialAuthority::new("CA");
    let mut requester = Party::new("R");
    let mut controller = Party::new("C");
    // The requester holds exactly two of the three acceptable credentials.
    for ty in ["IsoCert", "BalanceSheet"] {
        let cred = ca
            .issue(ty, "R", requester.keys.public, vec![], window())
            .unwrap();
        requester.profile.add(cred);
    }
    requester.trust_root(ca.public_key());
    controller.trust_root(ca.public_key());
    let group = GroupCondition::new(
        2,
        vec![
            Term::of_type("IsoCert"),
            Term::of_type("Accreditation"), // not held
            Term::of_type("BalanceSheet"),
        ],
    );
    for policy in group.compile("grp", Resource::service("Svc")) {
        controller.policies.add(policy);
    }
    let cfg = NegotiationConfig::new(Strategy::Standard, at());
    let outcome = negotiate(&requester, &controller, "Svc", &cfg).unwrap();
    let mut types: Vec<_> = outcome
        .sequence
        .disclosures()
        .iter()
        .map(|d| d.cred_type.clone())
        .collect();
    types.sort();
    assert_eq!(types, ["BalanceSheet", "IsoCert"]);
    // The first alternative (IsoCert + Accreditation) failed on the
    // missing accreditation before the satisfiable pair was found.
    assert!(outcome.transcript.failed_alternatives >= 1);
}

#[test]
fn group_condition_fails_when_k_unreachable() {
    let mut ca = CredentialAuthority::new("CA");
    let mut requester = Party::new("R");
    let mut controller = Party::new("C");
    let cred = ca
        .issue("IsoCert", "R", requester.keys.public, vec![], window())
        .unwrap();
    requester.profile.add(cred); // holds only one
    let group = GroupCondition::new(
        2,
        vec![
            Term::of_type("IsoCert"),
            Term::of_type("Accreditation"),
            Term::of_type("BalanceSheet"),
        ],
    );
    for policy in group.compile("grp", Resource::service("Svc")) {
        controller.policies.add(policy);
    }
    let cfg = NegotiationConfig::new(Strategy::Standard, at());
    assert!(negotiate(&requester, &controller, "Svc", &cfg).is_err());
}

#[test]
fn vo_property_term_gates_on_membership_token() {
    // A member's VO membership, re-encoded as an X-TNL credential, opens a
    // resource gated by a VO-property term (the "credentials that describe
    // VO properties" extension).
    let mut ca = CredentialAuthority::new("Aircraft Company");
    let mut requester = Party::new("HPC");
    let mut controller = Party::new("Storage");
    let token = ca
        .issue(
            "VoMembershipToken",
            "HPC",
            requester.keys.public,
            vec![
                Attribute::new("vo", "AircraftOptimization"),
                Attribute::new("role", "HpcPartnerService"),
            ],
            window(),
        )
        .unwrap();
    requester.profile.add(token);
    requester.trust_root(ca.public_key());
    controller.trust_root(ca.public_key());
    controller.policies.add(DisclosurePolicy::rule(
        "store-gate",
        Resource::service("StoreAnalysisData"),
        vec![vo_property_term(Some("AircraftOptimization"), None)],
    ));
    let cfg = NegotiationConfig::new(Strategy::Standard, at());
    assert!(negotiate(&requester, &controller, "StoreAnalysisData", &cfg).is_ok());

    // A token from a different VO does not open the gate.
    let mut outsider = Party::new("Outsider");
    let other_token = ca
        .issue(
            "VoMembershipToken",
            "Outsider",
            outsider.keys.public,
            vec![Attribute::new("vo", "SomeOtherVo")],
            window(),
        )
        .unwrap();
    outsider.profile.add(other_token);
    outsider.trust_root(ca.public_key());
    assert!(negotiate(&outsider, &controller, "StoreAnalysisData", &cfg).is_err());
}
