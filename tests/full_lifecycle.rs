//! E3 — the full VO lifecycle (Figs. 3–4): Preparation, Identification,
//! Formation (with TN), Operation (authorization TN, expiry, violation,
//! replacement), Dissolution.

use trust_vo::credential::RevocationList;
use trust_vo::negotiation::Strategy;
use trust_vo::soa::simclock::SimDuration;
use trust_vo::vo::lifecycle::Phase;
use trust_vo::vo::mailbox::MailboxSystem;
use trust_vo::vo::operation::{
    authorize_operation, renew_membership, replace_member, verify_membership, OperationLog,
};
use trust_vo::vo::reputation::ReputationLedger;
use trust_vo::vo::scenario::{names, roles, AircraftScenario};

#[test]
fn lifecycle_walks_all_phases() {
    let mut scenario = AircraftScenario::build();
    let mut vo = scenario.form_vo(Strategy::Standard).unwrap();
    // Formation left us in Operation, having passed through all prior phases.
    assert_eq!(vo.lifecycle.phase(), Phase::Operation);
    let phases: Vec<Phase> = vo.lifecycle.history().iter().map(|(p, _)| *p).collect();
    assert_eq!(
        phases,
        [
            Phase::Preparation,
            Phase::Identification,
            Phase::Formation,
            Phase::Operation
        ]
    );

    let mut crl = RevocationList::new();
    let report =
        trust_vo::vo::dissolution::dissolve(&mut vo, &mut crl, &scenario.toolkit.clock).unwrap();
    assert_eq!(vo.lifecycle.phase(), Phase::Dissolution);
    assert_eq!(report.certificates_revoked, 4);
}

#[test]
fn formation_assigns_best_quality_provider_per_role() {
    let mut scenario = AircraftScenario::build();
    let vo = scenario.form_vo(Strategy::Standard).unwrap();
    // HPC Services Inc (quality 0.95) beats HPC Backup Corp (0.85).
    assert_eq!(vo.member_for_role(roles::HPC).unwrap().provider, names::HPC);
}

#[test]
fn operation_phase_authorization_and_monitoring() {
    let mut scenario = AircraftScenario::build();
    let vo = scenario.form_vo(Strategy::Standard).unwrap();
    let providers = scenario.toolkit.providers.clone();
    let clock = scenario.toolkit.clock.clone();

    // Authorization TN between two members (§5.1: result is an
    // authorization, not a credential).
    let auth = authorize_operation(
        &vo,
        &providers,
        names::CONSULTANCY,
        names::HPC,
        "FlowSolution",
        &mut scenario.toolkit.reputation,
        &clock,
        Strategy::Standard,
    )
    .unwrap();
    assert_eq!(auth.granted_to, names::CONSULTANCY);

    // A member without the privacy credential is denied.
    let err = authorize_operation(
        &vo,
        &providers,
        names::STORAGE,
        names::HPC,
        "FlowSolution",
        &mut scenario.toolkit.reputation,
        &clock,
        Strategy::Standard,
    )
    .unwrap_err();
    assert!(matches!(err, trust_vo::vo::VoError::Negotiation(_)));
    // The failed TN lowered the requester's reputation (§5.1).
    assert!(scenario.toolkit.reputation.get(names::STORAGE) < 0.6);

    // Monitoring records interactions and updates reputation.
    let mut log = OperationLog::new();
    log.record(
        &vo,
        &mut scenario.toolkit.reputation,
        names::HPC,
        names::STORAGE,
        "store results",
        false,
        clock.timestamp(),
    )
    .unwrap();
    assert_eq!(log.records().len(), 1);
}

#[test]
fn expiry_renewal_flow() {
    let mut scenario = AircraftScenario::build();
    let mut vo = scenario.form_vo(Strategy::Standard).unwrap();
    let clock = scenario.toolkit.clock.clone();
    let crl = RevocationList::new();

    let record = vo.member_for_role(roles::DESIGN_PORTAL).unwrap().clone();
    assert!(verify_membership(&vo, &record, clock.timestamp(), &crl).is_ok());

    // Two simulated years later the membership certificate is expired…
    clock.advance(SimDuration::from_millis(2 * 365 * 24 * 3600 * 1000));
    assert!(verify_membership(&vo, &record, clock.timestamp(), &crl).is_err());

    // …but the member's underlying ISO credential is also expired, so a
    // renewal TN must fail until the authority re-issues.
    let initiator = scenario.provider(names::AIRCRAFT).clone();
    let providers = scenario.toolkit.providers.clone();
    let err = renew_membership(
        &mut vo,
        &initiator,
        &providers,
        names::AEROSPACE,
        &mut MailboxSystem::new(),
        &mut ReputationLedger::new(),
        &clock,
        Strategy::Standard,
    )
    .unwrap_err();
    assert!(matches!(err, trust_vo::vo::VoError::Negotiation(_)));

    // The failed renewal must NOT have dropped the membership record.
    assert!(vo.member_for_role(roles::DESIGN_PORTAL).is_some());

    // Re-issue fresh credentials on both sides (the two-year jump expired
    // everything): a new ISO 9000 certificate for the member and a new AAA
    // accreditation for the initiator. The renewal TN then succeeds and
    // retires the expired membership certificate.
    let window = trust_vo::credential::TimeRange::one_year_from(clock.timestamp());
    let mut providers = providers;
    let aerospace = providers.get_mut(names::AEROSPACE).unwrap();
    let infn = scenario.authorities.get_mut("INFN").unwrap();
    let fresh = infn
        .issue(
            "ISO9000Certified",
            names::AEROSPACE,
            aerospace.party.keys.public,
            vec![trust_vo::credential::Attribute::new(
                "QualityRegulation",
                "UNI EN ISO 9000",
            )],
            window,
        )
        .unwrap();
    aerospace.party.profile.add(fresh);
    let mut initiator = initiator;
    let aaa = scenario
        .authorities
        .get_mut("American Aircraft Association")
        .unwrap();
    let fresh_accr = aaa
        .issue(
            "AAAccreditation",
            names::AIRCRAFT,
            initiator.party.keys.public,
            vec![],
            window,
        )
        .unwrap();
    initiator.party.profile.add(fresh_accr);
    let record = renew_membership(
        &mut vo,
        &initiator,
        &providers,
        names::AEROSPACE,
        &mut MailboxSystem::new(),
        &mut ReputationLedger::new(),
        &clock,
        Strategy::Standard,
    )
    .unwrap();
    assert!(verify_membership(&vo, &record, clock.timestamp(), &RevocationList::new()).is_ok());
    assert_eq!(
        vo.members()
            .iter()
            .filter(|m| m.role == roles::DESIGN_PORTAL)
            .count(),
        1,
        "exactly one portal membership after renewal"
    );
}

#[test]
fn replacement_after_reputation_drop() {
    let mut scenario = AircraftScenario::build();
    let mut vo = scenario.form_vo(Strategy::Standard).unwrap();
    let initiator = scenario.provider(names::AIRCRAFT).clone();
    let providers = scenario.toolkit.providers.clone();
    let clock = scenario.toolkit.clock.clone();

    let mut log = OperationLog::new();
    for _ in 0..2 {
        log.record(
            &vo,
            &mut scenario.toolkit.reputation,
            names::HPC,
            names::STORAGE,
            "SLA miss",
            true,
            clock.timestamp(),
        )
        .unwrap();
    }
    assert!(scenario
        .toolkit
        .reputation
        .needs_replacement(names::HPC, trust_vo::vo::operation::REPLACEMENT_THRESHOLD));

    let mut crl = RevocationList::new();
    let record = replace_member(
        &mut vo,
        &initiator,
        &providers,
        &scenario.toolkit.registry,
        roles::HPC,
        &mut crl,
        &mut MailboxSystem::new(),
        &mut scenario.toolkit.reputation,
        &clock,
        Strategy::Standard,
    )
    .unwrap();
    assert_eq!(record.provider, names::HPC_BACKUP);
    assert!(crl.len() == 1, "old membership certificate revoked");
    assert_eq!(vo.members().len(), 4);
}
