//! End-to-end adversarial-load integration (E14): one flooding identity
//! cannot starve other parties' negotiations.
//!
//! A mana-gated `ServiceBus` behind the netsim fault injector carries an
//! honest resilient VO formation while "FloodCo" fires bogus
//! `StartNegotiation` calls interleaved with every honest call. The gate
//! must refuse the flood with typed `budget_exhausted` faults (free of
//! simulated cost), the honest formation must fill every role, and its
//! sim time must stay within the E14 bound of the flood-free baseline —
//! whereas the same flood on an ungated bus visibly delays it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use trust_vo::admission::{AdmissionGate, ManaConfig, ManaLedger};
use trust_vo::negotiation::Strategy;
use trust_vo::netsim::{FaultPlan, NetSim};
use trust_vo::soa::simclock::{CostModel, SimClock, SimDuration};
use trust_vo::soa::{Envelope, Fault, ResumePolicy, RetryPolicy, ServiceBus, TnService, Transport};
use trust_vo::store::Database;
use trust_vo::vo::mailbox::MailboxSystem;
use trust_vo::vo::{
    form_vo_resilient_admitted, register_formation_parties, AdmissionControl, ReputationLedger,
};
use trust_vo::xmldoc::Element;

const SEED: u64 = 7;
const FLOODER: &str = "FloodCo";

/// Fires `per_call` bogus starts from the flooder before forwarding each
/// honest call, counting how each one fared at the gate.
struct FloodingNet<'a> {
    net: &'a NetSim,
    per_call: usize,
    counter: AtomicU64,
    admitted: AtomicU64,
    refused: AtomicU64,
}

impl Transport for FloodingNet<'_> {
    fn call(&self, service: &str, request: &Envelope) -> Result<Envelope, Fault> {
        for _ in 0..self.per_call {
            let i = self.counter.fetch_add(1, Ordering::SeqCst);
            let env = Envelope::request(
                "StartNegotiation",
                Element::new("StartNegotiationRequest")
                    .child(Element::new("strategy").text(Strategy::Standard.wire_name()))
                    .child(Element::new("requester").text(FLOODER))
                    .child(Element::new("counterpartUrl").text("tn"))
                    .child(Element::new("resource").text("VoMembership")),
            )
            .with_idempotency(0xF100_D000_0000_0000 | i);
            match self.net.call("tn", &env) {
                Err(f) if f.is_budget_exhausted() => {
                    assert_eq!(f.retry_after_us.map(|us| us > 0), Some(true));
                    self.refused.fetch_add(1, Ordering::SeqCst);
                }
                _ => {
                    self.admitted.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        self.net.call(service, request)
    }

    fn clock(&self) -> &SimClock {
        self.net.clock()
    }
}

/// Run the E10 batch-admission world over a (possibly gated) bus with
/// `per_call` flood starts per honest call. Returns the total sim time
/// and the flood's (admitted, refused) tally.
fn run(gated: bool, per_call: usize) -> (SimDuration, u64, u64) {
    let world = trust_vo_bench::workloads::parallel_join_world(3, 3, 2);
    let clock = SimClock::new(CostModel::paper_testbed(), trust_vo_bench::workloads::at());
    let bus = ServiceBus::new(clock.clone());
    let svc = Arc::new(TnService::new(clock.clone(), Database::new()));
    register_formation_parties(&svc, &world.contract, &world.initiator, &world.providers);
    bus.register("tn", svc);
    if gated {
        // A tight budget: a 4-start burst, then a trickle — honest
        // parties (one start per role) never graze it, the flood drowns.
        let mana = Arc::new(ManaLedger::new(ManaConfig {
            capacity: 4.0,
            refill_per_sec: 0.25,
            cost_per_call: 1.0,
        }));
        bus.set_gate(Arc::new(AdmissionGate::new(mana, bus.clock().clone())));
    }
    let net = NetSim::new(bus, FaultPlan::reliable(SEED));
    let flood = FloodingNet {
        net: &net,
        per_call,
        counter: AtomicU64::new(0),
        admitted: AtomicU64::new(0),
        refused: AtomicU64::new(0),
    };

    let admission = AdmissionControl::default();
    let (vo, _stats) = form_vo_resilient_admitted(
        world.contract.clone(),
        &world.initiator,
        &world.providers,
        &world.registry,
        &mut MailboxSystem::new(),
        &mut ReputationLedger::new(),
        &flood,
        "tn",
        Strategy::Standard,
        &RetryPolicy::standard(),
        &ResumePolicy::standard(),
        SEED,
        &admission,
    )
    .expect("honest formation completes under flood");
    assert_eq!(
        vo.members().len(),
        world.contract.roles.len(),
        "the flood must not cost any honest party its seat"
    );
    (
        net.clock().elapsed(),
        flood.admitted.load(Ordering::SeqCst),
        flood.refused.load(Ordering::SeqCst),
    )
}

#[test]
fn flooding_identity_cannot_starve_honest_parties() {
    let (baseline, _, _) = run(true, 0);
    let (flooded, admitted, refused) = run(true, 3);
    // The flood hit the budget wall: most of it was refused, for free.
    assert!(refused > 0, "the gate must refuse the flood");
    assert!(
        admitted < refused,
        "most of the flood must be refused ({admitted} admitted, {refused} refused)"
    );
    // Honest sim time stays within the E14 bound of the flood-free run.
    assert!(
        flooded.0 as f64 <= baseline.0 as f64 * 1.25,
        "budgets must keep honest latency within 25% of flood-free \
         (flooded {flooded:?} vs baseline {baseline:?})"
    );
    // The same flood without budgets pays a round trip per bogus start
    // and delays the honest formation past what the gate ever allows.
    let (unthrottled, open_admitted, open_refused) = run(false, 3);
    assert_eq!(open_refused, 0, "an ungated bus refuses nothing");
    assert!(open_admitted > admitted);
    assert!(
        unthrottled > flooded,
        "the gate must beat the open bus under the same flood \
         ({unthrottled:?} vs {flooded:?})"
    );
}
