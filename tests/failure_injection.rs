//! Failure injection: every tampering, forgery, or corruption an attacker
//! could attempt on the wire must be detected — never a panic, never a
//! silent acceptance.

use proptest::prelude::*;
use trust_vo::credential::{Attribute, Credential, CredentialAuthority, TimeRange, Timestamp};
use trust_vo::crypto::KeyPair;
use trust_vo::negotiation::Strategy;
use trust_vo::vo::scenario::{names, AircraftScenario};

fn window() -> TimeRange {
    TimeRange::one_year_from(Timestamp::parse_iso("2009-10-26T21:32:52").unwrap())
}

fn at() -> Timestamp {
    Timestamp::parse_iso("2009-12-01T00:00:00").unwrap()
}

fn sample_credential() -> Credential {
    let mut ca = CredentialAuthority::new("INFN");
    let keys = KeyPair::from_seed(b"holder");
    ca.issue(
        "ISO9000Certified",
        "Aerospace Company",
        keys.public,
        vec![
            Attribute::new("QualityRegulation", "UNI EN ISO 9000"),
            Attribute::new("AuditScore", 97i64),
        ],
        window(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any single-byte mutation of a credential's wire form either fails
    /// to parse or fails signature verification. (A mutation confined to
    /// the base64 signature may decode to different bytes; verification
    /// must still reject it.)
    #[test]
    fn wire_mutations_never_verify(
        idx in any::<prop::sample::Index>(),
        replacement in any::<u8>(),
    ) {
        let cred = sample_credential();
        let wire = trust_vo::xmldoc::to_string(&cred.to_xml());
        let mut bytes = wire.clone().into_bytes();
        let i = idx.index(bytes.len());
        if bytes[i] == replacement {
            return Ok(()); // not a mutation
        }
        bytes[i] = replacement;
        let Ok(text) = String::from_utf8(bytes) else { return Ok(()) };
        let Ok(doc) = trust_vo::xmldoc::parse(&text) else { return Ok(()) };
        let Ok(parsed) = Credential::from_xml(&doc) else { return Ok(()) };
        if parsed == cred {
            return Ok(()); // semantically identical (e.g. mutated whitespace)
        }
        prop_assert!(
            parsed.verify_signature().is_err(),
            "mutated credential verified! byte {i} -> {replacement:#x}"
        );
    }

    /// Ownership proofs cannot be replayed across nonces or forged by a
    /// random signature.
    #[test]
    fn ownership_proofs_not_replayable(r in any::<u64>(), s in any::<u64>()) {
        let keys = KeyPair::from_seed(b"holder");
        let cred = {
            let mut ca = CredentialAuthority::new("CA");
            ca.issue("T", "holder", keys.public, vec![], window()).unwrap()
        };
        // A random (r, s) pair must not authenticate.
        let forged = trust_vo::crypto::Signature { r, s };
        prop_assert!(cred.authenticate_ownership(b"nonce", &forged).is_err());
        // A genuine proof for one nonce fails for another.
        let proof = Credential::prove_ownership(&keys, b"nonce-1");
        prop_assert!(cred.authenticate_ownership(b"nonce-1", &proof).is_ok());
        prop_assert!(cred.authenticate_ownership(b"nonce-2", &proof).is_err());
    }
}

#[test]
fn stolen_profile_without_keys_is_useless() {
    // An attacker clones the Aerospace Company's X-Profile but has its own
    // key pair. Under a suspicious strategy the ownership proof fails.
    let scenario = AircraftScenario::build();
    let aerospace = scenario.provider(names::AEROSPACE).party.clone();
    let mut thief = trust_vo::negotiation::Party::new("Industrial Spy");
    thief.profile = aerospace.profile.clone();
    thief.policies = aerospace.policies.clone();
    thief.ontology = aerospace.ontology.clone();
    thief.trusted_roots = aerospace.trusted_roots.clone();

    let mut initiator = scenario.provider(names::AIRCRAFT).party.clone();
    if let Some(set) = scenario
        .contract
        .policies_for(trust_vo::vo::scenario::roles::DESIGN_PORTAL)
    {
        for p in set.iter() {
            initiator.policies.add(p.clone());
        }
    }
    let cfg = trust_vo::negotiation::NegotiationConfig::new(Strategy::Suspicious, at());
    let result = trust_vo::negotiation::negotiate(&thief, &initiator, "VoMembership", &cfg);
    assert!(
        matches!(
            result,
            Err(trust_vo::negotiation::NegotiationError::TrustFailure {
                cause: trust_vo::credential::CredentialError::NotOwner { .. }
            })
        ),
        "{result:?}"
    );
    // Under the (ownership-proof-free) standard strategy the same theft
    // would slip through phase 2 — which is exactly why the suspicious
    // strategies exist. Document that contrast:
    let cfg = trust_vo::negotiation::NegotiationConfig::new(Strategy::Standard, at());
    assert!(trust_vo::negotiation::negotiate(&thief, &initiator, "VoMembership", &cfg).is_ok());
}

#[test]
fn forged_membership_certificate_rejected_by_monitoring() {
    let mut scenario = AircraftScenario::build();
    let mut vo = scenario.form_vo(Strategy::Standard).unwrap();
    // Forge: swap the role attribute on a real certificate.
    let record = &mut vo.members[0];
    record.certificate.attributes[1].1 = "Initiator".into();
    let report = scenario.toolkit.host_monitor(
        &vo,
        &trust_vo::credential::RevocationList::new(),
        trust_vo::vo::operation::REPLACEMENT_THRESHOLD,
    );
    assert_eq!(report.invalid_memberships, [vo.members[0].provider.clone()]);
}

#[test]
fn clock_skew_cannot_resurrect_expired_credentials() {
    // A verifier whose clock runs behind would accept an expired
    // credential — the sim-clock gives the *receiver's* time to the
    // engine, so skew on the sender side has no effect.
    let cred = sample_credential();
    let just_expired = window().not_after.plus_seconds(1);
    assert!(cred.verify(just_expired, None).is_err());
    assert!(cred.verify(window().not_after, None).is_ok());
}

#[test]
fn selective_disclosure_commitment_swap_rejected() {
    use trust_vo::credential::selective::SelectiveIssuance;
    let issuer = KeyPair::from_seed(b"INFN");
    let holder = KeyPair::from_seed(b"holder");
    let a = SelectiveIssuance::issue(
        1,
        "holder",
        holder.public,
        "INFN",
        &issuer,
        window(),
        &[("score".into(), "97".into())],
    );
    let b = SelectiveIssuance::issue(
        2,
        "holder",
        holder.public,
        "INFN",
        &issuer,
        window(),
        &[("score".into(), "12".into())],
    );
    // Present certificate B (low score) with the opening from A (high
    // score): the commitment check must fail.
    let mut view = b.disclose(&["score"]).unwrap();
    view.revealed = a.disclose(&["score"]).unwrap().revealed;
    assert!(view.verify(at(), None).is_err());
}
