#!/usr/bin/env sh
# Tier-1 gate, one command: build, test, format, lint.
# Also compiles (without running) the criterion benches, which `cargo test`
# skips because they set `harness = false`.
set -eux

cargo build --workspace --release
cargo test --workspace -q
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo bench --workspace --no-run
