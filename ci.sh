#!/usr/bin/env sh
# Tier-1 gate, one command: build, test, format, lint.
# Also compiles (without running) the criterion benches, which `cargo test`
# skips because they set `harness = false`.
set -eux

cargo build --workspace --release
cargo test --workspace -q
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
# Docs, warnings-as-errors, product crates only (the vendored offline
# subsets under vendor/ are out of scope for the doc gate).
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
  -p trust-vo -p trust-vo-bench -p trust-vo-credential -p trust-vo-crypto \
  -p trust-vo-journal -p trust-vo-negotiation -p trust-vo-netsim \
  -p trust-vo-obs -p trust-vo-ontology -p trust-vo-policy -p trust-vo-soa \
  -p trust-vo-store -p trust-vo-vo -p trust-vo-xmldoc -p trust-vo-admission \
  -p trust-vo-scenario
cargo bench --workspace --no-run
# Disabled-instrumentation smoke: with the obs feature compiled out the
# formation bench must still build and complete one shrunken iteration.
cargo run --release -p trust-vo-bench --no-default-features --bin parallel_join_times -- --smoke
cargo run --release -p trust-vo-bench --no-default-features --bin fig9_faulty_join -- --smoke --seed 42
# Chaos determinism gate: the same seed must replay the whole fault
# schedule bit-for-bit — two E11 smoke runs, byte-identical deterministic
# obs dumps (wall-clock fields scrubbed, everything else compared).
cargo run --release -p trust-vo-bench --bin fig9_faulty_join -- --smoke --seed 42 --emit-obs target/e11-chaos-a.jsonl
cargo run --release -p trust-vo-bench --bin fig9_faulty_join -- --smoke --seed 42 --emit-obs target/e11-chaos-b.jsonl
cmp target/e11-chaos-a.jsonl target/e11-chaos-b.jsonl
# Trace determinism gate (E13): same seed, byte-identical deterministic
# Perfetto exports; the runs also assert in-binary that the critical-path
# analyzer attributes >= 95% of each formation root's sim time.
cargo run --release -p trust-vo-bench --bin fig9_faulty_join -- --smoke --seed 42 --emit-trace target/e13-trace-a.json
cargo run --release -p trust-vo-bench --bin fig9_faulty_join -- --smoke --seed 42 --emit-trace target/e13-trace-b.json
cmp target/e13-trace-a.json target/e13-trace-b.json
# The trace must round-trip through the CLI viewer (timeline, attribution
# table, top-k critical path from the JSONL export).
cargo run --release --bin trustvo -- trace target/e11-chaos-a.jsonl --top 5 > /dev/null
# Crypto fast-path gate (E12): speedup floors vs the seed pow_mod path
# and the verified-credential cache hit rate are asserted in-binary.
# target-cpu=native is scoped to this one bench run (with its own target
# dir so the portable artifacts above are untouched): the batch floors
# assume the multi-buffer SHA-256 lanes vectorize, and bench numbers are
# only meaningful for the host that ran them anyway. Everything that
# ships or gets cached is built portable.
RUSTFLAGS="-C target-cpu=native" CARGO_TARGET_DIR=target/native \
  cargo run --release -p trust-vo-bench --bin crypto_bench -- --smoke
# Cache-correctness gate: Fig. 9 must be byte-identical with the
# verified-credential cache disabled (TRUST_VO_CRED_CACHE=0) vs enabled.
cargo run --release -p trust-vo-bench --bin fig9_join_times -- --smoke > target/e12-cache-on.txt
TRUST_VO_CRED_CACHE=0 cargo run --release -p trust-vo-bench --bin fig9_join_times -- --smoke > target/e12-cache-off.txt
cmp target/e12-cache-on.txt target/e12-cache-off.txt
# Journal determinism gate: the same seed must journal the same facts in
# the same frames — two formation runs, byte-identical replay/state
# digests — plus a truncated-journal recovery smoke (every cut in a
# 97-step sweep must restore a clean-prefix state, asserted in-binary).
cargo run --release -p trust-vo-bench --bin journal_workload -- --seed 42 > target/journal-digest-a.txt
cargo run --release -p trust-vo-bench --bin journal_workload -- --seed 42 > target/journal-digest-b.txt
cmp target/journal-digest-a.txt target/journal-digest-b.txt
cargo run --release -p trust-vo-bench --bin journal_workload -- --smoke --seed 42
# Indexed mapping-engine gate (E5b): the similarity-fallback speedup
# floor at n=800 and the n=10000 completeness check are asserted
# in-binary.
cargo run --release -p trust-vo-bench --bin ontology_bench -- --smoke
# Mapping-memo correctness gate: outcome digests must be byte-identical
# with the memo disabled (TRUST_VO_MAP_CACHE=0) vs enabled — the memo
# may change mapping cost, never mapping results.
cargo run --release -p trust-vo-bench --bin ontology_bench -- --digest > target/e5b-memo-on.txt
TRUST_VO_MAP_CACHE=0 cargo run --release -p trust-vo-bench --bin ontology_bench -- --digest > target/e5b-memo-off.txt
cmp target/e5b-memo-on.txt target/e5b-memo-off.txt
# Adversarial-load gates (E14). The smoke run asserts in-binary that the
# flooding identity is rate-limited (budget_exhausted faults observed)
# while honest success rate and sim time stay within the E14 bounds, and
# that serial == parallel == flood-free admitted outcomes. With the obs
# feature compiled out the bin must still build and pass the same asserts.
cargo run --release -p trust-vo-bench --no-default-features --bin fig_adversarial_load -- --smoke --seed 42
# Same-seed determinism: admission decisions must not perturb the netsim
# fault decision stream — two flooded smoke runs, byte-identical
# deterministic obs dumps and Perfetto exports.
cargo run --release -p trust-vo-bench --bin fig_adversarial_load -- --smoke --seed 42 --emit-obs target/e14-a.jsonl --emit-trace target/e14-ta.json
cargo run --release -p trust-vo-bench --bin fig_adversarial_load -- --smoke --seed 42 --emit-obs target/e14-b.jsonl --emit-trace target/e14-tb.json
cmp target/e14-a.jsonl target/e14-b.jsonl
cmp target/e14-ta.json target/e14-tb.json
# Kill-switch byte-identity: TRUST_VO_ADMISSION=off (gated bus with a
# no-op gate, admitted drivers delegating) must match the pre-admission
# path (--plain: ungated bus, plain resilient driver) byte-for-byte.
cargo run --release -p trust-vo-bench --bin fig_adversarial_load -- --smoke --seed 42 --plain --emit-obs target/e14-plain.jsonl --emit-trace target/e14-tplain.json
TRUST_VO_ADMISSION=off cargo run --release -p trust-vo-bench --bin fig_adversarial_load -- --smoke --seed 42 --emit-obs target/e14-off.jsonl --emit-trace target/e14-toff.json
cmp target/e14-plain.jsonl target/e14-off.jsonl
cmp target/e14-tplain.json target/e14-toff.json
# Wire-path gates (E15). The smoke run asserts in-binary that the same
# negotiations produce identical outcomes serially, through the
# single-queue dispatcher bus, and on the sharded work-stealing executor;
# that a seeded netsim formation over the wire replays bit-for-bit
# (serial == parallel == replay == in-process); that a crash window
# forces a checkpointed resume; and that a flood of a tiny dispatch
# queue sheds typed Overloaded faults with drain hints. With the obs
# feature compiled out the bin must still build and pass the same asserts.
cargo run --release -p trust-vo-bench --no-default-features --bin fig_wire_throughput -- --smoke --seed 42
# Same-seed determinism over the async bus: two smoke runs must dump
# byte-identical deterministic obs streams and Perfetto exports.
cargo run --release -p trust-vo-bench --bin fig_wire_throughput -- --smoke --seed 42 --emit-obs target/e15-a.jsonl --emit-trace target/e15-ta.json
cargo run --release -p trust-vo-bench --bin fig_wire_throughput -- --smoke --seed 42 --emit-obs target/e15-b.jsonl --emit-trace target/e15-tb.json
cmp target/e15-a.jsonl target/e15-b.jsonl
cmp target/e15-ta.json target/e15-tb.json
# Wire kill-switch byte-identity: TRUST_VO_WIRE=off (bus skips the byte
# boundary) must match --plain (bus built with the wire disabled)
# byte-for-byte — and the only dump delta vs the wire-on run is the
# bus.wire.* counters (outcome equality is asserted in-binary).
cargo run --release -p trust-vo-bench --bin fig_wire_throughput -- --smoke --seed 42 --plain --emit-obs target/e15-plain.jsonl --emit-trace target/e15-tplain.json
TRUST_VO_WIRE=off cargo run --release -p trust-vo-bench --bin fig_wire_throughput -- --smoke --seed 42 --emit-obs target/e15-off.jsonl --emit-trace target/e15-toff.json
cmp target/e15-plain.jsonl target/e15-off.jsonl
cmp target/e15-tplain.json target/e15-toff.json
# Scenario-fuzzer gates (E16). The smoke run generates 500 seeded
# lifecycle scenarios and checks all four properties in-binary
# (membership <=> completed TN, serial == replay (== parallel when
# order-independent), kill-anywhere journal recovery, honored
# retry_after_us hints); the fixed showcase scenario's obs/Perfetto
# dumps must be byte-identical across two runs. The scenario crate must
# also build with instrumentation compiled out.
cargo build --release -p trust-vo-scenario --no-default-features
cargo run --release -p trust-vo-bench --bin fig_scenario_sweep -- --smoke --seed 42 --emit-obs target/e16-a.jsonl --emit-trace target/e16-ta.json
cargo run --release -p trust-vo-bench --bin fig_scenario_sweep -- --smoke --seed 42 --emit-obs target/e16-b.jsonl --emit-trace target/e16-tb.json
cmp target/e16-a.jsonl target/e16-b.jsonl
cmp target/e16-ta.json target/e16-tb.json
# Shrinker proof: the canary mode requires every scenario to FAIL
# formation, so the first healthy seed violates it deliberately; the
# run asserts in-binary that the shrinker reduces that failure to
# <= 3 parties and <= 2 fault clauses, and the printed repro command
# must re-run through the CLI and report the formation success that
# tripped the canary.
cargo run --release -p trust-vo-bench --bin fig_scenario_sweep -- --canary --seed 42 | tee target/e16-canary.txt
repro=$(sed -n 's/^repro: trustvo //p' target/e16-canary.txt)
cargo run --release --bin trustvo -- $repro | grep -q "all lifecycle properties hold"
