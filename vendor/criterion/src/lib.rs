//! A minimal, API-compatible subset of `criterion` for offline builds of
//! this workspace.
//!
//! Benchmarks run a short calibration pass, then a fixed measurement
//! window, and print mean wall-clock time per iteration. No statistical
//! analysis, plotting, or persistence — just enough to compare relative
//! cost of code paths, which is what this repo's figures need.

#![forbid(unsafe_code)]
// Vendored snapshot: exempt from the workspace clippy policy so new
// toolchain lints don't break the build.
#![allow(clippy::all)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target wall-clock time spent measuring each benchmark.
const MEASUREMENT_WINDOW: Duration = Duration::from_millis(300);

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            group: name.to_string(),
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, &mut routine);
        self
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<I: Display, F>(&mut self, id: I, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.group, id);
        run_benchmark(&label, &mut routine);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I: Display, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.group, id);
        run_benchmark(&label, &mut |b: &mut Bencher| routine(b, input));
        self
    }

    /// End the group (report-flush point in upstream criterion).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this measurement pass's iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(label: &str, routine: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: find how many iterations fit the measurement window.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (MEASUREMENT_WINDOW.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / iters as f64;
    println!("{label:<48} {:>12} ({iters} iters)", format_ns(mean_ns));
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }
}
