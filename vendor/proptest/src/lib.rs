//! A minimal, API-compatible subset of `proptest` for offline builds of
//! this workspace.
//!
//! Implements deterministic random generation (seeded per test name) for
//! the strategy surface the trust-vo crates use: integer ranges, `any`,
//! tuples, `collection::vec`/`btree_set`, `array::uniform32`, regex-subset
//! string strategies, `prop_map`, `prop_recursive`, `prop_oneof!`, and the
//! `proptest!`/`prop_assert*` macros. Shrinking is intentionally omitted:
//! failures report the generated case number; re-running is deterministic.

#![forbid(unsafe_code)]
// Vendored snapshot: exempt from the workspace clippy policy so new
// toolchain lints don't break the build.
#![allow(clippy::all)]

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespaced re-exports matching `proptest::prelude::prop::*` paths.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run a block of property tests: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items. Bodies may use `prop_assert*` and
/// `return Ok(())`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg_pat:pat in $arg_strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $arg_pat =
                                    $crate::strategy::Strategy::generate(&($arg_strat), &mut rng);
                            )*
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(e) if e.is_rejection() => {}
                        ::std::result::Result::Err(e) => {
                            panic!("proptest case {case} of {}: {e}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Assert a condition inside a `proptest!` body (returns an `Err` instead
/// of panicking, like upstream proptest).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        let ok = *left == *right;
        if !ok {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// Assert two values differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
}

/// Discard the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
