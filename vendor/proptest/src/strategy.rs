//! The [`Strategy`] trait and its combinators: `prop_map`,
//! `prop_recursive`, boxing, unions, integer ranges, and tuples.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// Something that can generate values of a given type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy behind a cheaply cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }

    /// Build recursive values: `self` generates leaves, and `recurse` maps
    /// a strategy for subtrees to a strategy for branches. `depth` bounds
    /// the recursion; the other two parameters (upstream's desired size and
    /// expected branch factor) are accepted for API compatibility.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            strat = Union::new_weighted(vec![(1, leaf.clone()), (2, branch)]).boxed();
        }
        strat
    }
}

/// Generated-value transformer returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, cheaply cloneable strategy handle.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always generates clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Picks among several strategies for the same value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform choice among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        Union::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice among `options`.
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "Union requires at least one option");
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "Union weights must not all be zero");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total_weight;
        for (weight, option) in &self.options {
            let weight = u64::from(*weight);
            if pick < weight {
                return option.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (*self.start() as i128 + offset) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::from_seed(2);
        let s = Union::new(vec![
            (0u32..1).prop_map(|_| "low").boxed(),
            (0u32..1).prop_map(|_| "high").boxed(),
        ]);
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..100 {
            match s.generate(&mut rng) {
                "low" => saw_low = true,
                _ => saw_high = true,
            }
        }
        assert!(saw_low && saw_high);
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::from_seed(3);
        for _ in 0..50 {
            let t = tree.generate(&mut rng);
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 1,
                    Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
                }
            }
            assert!(depth(&t) <= 4);
        }
    }
}
