//! The [`Arbitrary`] trait and [`any`] entry point.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical default strategy.
pub trait Arbitrary: Sized {
    /// Generate one value from raw RNG state.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<u8>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary_value(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        // Mostly printable ASCII, keeping generated text simple.
        let c = 0x20 + (rng.next_u64() % 0x5f) as u32;
        char::from_u32(c).unwrap_or('a')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_all_bools() {
        let mut rng = TestRng::from_seed(11);
        let s = any::<bool>();
        let mut saw = [false; 2];
        for _ in 0..64 {
            saw[usize::from(s.generate(&mut rng))] = true;
        }
        assert_eq!(saw, [true, true]);
    }
}
