//! `prop::sample` subset: the [`Index`] helper for picking positions in
//! runtime-sized collections.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// An abstract index: generated independently of any collection, then
/// projected onto one with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Map this abstract index onto a collection of length `len`
    /// (`len > 0`).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index requires a non-empty collection");
        (self.raw % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        Index {
            raw: rng.next_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;
    use crate::strategy::Strategy;

    #[test]
    fn index_projects_in_bounds() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..100 {
            let ix = any::<Index>().generate(&mut rng);
            assert!(ix.index(7) < 7);
            assert!(ix.index(1) == 0);
        }
    }
}
