//! Test-runner plumbing: configuration, the deterministic RNG, and the
//! error type `prop_assert*` macros return.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` (not a failure).
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discarded case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// True when this error only discards the case.
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// `From<String>` lets test bodies use `?` on `Result<_, String>`.
impl From<String> for TestCaseError {
    fn from(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// The deterministic generator backing all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test's fully qualified name, so every
    /// run of the suite explores the same cases.
    pub fn for_test(name: &str) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Seed from an explicit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits (SplitMix64; Steele, Lea & Flood 2014).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `usize` below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("x::z");
        let _ = c.next_u64();
    }

    #[test]
    fn default_config_has_cases() {
        assert!(ProptestConfig::default().cases > 0);
        assert_eq!(ProptestConfig::with_cases(48).cases, 48);
    }
}
