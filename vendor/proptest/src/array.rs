//! `prop::array` subset: fixed-size array strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `[T; 32]` from 32 independent draws of `element`.
pub fn uniform32<S: Strategy>(element: S) -> UniformArray<S, 32> {
    UniformArray { element }
}

/// Strategy returned by [`uniform32`].
#[derive(Debug, Clone)]
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn uniform32_fills_every_slot() {
        let mut rng = TestRng::from_seed(31);
        let arr = uniform32(any::<u8>()).generate(&mut rng);
        assert_eq!(arr.len(), 32);
        assert!(arr.iter().any(|&b| b != arr[0]));
    }
}
