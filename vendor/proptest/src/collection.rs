//! `prop::collection` subset: [`vec`] and [`btree_set`] strategies with a
//! [`SizeRange`] that accepts `usize`, `Range`, and `RangeInclusive`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// How many elements a generated collection may hold (inclusive bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.min == self.max {
            self.min
        } else {
            self.min + rng.below(self.max - self.min + 1)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange { min: len, max: len }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// Strategy producing `Vec`s of values from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy producing `BTreeSet`s of values from `element`. Duplicate
/// generations may yield sets smaller than the sampled size.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // A few extra draws compensate for collisions without risking an
        // unbounded loop on narrow element domains.
        let mut attempts = target.saturating_mul(4).max(8);
        while set.len() < target && attempts > 0 {
            set.insert(self.element.generate(rng));
            attempts -= 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_respects_size_forms() {
        let mut rng = TestRng::from_seed(21);
        assert_eq!(vec(any::<bool>(), 3).generate(&mut rng).len(), 3);
        for _ in 0..50 {
            let v = vec(0u8..5, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            let w = vec(0u8..5, 0..=2).generate(&mut rng);
            assert!(w.len() <= 2);
        }
    }

    #[test]
    fn btree_set_stays_bounded() {
        let mut rng = TestRng::from_seed(22);
        for _ in 0..50 {
            let s = btree_set(0u8..3, 0..6).generate(&mut rng);
            assert!(s.len() <= 5);
        }
    }
}
