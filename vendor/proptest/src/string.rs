//! Regex-subset string strategies: `&'static str` patterns act as
//! strategies generating matching `String`s, mirroring proptest's
//! `StrategyFromRegex`.
//!
//! Supported syntax (the subset this workspace's tests use):
//! character classes `[a-z_.-]`, the `\PC` escape (any non-control
//! character), literal characters, and `{m}` / `{m,n}` repetition
//! applied to the preceding atom.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// One parsed pattern element plus its repetition bounds.
#[derive(Debug, Clone)]
struct Atom {
    kind: AtomKind,
    min: usize,
    max: usize,
}

#[derive(Debug, Clone)]
enum AtomKind {
    /// A literal character.
    Literal(char),
    /// Inclusive character ranges from a `[...]` class.
    Class(Vec<(char, char)>),
    /// `\PC`: any non-control character (printable ASCII plus a sprinkle
    /// of multi-byte codepoints to exercise UTF-8 handling).
    NotControl,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let kind = match c {
            '[' => {
                let mut ranges = Vec::new();
                let mut pending: Option<char> = None;
                loop {
                    let item = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                    match item {
                        ']' => {
                            if let Some(p) = pending.take() {
                                ranges.push((p, p));
                            }
                            break;
                        }
                        '-' if pending.is_some() && chars.peek() != Some(&']') => {
                            let start = pending.take().expect("pending start");
                            let end = chars.next().expect("range end");
                            assert!(start <= end, "inverted range in pattern {pattern:?}");
                            ranges.push((start, end));
                        }
                        other => {
                            if let Some(p) = pending.take() {
                                ranges.push((p, p));
                            }
                            pending = Some(other);
                        }
                    }
                }
                assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                AtomKind::Class(ranges)
            }
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                match esc {
                    'P' => {
                        // Only `\PC` (non-control) is supported.
                        let class = chars.next();
                        assert_eq!(
                            class,
                            Some('C'),
                            "unsupported \\P class in pattern {pattern:?}"
                        );
                        AtomKind::NotControl
                    }
                    other => AtomKind::Literal(other),
                }
            }
            other => AtomKind::Literal(other),
        };

        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut digits = String::new();
            let mut min = None;
            for d in chars.by_ref() {
                match d {
                    '}' => break,
                    ',' => {
                        min = Some(digits.parse::<usize>().expect("repeat lower bound"));
                        digits.clear();
                    }
                    _ => digits.push(d),
                }
            }
            let last = digits.parse::<usize>().expect("repeat bound");
            match min {
                Some(m) => (m, last),
                None => (last, last),
            }
        } else {
            (1, 1)
        };

        atoms.push(Atom { kind, min, max });
    }
    atoms
}

fn sample_char(kind: &AtomKind, rng: &mut TestRng) -> char {
    match kind {
        AtomKind::Literal(c) => *c,
        AtomKind::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| u64::from(*hi) - u64::from(*lo) + 1)
                .sum();
            let mut pick = rng.next_u64() % total;
            for (lo, hi) in ranges {
                let span = u64::from(*hi) - u64::from(*lo) + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32).expect("valid class char");
                }
                pick -= span;
            }
            unreachable!("class pick out of range")
        }
        AtomKind::NotControl => {
            // ~1 in 8 draws picks a multi-byte codepoint.
            if rng.next_u64() % 8 == 0 {
                const WIDE: &[char] = &['é', 'λ', 'Ж', '中', '✓', '🌐'];
                WIDE[rng.below(WIDE.len())]
            } else {
                char::from_u32(0x20 + (rng.next_u64() % 0x5f) as u32).expect("printable ascii")
            }
        }
    }
}

/// A compiled pattern strategy; also usable directly via
/// `"[a-z]{1,3}".prop_map(...)` since `&'static str: Strategy`.
#[derive(Debug, Clone)]
pub struct RegexStrategy {
    atoms: Vec<Atom>,
}

impl RegexStrategy {
    /// Compile `pattern` (panics on unsupported syntax).
    pub fn new(pattern: &str) -> Self {
        RegexStrategy {
            atoms: parse_pattern(pattern),
        }
    }
}

impl Strategy for RegexStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let count = if atom.min == atom.max {
                atom.min
            } else {
                atom.min + rng.below(atom.max - atom.min + 1)
            };
            for _ in 0..count {
                out.push(sample_char(&atom.kind, rng));
            }
        }
        out
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        // Compiling per call keeps `&str` a zero-state strategy; patterns
        // in this workspace are tiny, so the cost is negligible.
        RegexStrategy::new(self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_pattern_matches_shape() {
        let mut rng = TestRng::from_seed(41);
        let strat = "[a-zA-Z][a-zA-Z0-9_.-]{0,8}";
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            let mut chars = s.chars();
            let first = chars.next().expect("non-empty");
            assert!(first.is_ascii_alphabetic());
            assert!(s.chars().count() <= 9);
            for c in chars {
                assert!(
                    c.is_ascii_alphanumeric() || "_.-".contains(c),
                    "bad char {c:?}"
                );
            }
        }
    }

    #[test]
    fn printable_pattern_has_no_controls() {
        let mut rng = TestRng::from_seed(42);
        let strat = "\\PC{0,200}";
        for _ in 0..50 {
            let s = strat.generate(&mut rng);
            assert!(s.chars().count() <= 200);
            assert!(!s.chars().any(|c| c.is_control()));
        }
    }

    #[test]
    fn exact_and_ranged_repeats() {
        let mut rng = TestRng::from_seed(43);
        for _ in 0..100 {
            let s = "[a-e]{1,3}".generate(&mut rng);
            assert!((1..=3).contains(&s.len()));
            assert!(s.bytes().all(|b| (b'a'..=b'e').contains(&b)));
            let t = "[ -~]{1,20}".generate(&mut rng);
            assert!((1..=20).contains(&t.len()));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut rng = TestRng::from_seed(44);
        for _ in 0..300 {
            let s = "[a-]".generate(&mut rng);
            assert!(s == "a" || s == "-");
        }
    }
}
