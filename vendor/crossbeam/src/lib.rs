//! A minimal, API-compatible subset of `crossbeam`, implemented over the
//! standard library, for offline builds of this workspace.
//!
//! Provides [`thread::scope`] (crossbeam-utils style scoped threads, built
//! on `std::thread::scope`) and a small [`channel`] module backed by
//! `std::sync::mpsc`.

#![forbid(unsafe_code)]
// Vendored snapshot: exempt from the workspace clippy policy so new
// toolchain lints don't break the build.
#![allow(clippy::all)]

/// Scoped threads in the crossbeam-utils style.
pub mod thread {
    /// A scope handle: spawn threads that may borrow from the enclosing
    /// stack frame. All spawned threads are joined when the scope ends.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope.
        ///
        /// crossbeam's closure takes a `&Scope` argument; this subset keeps
        /// that shape so call sites match the real crate.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope for spawning borrowing threads. Returns `Ok` with the
    /// closure's result once every spawned thread has been joined; a panic
    /// in a spawned thread propagates (matching `std::thread::scope`).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Multi-producer channels backed by `std::sync::mpsc`.
pub mod channel {
    /// The sending half of a channel (cloneable).
    pub use std::sync::mpsc::Sender;

    /// The receiving half of a channel.
    pub use std::sync::mpsc::Receiver;

    /// Errors surfaced on receive.
    pub use std::sync::mpsc::{RecvError, TryRecvError};

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    /// A bounded FIFO channel (maps to `sync_channel`).
    pub fn bounded<T>(cap: usize) -> (std::sync::mpsc::SyncSender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn channels_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }
}
