//! A minimal, API-compatible subset of `rand` for offline builds of this
//! workspace: the [`Rng`] trait surface the crates use (`gen_range`,
//! `fill_bytes`, `next_u64`), a deterministic SplitMix64 [`rngs::StdRng`],
//! and [`thread_rng`].

#![forbid(unsafe_code)]
// Vendored snapshot: exempt from the workspace clippy policy so new
// toolchain lints don't break the build.
#![allow(clippy::all)]

use std::ops::Range;

/// The random-number-generator trait subset used by this workspace.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `u64` in `range` (half-open).
    fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = range.end - range.start;
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // test-scale spans used here (span << 2^64).
        range.start + (self.next_u64() % span)
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub mod rngs {
    /// A deterministic SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// Seed from a `u64`.
        pub fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A generator seeded from the system time and thread id. Deterministic
/// enough for tests; NOT cryptographically secure.
pub fn thread_rng() -> rngs::StdRng {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut hasher);
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0)
        .hash(&mut hasher);
    rngs::StdRng::seed_from_u64(hasher.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
