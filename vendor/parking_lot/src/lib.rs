//! A minimal, API-compatible subset of `parking_lot`, implemented over
//! `std::sync`, for offline builds of this workspace.
//!
//! Only the surface the trust-vo crates use is provided: [`Mutex`] and
//! [`RwLock`] with *non-poisoning* semantics (a panicked
//! holder does not poison the lock; the next locker simply proceeds, which
//! matches parking_lot's behaviour).

#![forbid(unsafe_code)]
// Vendored snapshot: exempt from the workspace clippy policy so new
// toolchain lints don't break the build.
#![allow(clippy::all)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A non-poisoning mutual-exclusion lock .
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(poisoned) => MutexGuard {
                inner: poisoned.into_inner(),
            },
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A non-poisoning reader-writer lock .
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(poisoned) => RwLockReadGuard {
                inner: poisoned.into_inner(),
            },
        }
    }

    /// Acquire an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(poisoned) => RwLockWriteGuard {
                inner: poisoned.into_inner(),
            },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn mutex_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
