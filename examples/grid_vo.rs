//! A grid-computing VO built from scratch against the public API — no
//! prebuilt scenario. The paper singles grids out: "This is the case, for
//! example, of VO formed in grid computing, which involve very complex
//! collaborations among the members" (§5.1).
//!
//! A university consortium forms a compute grid: a coordinator (initiator),
//! two compute sites, and a data archive. Policies interlock two levels
//! deep (site SLA ⇄ consortium accreditation), one site presents a
//! credential from an untrusted regional CA that must be chain-resolved,
//! and the formation runs under the suspicious strategy (grid parties
//! don't reveal what they lack).
//!
//! Run with: `cargo run --example grid_vo`

use trust_vo::credential::chain::ChainDirectory;
use trust_vo::credential::{
    Attribute, Credential, CredentialAuthority, CredentialId, Header, TimeRange, Timestamp,
};
use trust_vo::crypto::KeyPair;
use trust_vo::negotiation::{Party, Strategy};
use trust_vo::policy::{Condition, DisclosurePolicy, PolicySet, Resource, Term};
use trust_vo::soa::simclock::SimClock;
use trust_vo::vo::{Contract, ResourceDescription, Role, ServiceProvider, VoToolkit};

fn main() {
    let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2026, 1, 1, 0, 0, 0));
    let clock = SimClock::new(
        trust_vo::soa::simclock::CostModel::paper_testbed(),
        Timestamp::from_ymd_hms(2026, 3, 1, 0, 0, 0),
    );

    // Authorities: the grid consortium CA (trusted by everyone) and a
    // regional CA that is NOT directly trusted.
    let consortium_ca = CredentialAuthority::new("EuGrid Consortium CA");
    let mut regional_ca = CredentialAuthority::new("Nordic Regional CA");
    let consortium_keys = KeyPair::from_seed(b"authority:EuGrid Consortium CA");

    let mut toolkit = VoToolkit::new(clock);

    // --- Coordinator (initiator) -----------------------------------
    let mut coordinator = Party::new("Grid Coordination Office");
    coordinator.trust_root(consortium_ca.public_key());
    {
        // The coordinator holds a consortium accreditation the sites will
        // counter-request before revealing their SLAs.
        let mut ca = CredentialAuthority::new("EuGrid Consortium CA");
        let accr = ca
            .issue(
                "ConsortiumAccreditation",
                &coordinator.name,
                coordinator.keys.public,
                vec![Attribute::new("Tier", 1i64)],
                window,
            )
            .unwrap();
        coordinator.profile.add(accr);
        coordinator.policies.add(DisclosurePolicy::deliv(
            "coord-d1",
            Resource::credential("ConsortiumAccreditation"),
        ));
    }
    toolkit.host_register(ServiceProvider::new(coordinator), vec![]);

    // --- Compute sites ----------------------------------------------
    // Site A: certified by the consortium directly.
    // Site B: certified by the regional CA — needs a chain to verify.
    for (name, availability, issuer_is_regional, quality) in [
        ("Compute Site Alpha", 99i64, false, 0.97),
        ("Compute Site Beta", 97i64, true, 0.90),
    ] {
        let mut site = Party::new(name);
        site.trust_root(consortium_ca.public_key());
        let sla = if issuer_is_regional {
            regional_ca
                .issue(
                    "GridSla",
                    name,
                    site.keys.public,
                    vec![Attribute::new("Availability", availability)],
                    window,
                )
                .unwrap()
        } else {
            let mut ca = CredentialAuthority::new("EuGrid Consortium CA");
            ca.issue(
                "GridSla",
                name,
                site.keys.public,
                vec![Attribute::new("Availability", availability)],
                window,
            )
            .unwrap()
        };
        site.profile.add(sla);
        // Grid sites are suspicious: the SLA is released only against the
        // coordinator's consortium accreditation.
        site.policies.add(DisclosurePolicy::rule(
            format!("{name}-sla-gate"),
            Resource::credential("GridSla"),
            vec![Term::of_type("ConsortiumAccreditation")],
        ));
        toolkit.host_register(
            ServiceProvider::new(site),
            vec![ResourceDescription::new(
                name,
                "grid-compute",
                "gsiftp://site",
                quality,
            )],
        );
    }

    // --- Data archive -------------------------------------------------
    let mut archive = Party::new("Petabyte Archive");
    archive.trust_root(consortium_ca.public_key());
    {
        let mut ca = CredentialAuthority::new("EuGrid Consortium CA");
        let cert = ca
            .issue(
                "ArchiveCertification",
                "Petabyte Archive",
                archive.keys.public,
                vec![Attribute::new("CapacityPb", 12i64)],
                window,
            )
            .unwrap();
        archive.profile.add(cert);
        archive.policies.add(DisclosurePolicy::deliv(
            "arch-d1",
            Resource::credential("ArchiveCertification"),
        ));
    }
    toolkit.host_register(
        ServiceProvider::new(archive),
        vec![ResourceDescription::new(
            "Petabyte Archive",
            "grid-storage",
            "srm://archive",
            0.95,
        )],
    );

    // The coordinator can verify Site Beta's regional credential through a
    // cross-certificate: consortium root -> regional CA.
    let cross = Credential::issue_signed(
        Header {
            cred_id: CredentialId("cross-nordic".into()),
            cred_type: "CACert".into(),
            issuer: "EuGrid Consortium CA".into(),
            issuer_key: consortium_ca.public_key(),
            subject: "Nordic Regional CA".into(),
            subject_key: regional_ca.public_key(),
            validity: window,
        },
        vec![],
        &consortium_keys,
    );
    let mut chains = ChainDirectory::new();
    chains.add(cross);
    toolkit
        .providers
        .get_mut("Grid Coordination Office")
        .unwrap()
        .party
        .chains = chains;

    // --- Identification: contract + per-role disclosure policies -------
    let mut contract = Contract::new("EuGridRun-2026", "continental compute campaign")
        .with_role(Role::new(
            "ComputeSite",
            "grid-compute",
            "availability >= 95%",
        ))
        .with_role(Role::new(
            "Archive",
            "grid-storage",
            "petabyte-scale storage",
        ));
    let mut compute_policies = PolicySet::new();
    compute_policies.add(DisclosurePolicy::rule(
        "vo-compute",
        Resource::service("VoMembership"),
        vec![Term::of_type("GridSla")
            .with_condition(Condition::parse("//content/Availability >= 95").unwrap())],
    ));
    contract.set_role_policies("ComputeSite", compute_policies);
    let mut archive_policies = PolicySet::new();
    archive_policies.add(DisclosurePolicy::rule(
        "vo-archive",
        Resource::service("VoMembership"),
        vec![Term::of_type("ArchiveCertification")],
    ));
    contract.set_role_policies("Archive", archive_policies);

    // --- Formation under the suspicious strategy -----------------------
    let vo = toolkit
        .initiator_form_vo(contract, "Grid Coordination Office", Strategy::Suspicious)
        .expect("the grid VO forms");
    println!("VO '{}' formed under the suspicious strategy:", vo.name);
    for m in vo.members() {
        println!("  {:<22} as {}", m.provider, m.role);
    }
    println!(
        "\nSite Alpha (quality 0.97, consortium-certified) won the compute role: {}",
        vo.member_for_role("ComputeSite").unwrap().provider
    );
    println!(
        "simulated formation time: {:.2} s",
        toolkit.clock.elapsed().as_secs_f64()
    );

    // Demonstrate the chain path explicitly: negotiate with Site Beta
    // directly — its regional SLA verifies only through the cross-cert.
    let mut coordinator = toolkit
        .providers
        .get("Grid Coordination Office")
        .unwrap()
        .party
        .clone();
    coordinator.policies.add(DisclosurePolicy::rule(
        "direct",
        Resource::service("DirectCheck"),
        vec![Term::of_type("GridSla")],
    ));
    let beta = toolkit
        .providers
        .get("Compute Site Beta")
        .unwrap()
        .party
        .clone();
    let cfg = trust_vo::negotiation::NegotiationConfig::new(
        Strategy::Suspicious,
        toolkit.clock.timestamp(),
    );
    let outcome = trust_vo::negotiation::negotiate(&beta, &coordinator, "DirectCheck", &cfg)
        .expect("chain resolution accepts the regional credential");
    println!(
        "\nchain-resolved negotiation with Site Beta: {} ({} ownership proofs)",
        outcome.sequence, outcome.transcript.ownership_proofs
    );
}
