//! Repeat negotiations in long-lived VOs: view enumeration and selection,
//! trust-sequence caching, and trust tickets.
//!
//! The paper's operation phase re-negotiates constantly (§5.1:
//! re-validation of certificates, authorizations, member replacement).
//! This example shows the three cost tiers the library offers for that.
//!
//! Run with: `cargo run --example repeat_negotiations`

use trust_vo::credential::{TimeRange, Timestamp};
use trust_vo::negotiation::message::Side;
use trust_vo::negotiation::ticket::negotiate_with_ticket;
use trust_vo::negotiation::{
    choose_minimal, enumerate_sequences, NegotiationConfig, SequenceCache, Strategy,
};
use trust_vo::vo::scenario::{names, roles, AircraftScenario};

fn main() {
    let scenario = AircraftScenario::build();
    let mut initiator = scenario.provider(names::AIRCRAFT).party.clone();
    if let Some(set) = scenario.contract.policies_for(roles::DESIGN_PORTAL) {
        for policy in set.iter() {
            initiator.policies.add(policy.clone());
        }
    }
    let aerospace = scenario.provider(names::AEROSPACE).party.clone();
    let cfg = NegotiationConfig::new(Strategy::Standard, trust_vo::vo::scenario::scenario_time());

    // --- 1. Enumerate every satisfiable view and pick one deliberately.
    let sequences = enumerate_sequences(&aerospace, &initiator, "VoMembership", &cfg, 50);
    println!(
        "{} satisfiable trust sequences for VoMembership:",
        sequences.len()
    );
    for s in &sequences {
        println!(
            "  {s}   ({} disclosures, {} by the requester)",
            s.len(),
            s.by_side(Side::Requester).count()
        );
    }
    let best = choose_minimal(&sequences, Side::Requester).expect("satisfiable");
    println!("requester-minimal choice: {best}\n");

    // --- 2. Sequence cache: phase 1 runs once, later negotiations reuse
    //        the agreed sequence but re-verify every credential.
    let mut cache = SequenceCache::new();
    for _ in 0..3 {
        cache
            .negotiate(&aerospace, &initiator, "VoMembership", &cfg)
            .expect("succeeds");
    }
    let stats = cache.stats();
    println!(
        "sequence cache after 3 runs: {} miss, {} hits (exchange-phase checks kept)\n",
        stats.misses, stats.hits
    );

    // --- 3. Trust tickets: a successful negotiation mints a ticket; the
    //        next request is two signature operations.
    let window = TimeRange::one_year_from(Timestamp::parse_iso("2009-12-01T00:00:00").unwrap());
    let (ticket, fast) =
        negotiate_with_ticket(&aerospace, &initiator, "VoMembership", &cfg, None, window)
            .expect("full protocol succeeds");
    assert!(!fast);
    println!(
        "ticket issued by '{}' to '{}' for '{}', valid to {}",
        ticket.issuer, ticket.holder, ticket.resource, ticket.validity.not_after
    );
    let (_, fast) = negotiate_with_ticket(
        &aerospace,
        &initiator,
        "VoMembership",
        &cfg,
        Some(&ticket),
        window,
    )
    .expect("redemption succeeds");
    println!("second negotiation used the ticket fast path: {fast}");
}
