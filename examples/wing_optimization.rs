//! The Fig. 1 Aircraft Optimization workflow, end to end: membership
//! verification, authorization TNs on every cross-member access, monitored
//! interactions, and the iterative wing optimization loop "executed
//! repeatedly until the target result is achieved".
//!
//! Run with: `cargo run --example wing_optimization`

use trust_vo::credential::RevocationList;
use trust_vo::negotiation::Strategy;
use trust_vo::vo::operation::OperationLog;
use trust_vo::vo::scenario::AircraftScenario;
use trust_vo::vo::workflow::{run_optimization, OptimizationTarget};

fn main() {
    let mut scenario = AircraftScenario::build();
    let vo = scenario
        .form_vo(Strategy::Standard)
        .expect("formation succeeds");
    println!(
        "VO '{}' operational with {} members\n",
        vo.name,
        vo.members().len()
    );

    let providers = scenario.toolkit.providers.clone();
    let mut log = OperationLog::new();
    let crl = RevocationList::new();
    let run = run_optimization(
        &vo,
        &providers,
        &mut scenario.toolkit.reputation,
        &mut log,
        &crl,
        &scenario.toolkit.clock,
        Strategy::Standard,
        OptimizationTarget::default(),
    )
    .expect("workflow completes");

    println!("authorization TNs obtained:");
    for a in &run.authorizations {
        println!("  {a}");
    }

    println!("\noptimization history (target drag <= 0.022):");
    println!("  {:>4}  {:>8}  {:>8}", "iter", "lift", "drag");
    for f in &run.history {
        println!("  {:>4}  {:>8.4}  {:>8.4}", f.iteration, f.lift, f.drag);
    }
    println!(
        "\nconverged: {} after {} iterations; {} interactions monitored; sim time {:.2} s",
        run.converged,
        run.history.len() - 1,
        log.records().len(),
        scenario.toolkit.clock.elapsed().as_secs_f64(),
    );
}
