//! Observability walk-through: run the paper's Fig. 9(a) join — the
//! Design Partner Web Portal joining the Aircraft Optimization VO with a
//! trust negotiation — on an instrumented clock, then print the summary
//! table and a few raw JSONL records.
//!
//! Run with `cargo run --example observed_formation`.

use trust_vo::negotiation::Strategy;
use trust_vo::obs::{render_summary, Collector};
use trust_vo_bench::workloads;

fn main() {
    // Attach the collector before building the scenario so registration
    // traffic (DB writes, sim-clock charges) is captured too.
    let collector = Collector::new();
    let clock = workloads::paper_clock();
    clock.attach_obs(&collector);
    let mut scenario = workloads::scenario(clock);

    let member = workloads::join_with_tn(&mut scenario, Strategy::Standard)
        .expect("the Fig. 9(a) join succeeds");
    println!(
        "admitted '{}' as '{}' (certificate serial {})\n",
        member.provider, member.role, member.certificate.serial
    );

    println!("{}", render_summary(&collector.records()));

    println!("counters");
    for (name, value) in &collector.metrics().counters {
        println!("  {name:38} {value:>6}");
    }
    println!();

    println!("sample JSONL records (full dump via `--emit-obs` on the bench binaries):");
    for line in collector.to_jsonl().lines().take(8) {
        println!("  {line}");
    }
}
