//! Reproduce the paper's Fig. 2: the negotiation tree for the VO
//! membership negotiation between the Aerospace Company (requester) and
//! the Aircraft Company (controller).
//!
//! Run with: `cargo run --example negotiation_tree`

use trust_vo::negotiation::Strategy;
use trust_vo::vo::scenario::AircraftScenario;

fn main() {
    let scenario = AircraftScenario::build();

    for strategy in Strategy::ALL {
        let outcome = scenario
            .fig2_negotiation(strategy)
            .expect("the Fig. 2 negotiation is satisfiable");
        println!("=== strategy: {strategy} ===");
        println!("negotiation tree (chosen edges marked *):");
        print!("{}", outcome.tree.render());
        println!("trust sequence: {}", outcome.sequence);
        println!("transcript:     {}\n", outcome.transcript.summary());
    }

    // The suspicious strategies demand ownership proofs; the trusting one
    // batches all policy alternatives into single messages. Compare the
    // transcripts above to see exactly where the strategies differ.
}
