//! The ontology reasoning engine of §4.3: concept-level policies,
//! Algorithm 1 mapping, is_a inference, similarity fallback, and policy
//! abstraction.
//!
//! Run with: `cargo run --example ontology_mapping`

use trust_vo::credential::{
    Attribute, CredentialAuthority, Sensitivity, TimeRange, Timestamp, XProfile,
};
use trust_vo::ontology::mapping::map_concept;
use trust_vo::ontology::{match_concept, Concept, MappingOutcome, Ontology};
use trust_vo::policy::abstraction::{abstract_policy, lift_term};
use trust_vo::policy::{DisclosurePolicy, Resource, Term};

fn main() {
    // A local ontology in the §4.3 style, including the paper's gender
    // and driver-license examples.
    let mut ontology = Ontology::new();
    ontology.add(
        Concept::new("gender")
            .implemented_by("Passport.gender")
            .implemented_by("DrivingLicense.sex"),
    );
    ontology.add(Concept::new("Civilian_DriverLicense").implemented_by("CivilianLicense"));
    ontology.add(Concept::new("Texas_DriverLicense").implemented_by("TexasLicense"));
    ontology.add(
        Concept::new("QualityCertification")
            .keyword("ISO 9000")
            .implemented_by("ISO9000Certified.QualityRegulation"),
    );
    ontology.add(Concept::new("BusinessProof"));
    ontology.add(Concept::new("BalanceSheet").implemented_by("CertificationAuthorityCompany"));
    assert!(ontology.add_is_a("Texas_DriverLicense", "Civilian_DriverLicense"));
    assert!(ontology.add_is_a("BalanceSheet", "BusinessProof"));

    println!("is_a inference:");
    println!(
        "  Texas_DriverLicense is_a Civilian_DriverLicense: {}",
        ontology.is_subconcept("Texas_DriverLicense", "Civilian_DriverLicense")
    );
    println!(
        "  credential types conveying Civilian_DriverLicense: {:?}\n",
        ontology.credential_types_for("Civilian_DriverLicense")
    );

    // A profile holding a Texas license and a balance sheet.
    let mut ca = CredentialAuthority::new("DMV");
    let keys = trust_vo::crypto::KeyPair::from_seed(b"holder");
    let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
    let mut profile = XProfile::new("holder");
    profile.add_with_sensitivity(
        ca.issue(
            "TexasLicense",
            "holder",
            keys.public,
            vec![Attribute::new("sex", "F")],
            window,
        )
        .unwrap(),
        Sensitivity::Medium,
    );
    profile.add_with_sensitivity(
        ca.issue(
            "CertificationAuthorityCompany",
            "holder",
            keys.public,
            vec![Attribute::new("Issuer", "BBB")],
            window,
        )
        .unwrap(),
        Sensitivity::High,
    );

    // Algorithm 1: a counterpart policy asks for concepts; the engine maps
    // them onto held credentials, least-sensitive cluster first.
    println!("Algorithm 1 mapping:");
    for concept in [
        "Civilian_DriverLicense",
        "BusinessProof",
        "QualityCertification",
        "Drivers_License_TX",
    ] {
        match map_concept(&ontology, &profile, concept, 0.2) {
            MappingOutcome::Mapped {
                credential,
                via,
                sensitivity,
                ..
            } => println!(
                "  {concept:<24} -> {credential} (sensitivity {sensitivity}{})",
                via.map(|m| format!(", via similarity {:.2} to {}", m.confidence, m.target))
                    .unwrap_or_default()
            ),
            MappingOutcome::NoCredential { resolved, .. } => {
                println!("  {concept:<24} -> concept '{resolved}' known, no credential held")
            }
            MappingOutcome::UnknownConcept {
                best_confidence, ..
            } => {
                println!("  {concept:<24} -> unknown (best similarity {best_confidence:.2})")
            }
        }
    }

    // Similarity matching on its own (the ComputeSimilarity fallback).
    let m =
        match_concept("Quality_ISO_Certification", &ontology, 0.2).expect("similar concept found");
    println!(
        "\nsimilarity match: 'Quality_ISO_Certification' -> '{}' ({:.2})",
        m.target, m.confidence
    );

    // Policy abstraction (§4.3.1): hide the exact credential type behind
    // its concept, then behind the ancestor concept.
    let policy = DisclosurePolicy::rule(
        "p",
        Resource::service("VoMembership"),
        vec![Term::of_type("CertificationAuthorityCompany")],
    );
    println!("\npolicy abstraction:");
    println!("  concrete:  {policy}");
    println!("  level 0:   {}", abstract_policy(&policy, &ontology, 0));
    println!("  level 1:   {}", abstract_policy(&policy, &ontology, 1));
    let lifted = lift_term(&Term::of_type("TexasLicense"), &ontology, 1);
    println!("  TexasLicense lifted once -> {lifted}");
}
