//! Drive a negotiation through the TN *web service* (§6.2): the three
//! operations StartNegotiation / PolicyExchange / CredentialExchange,
//! dispatched over the in-process service bus with simulated SOAP/DB
//! latencies — the Rust analogue of `ClientWS.java`.
//!
//! Run with: `cargo run --example tn_web_service`

use std::sync::Arc;
use trust_vo::negotiation::Strategy;
use trust_vo::soa::client::run_negotiation;
use trust_vo::soa::{ServiceBus, TnService};
use trust_vo::store::Database;
use trust_vo::vo::scenario::{names, roles, AircraftScenario};

fn main() {
    let scenario = AircraftScenario::build();
    let clock = scenario.toolkit.clock.clone();
    clock.reset();

    // Stand up the service: register the two §5 negotiation parties. The
    // initiator's identity carries the Design-Portal role policies.
    let service = TnService::new(clock.clone(), Database::new());
    let mut initiator = scenario.provider(names::AIRCRAFT).party.clone();
    if let Some(set) = scenario.contract.policies_for(roles::DESIGN_PORTAL) {
        for policy in set.iter() {
            initiator.policies.add(policy.clone());
        }
    }
    service.register_party(initiator);
    service.register_party(scenario.provider(names::AEROSPACE).party.clone());
    println!(
        "TN service registered; DB now holds {:?}",
        service.database().stats()
    );

    let bus = ServiceBus::new(clock.clone());
    bus.register("tn-service", Arc::new(service));

    // The client drives the whole protocol over the bus.
    let run = run_negotiation(
        &bus,
        "tn-service",
        names::AEROSPACE,
        names::AIRCRAFT,
        "VoMembership",
        Strategy::Standard,
    )
    .expect("the Fig. 2 negotiation succeeds over the service");

    println!("negotiation #{} completed", run.negotiation_id);
    println!("  trust sequence length:     {}", run.sequence_len);
    println!("  CredentialExchange calls:  {}", run.credential_calls);
    println!(
        "  simulated service time:    {:.2} s",
        run.sim_elapsed.as_secs_f64()
    );
    println!("\nper-operation charges:");
    for (kind, count) in clock.counts() {
        println!("  {:<18} x{}", kind.label(), count);
    }
}
