//! The full VO lifecycle of the paper's §2/§5 — Preparation,
//! Identification, Formation, Operation (with monitoring, an authorization
//! TN, a reputation drop, and a member replacement), and Dissolution.
//!
//! Run with: `cargo run --example aircraft_vo`

use trust_vo::credential::RevocationList;
use trust_vo::negotiation::Strategy;
use trust_vo::vo::mailbox::MailboxSystem;
use trust_vo::vo::operation::{
    authorize_operation, replace_member, verify_membership, OperationLog, REPLACEMENT_THRESHOLD,
};
use trust_vo::vo::scenario::{names, roles, AircraftScenario};

fn main() {
    // --- Preparation + Identification (done by the scenario builder):
    // providers published their capabilities, the initiator authored the
    // contract and the per-role disclosure policies.
    let mut scenario = AircraftScenario::build();
    println!(
        "[preparation]    {} resource descriptions published",
        scenario.toolkit.registry.len()
    );
    println!(
        "[identification] contract '{}' with {} roles",
        scenario.contract.vo_name,
        scenario.contract.roles.len()
    );

    // --- Formation: invitations + mutual trust negotiations.
    let mut vo = scenario
        .form_vo(Strategy::Standard)
        .expect("formation succeeds");
    println!(
        "[formation]      {} members assigned, lifecycle = {}",
        vo.members().len(),
        vo.lifecycle.phase()
    );

    // --- Operation: the Fig. 1 optimization loop, monitored.
    let initiator = scenario.provider(names::AIRCRAFT).clone();
    let providers = scenario.toolkit.providers.clone();
    let clock = scenario.toolkit.clock.clone();
    let mut log = OperationLog::new();
    let mut crl = RevocationList::new();

    // Every member's certificate is checked before operations start.
    for member in vo.members() {
        verify_membership(&vo, member, clock.timestamp(), &crl).expect("fresh certificates verify");
    }
    println!("[operation]      all membership certificates verified");

    // The consultancy needs the HPC flow solution: an operation-phase TN
    // grants an *authorization*, not a credential (§5.1) — underneath, the
    // privacy-regulator credentials are exchanged.
    let auth = authorize_operation(
        &vo,
        &providers,
        names::CONSULTANCY,
        names::HPC,
        "FlowSolution",
        &mut scenario.toolkit.reputation,
        &clock,
        Strategy::Standard,
    )
    .expect("privacy credentials satisfy the policy");
    println!(
        "[operation]      authorization granted to '{}' for '{}'",
        auth.granted_to, auth.resource
    );

    // Steps 5-6 of Fig. 1 repeat; interactions are monitored. The HPC
    // provider starts violating its SLA.
    for i in 0..3 {
        log.record(
            &vo,
            &mut scenario.toolkit.reputation,
            names::HPC,
            names::STORAGE,
            &format!("store lift/drag values, iteration {i}"),
            i > 0, // iterations 1 and 2 violate the SLA rule
            clock.timestamp(),
        )
        .expect("members interact");
    }
    let hpc_rep = scenario.toolkit.reputation.get(names::HPC);
    println!(
        "[operation]      HPC reputation after {} violations: {:.2} (threshold {REPLACEMENT_THRESHOLD})",
        log.violations_by(names::HPC).count(),
        hpc_rep
    );

    // "One of the members detects that the reputation of the HPC service
    // has decreased due to contract's violation … The new member is
    // enrolled, using a TN." (§5.1)
    if scenario
        .toolkit
        .reputation
        .needs_replacement(names::HPC, REPLACEMENT_THRESHOLD)
    {
        let record = replace_member(
            &mut vo,
            &initiator,
            &providers,
            &scenario.toolkit.registry,
            roles::HPC,
            &mut crl,
            &mut MailboxSystem::new(),
            &mut scenario.toolkit.reputation,
            &clock,
            Strategy::Standard,
        )
        .expect("the backup HPC provider negotiates successfully");
        println!(
            "[operation]      HPC member replaced by '{}' (old certificate revoked)",
            record.provider
        );
    }

    // --- Dissolution: objectives fulfilled.
    let report = trust_vo::vo::dissolution::dissolve(&mut vo, &mut crl, &clock).expect("dissolves");
    println!(
        "[dissolution]    VO '{}' dissolved; {} certificates revoked; members released: {}",
        report.vo_name,
        report.certificates_revoked,
        report.members_released.join(", ")
    );
    println!(
        "\ntotal simulated lifecycle time: {:.2} s",
        clock.elapsed().as_secs_f64()
    );
}
