//! The §6.3 extension: selective attribute disclosure on X.509v2-style
//! certificates via salted hash commitments — "substitute the attributes
//! in clear with attributes whose content is the hash value of the
//! concatenation of attribute name and attribute value".
//!
//! Run with: `cargo run --example selective_disclosure`

use trust_vo::credential::selective::SelectiveIssuance;
use trust_vo::credential::{TimeRange, Timestamp};
use trust_vo::crypto::KeyPair;
use trust_vo::negotiation::strategy::{CredentialFormat, Strategy};

fn main() {
    let issuer = KeyPair::from_seed(b"INFN");
    let holder = KeyPair::from_seed(b"Aerospace Company");
    let window = TimeRange::one_year_from(Timestamp::parse_iso("2009-10-26T21:32:52").unwrap());
    let at = Timestamp::parse_iso("2009-12-01T00:00:00").unwrap();

    // Issue a certificate whose attributes are committed, not cleartext.
    let issuance = SelectiveIssuance::issue(
        42,
        "Aerospace Company",
        holder.public,
        "INFN",
        &issuer,
        window,
        &[
            ("QualityRegulation".into(), "UNI EN ISO 9000".into()),
            ("AuditScore".into(), "97".into()),
            ("InternalRiskRating".into(), "B+ (confidential)".into()),
        ],
    );
    println!(
        "issued selective certificate #{} with {} committed attributes",
        issuance.certificate.serial,
        issuance.certificate.commitments.len()
    );

    // During a suspicious-strategy negotiation, reveal only what the
    // policy asks for.
    let view = issuance
        .disclose(&["QualityRegulation"])
        .expect("the attribute was committed at issuance");
    view.verify(at, None)
        .expect("partial view verifies against the issuer signature");
    println!(
        "verifier sees QualityRegulation = {:?}; InternalRiskRating stays hidden: {:?}",
        view.attr("QualityRegulation"),
        view.attr("InternalRiskRating"),
    );

    // The hidden value never appears in the wire encoding.
    let wire = view.wire_bytes();
    let secret = b"B+ (confidential)";
    assert!(!wire.windows(secret.len()).any(|w| w == secret));
    println!(
        "wire form is {} bytes and does not contain the withheld value",
        wire.len()
    );

    // This is exactly what lifts the §6.3 strategy restriction:
    for strategy in Strategy::ALL {
        println!(
            "  {strategy:<17} on plain X.509v2: {:<5}  on selective X.509: {}",
            strategy.compatible_with(CredentialFormat::X509v2),
            strategy.compatible_with(CredentialFormat::SelectiveX509),
        );
    }

    // Tampering is detected.
    let mut forged = view.clone();
    forged.revealed[0].value = "ISO 14000".into();
    assert!(forged.verify(at, None).is_err());
    println!("forged opening rejected ✔");
}
