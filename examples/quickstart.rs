//! Quickstart: form the paper's Aircraft Optimization VO with trust
//! negotiation, then inspect what happened.
//!
//! Run with: `cargo run --example quickstart`

use trust_vo::negotiation::Strategy;
use trust_vo::vo::scenario::AircraftScenario;

fn main() {
    // 1. Build the running example of the paper's §3: one initiator (the
    //    Aircraft Company), five service providers, four credential
    //    authorities, disclosure policies, and a shared ontology.
    let mut scenario = AircraftScenario::build();
    println!(
        "scenario ready: {} providers, {} roles to fill\n",
        scenario.toolkit.providers.len(),
        scenario.contract.roles.len()
    );

    // 2. Run the Formation phase. For every role the initiator queries the
    //    registry, invites the best candidate, and performs a *mutual*
    //    trust negotiation before assigning the role.
    let vo = scenario
        .form_vo(Strategy::Standard)
        .expect("every role is coverable in the stock scenario");

    println!("VO '{}' formed (phase: {})", vo.name, vo.lifecycle.phase());
    for member in vo.members() {
        println!(
            "  {:<28} -> {:<26} (membership cert #{}, valid to {})",
            member.provider,
            member.role,
            member.certificate.serial,
            member.certificate.validity.not_after
        );
    }

    // 3. The membership token carries the VO public key (§5.1).
    let portal = vo.members().first().expect("at least one member");
    println!(
        "\nmembership token of '{}' binds vo='{}' via voPublicKey={}",
        portal.provider,
        portal.certificate.attr("vo").unwrap_or("?"),
        portal.certificate.attr("voPublicKey").unwrap_or("?"),
    );

    // 4. The simulated clock accumulated the whole formation cost.
    println!(
        "\nsimulated formation time: {:.2} s (calibrated to the paper's 2006 testbed)",
        scenario.toolkit.clock.elapsed().as_secs_f64()
    );
}
