//! # trust-vo
//!
//! A from-scratch Rust reproduction of *“Trust establishment in the
//! formation of Virtual Organizations”* (Squicciarini, Paci, Bertino):
//! the **Trust-X** trust-negotiation system integrated with a **VO
//! Management toolkit**, enriched with an ontology-based reasoning engine.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names and hosts the cross-crate integration tests and runnable
//! examples.
//!
//! ## Quickstart
//!
//! ```
//! use trust_vo::vo::scenario::AircraftScenario;
//! use trust_vo::negotiation::strategy::Strategy;
//!
//! // Build the paper's running example: the Aircraft Optimization VO.
//! let mut scenario = AircraftScenario::build();
//! // Run the formation phase: the initiator negotiates with every invitee.
//! let formed = scenario.form_vo(Strategy::Standard).expect("formation succeeds");
//! assert_eq!(formed.members().len(), 4);
//! ```
//!
//! See `examples/quickstart.rs` for a narrated walk-through and
//! `DESIGN.md` for the full system inventory.

#![forbid(unsafe_code)]

/// Reputation-gated admission: outcome scoring, trust bands, mana-style
/// per-party flow budgets, and the bus-boundary admission gate.
pub use trust_vo_admission as admission;
/// X-TNL credentials, X-Profiles, authorities, revocation, X.509v2 certs.
pub use trust_vo_credential as credential;
/// Cryptographic substrate: SHA-256, HMAC, base64, Schnorr signatures.
pub use trust_vo_crypto as crypto;
/// Append-only crash-safe fact journal: framed checksummed records,
/// snapshot compaction, deterministic replay.
pub use trust_vo_journal as journal;
/// The Trust-X negotiation engine and the eager baseline.
pub use trust_vo_negotiation as negotiation;
/// Deterministic fault-injection transport: loss, latency, crashes.
pub use trust_vo_netsim as netsim;
/// Zero-dependency observability: spans, metrics, events, JSONL export.
pub use trust_vo_obs as obs;
/// Concept ontology, Jaccard matching, and Algorithm 1 mapping.
pub use trust_vo_ontology as ontology;
/// X-TNL disclosure policies and compliance checking.
pub use trust_vo_policy as policy;
/// Seeded scenario DSL + lifecycle fuzzer: generated fault plans and VO
/// lifecycle scripts, property checks, failure shrinking.
pub use trust_vo_scenario as scenario_dsl;
/// SOA substrate: envelopes, service bus, TN web service, sim-clock.
pub use trust_vo_soa as soa;
/// In-memory versioned document store.
pub use trust_vo_store as store;
/// VO Management toolkit: lifecycle, formation, operation, reputation.
pub use trust_vo_vo as vo;
/// XML document model, writer, parser, and XPath-subset evaluator.
pub use trust_vo_xmldoc as xmldoc;
