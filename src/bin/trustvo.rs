//! `trustvo` — a small CLI over the trust-vo library.
//!
//! ```text
//! trustvo form [--strategy <s>]        run the Formation phase of the Aircraft VO
//! trustvo negotiate [--strategy <s>]   run the Fig. 2 negotiation, print tree + sequence
//! trustvo views                        enumerate all satisfiable trust sequences
//! trustvo lifecycle                    full lifecycle incl. operation + dissolution
//! trustvo strategies                   compare the four strategies side by side
//! trustvo trace <dump.jsonl> [--top k] timeline + critical path of an obs export
//! trustvo scenario repro <flags…>      re-run a generated lifecycle scenario
//! ```
//!
//! Strategies: standard (default), trusting, suspicious, strong-suspicious.
//!
//! `trace` reads a JSONL observability export (written by the bench
//! binaries' `--emit-obs`), then prints for every root span its
//! negotiation timeline, sim-time attribution table, and top-k critical
//! path.
//!
//! `scenario repro` takes the flag set printed by the lifecycle fuzzer's
//! shrinker (`fig_scenario_sweep`, `trust-vo-scenario`), rebuilds the
//! scenario, runs every property check on it, and prints the outcome —
//! so a shrunk failing seed reproduces outside the fuzzing harness.

use trust_vo::credential::RevocationList;
use trust_vo::negotiation::message::Side;
use trust_vo::negotiation::{choose_minimal, enumerate_sequences, NegotiationConfig, Strategy};
use trust_vo::obs::{critical, parse_jsonl, Record, SpanRecord, Value};
use trust_vo::vo::operation::{authorize_operation, OperationLog};
use trust_vo::vo::scenario::{names, roles, scenario_time, AircraftScenario};

fn parse_strategy(args: &[String]) -> Result<Strategy, String> {
    match args.iter().position(|a| a == "--strategy") {
        None => Ok(Strategy::Standard),
        Some(i) => {
            let value = args
                .get(i + 1)
                .ok_or_else(|| "--strategy requires a value".to_owned())?;
            Strategy::from_wire_name(value).ok_or_else(|| {
                format!(
                    "unknown strategy '{value}' (expected: {})",
                    Strategy::ALL.map(|s| s.wire_name()).join(", ")
                )
            })
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: trustvo <command> [--strategy <s>]\n\
         commands:\n\
         \x20 form        run the Formation phase of the Aircraft Optimization VO\n\
         \x20 negotiate   run the Fig. 2 negotiation (tree + trust sequence)\n\
         \x20 views       enumerate all satisfiable trust sequences\n\
         \x20 lifecycle   walk the whole VO lifecycle\n\
         \x20 strategies  compare the four Trust-X strategies\n\
         \x20 trace       render an obs JSONL export: timeline, attribution, critical path\n\
         \x20             (trustvo trace <dump.jsonl> [--top <k>])\n\
         \x20 scenario    re-run a generated lifecycle scenario and check its properties\n\
         \x20             (trustvo scenario repro --seed <s> --parties <n> …)\n\
         strategies: standard | trusting | suspicious | strong-suspicious"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    let strategy = match parse_strategy(&args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match command.as_str() {
        "form" => cmd_form(strategy),
        "negotiate" => cmd_negotiate(strategy),
        "views" => cmd_views(),
        "lifecycle" => cmd_lifecycle(strategy),
        "strategies" => cmd_strategies(),
        "trace" => cmd_trace(&args),
        "scenario" => cmd_scenario(&args),
        _ => usage(),
    }
}

fn cmd_scenario(args: &[String]) {
    use trust_vo::scenario_dsl::{check_scenario, Scenario};
    if args.get(1).map(String::as_str) != Some("repro") {
        eprintln!("usage: trustvo scenario repro --seed <s> --parties <n> [--depth <d>] …");
        std::process::exit(2);
    }
    let scenario = Scenario::from_args(&args[2..]).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    println!("scenario: {scenario:?}");
    match check_scenario(&scenario) {
        Ok(outcome) => {
            match &outcome.formed {
                Ok(formed) => {
                    println!(
                        "formed {} member(s) in {} ({} negotiation(s), {} retry(ies), \
                         {} resume(s), {} restart(s)):",
                        formed.members.len(),
                        fmt_sim(outcome.elapsed_us),
                        formed.negotiations,
                        formed.retries,
                        formed.resumes,
                        formed.restarts,
                    );
                    for (provider, role, serial) in &formed.members {
                        println!("  {provider:<12} as {role} (serial {serial})");
                    }
                }
                Err(e) => println!("formation failed (a legitimate outcome): {e}"),
            }
            println!(
                "network: {} delivered, {} dropped, {} crash(es), {} partitioned, {} refused",
                outcome.delivered,
                outcome.drops,
                outcome.crashes,
                outcome.partitioned,
                outcome.refusals,
            );
            println!("all lifecycle properties hold");
        }
        Err(failure) => {
            eprintln!("property violation: {failure}");
            std::process::exit(1);
        }
    }
}

/// Human-readable simulated microseconds.
fn fmt_sim(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

fn cmd_trace(args: &[String]) {
    let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: trustvo trace <dump.jsonl> [--top <k>]");
        std::process::exit(2);
    };
    let top = match args.iter().position(|a| a == "--top") {
        None => 10usize,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(k) => k,
            None => {
                eprintln!("--top requires a positive integer");
                std::process::exit(2);
            }
        },
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let records = parse_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });
    let spans: Vec<&SpanRecord> = records
        .iter()
        .filter_map(|r| match r {
            Record::Span(s) => Some(s),
            _ => None,
        })
        .collect();
    let roots: Vec<&&SpanRecord> = spans.iter().filter(|s| s.parent.is_none()).collect();
    if roots.is_empty() {
        println!("no root spans in {path} ({} records)", records.len());
        return;
    }
    println!(
        "{}: {} records, {} spans, {} roots",
        path,
        records.len(),
        spans.len(),
        roots.len()
    );
    for root in roots {
        println!();
        println!(
            "root '{}' (span {}, trace {}) — sim {} @ {}",
            root.name,
            root.id,
            root.trace_id,
            fmt_sim(root.sim_us),
            fmt_sim(root.sim_start_us)
        );
        // Timeline: the root's direct children in sim-start order.
        let mut children: Vec<&&SpanRecord> =
            spans.iter().filter(|s| s.parent == Some(root.id)).collect();
        children.sort_by_key(|s| (s.sim_start_us, s.id));
        if !children.is_empty() {
            println!("  timeline:");
            for child in children {
                println!(
                    "    [{:>10} +{:>9}] {}{}",
                    fmt_sim(child.sim_start_us),
                    fmt_sim(child.sim_us),
                    child.name,
                    span_note(child)
                );
            }
        }
        if let Some(a) = critical::attribute(&records, root.id) {
            print!(
                "  {}",
                critical::render_attribution(&a).replace('\n', "\n  ")
            );
            println!();
        }
        let path_spans = critical::critical_path(&records, root.id);
        if !path_spans.is_empty() {
            println!("  critical path (top {top}):");
            print!("{}", critical::render_critical_path(&path_spans, top));
        }
    }
}

/// A short annotation for a timeline line from the span's fields.
fn span_note(span: &SpanRecord) -> String {
    let mut parts = Vec::new();
    for key in [
        "requester",
        "provider",
        "role",
        "operation",
        "outcome",
        "result",
    ] {
        for (k, v) in &span.fields {
            if k == key {
                let rendered = match v {
                    Value::I64(n) => n.to_string(),
                    Value::F64(f) => format!("{f}"),
                    Value::Bool(b) => b.to_string(),
                    Value::Str(s) => s.clone(),
                };
                parts.push(format!("{k}={rendered}"));
            }
        }
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("  ({})", parts.join(", "))
    }
}

fn cmd_form(strategy: Strategy) {
    let mut scenario = AircraftScenario::build();
    match scenario.form_vo(strategy) {
        Ok(vo) => {
            println!("VO '{}' formed with strategy '{strategy}':", vo.name);
            for m in vo.members() {
                println!("  {:<32} as {}", m.provider, m.role);
            }
            println!(
                "simulated formation time: {:.2} s",
                scenario.toolkit.clock.elapsed().as_secs_f64()
            );
        }
        Err(e) => {
            eprintln!("formation failed: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_negotiate(strategy: Strategy) {
    let scenario = AircraftScenario::build();
    match scenario.fig2_negotiation(strategy) {
        Ok(outcome) => {
            println!("negotiation tree:");
            print!("{}", outcome.tree.render());
            println!("trust sequence: {}", outcome.sequence);
            println!("transcript:     {}", outcome.transcript.summary());
        }
        Err(e) => {
            eprintln!("negotiation failed: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_views() {
    let scenario = AircraftScenario::build();
    let mut initiator = scenario.provider(names::AIRCRAFT).party.clone();
    if let Some(set) = scenario.contract.policies_for(roles::DESIGN_PORTAL) {
        for policy in set.iter() {
            initiator.policies.add(policy.clone());
        }
    }
    let aerospace = scenario.provider(names::AEROSPACE).party.clone();
    let cfg = NegotiationConfig::new(Strategy::Standard, scenario_time());
    let sequences = enumerate_sequences(&aerospace, &initiator, "VoMembership", &cfg, 100);
    println!("{} satisfiable trust sequences:", sequences.len());
    for s in &sequences {
        println!("  {s}");
    }
    if let Some(best) = choose_minimal(&sequences, Side::Requester) {
        println!("requester-minimal: {best}");
    }
}

fn cmd_lifecycle(strategy: Strategy) {
    let mut scenario = AircraftScenario::build();
    let vo = match scenario.form_vo(strategy) {
        Ok(vo) => vo,
        Err(e) => {
            eprintln!("formation failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "[formation]  {} members, phase {}",
        vo.members().len(),
        vo.lifecycle.phase()
    );
    let providers = scenario.toolkit.providers.clone();
    let clock = scenario.toolkit.clock.clone();
    let auth = authorize_operation(
        &vo,
        &providers,
        names::CONSULTANCY,
        names::HPC,
        "FlowSolution",
        &mut scenario.toolkit.reputation,
        &clock,
        strategy,
    );
    match auth {
        Ok(a) => println!(
            "[operation]  authorization for '{}' granted to {}",
            a.resource, a.granted_to
        ),
        Err(e) => println!("[operation]  authorization failed: {e}"),
    }
    let mut log = OperationLog::new();
    log.record(
        &vo,
        &mut scenario.toolkit.reputation,
        names::HPC,
        names::STORAGE,
        "store results",
        false,
        clock.timestamp(),
    )
    .expect("members interact");
    println!(
        "[operation]  {} interactions monitored",
        log.records().len()
    );
    let mut vo = vo;
    let mut crl = RevocationList::new();
    let report = trust_vo::vo::dissolution::dissolve(&mut vo, &mut crl, &clock).expect("dissolves");
    println!(
        "[dissolved]  {} certificates revoked, total sim time {:.2} s",
        report.certificates_revoked,
        clock.elapsed().as_secs_f64()
    );
}

fn cmd_strategies() {
    let scenario = AircraftScenario::build();
    println!(
        "{:<18} {:>9} {:>7} {:>9} {:>12} {:>7}",
        "strategy", "messages", "rounds", "policies", "credentials", "proofs"
    );
    for strategy in Strategy::ALL {
        match scenario.fig2_negotiation(strategy) {
            Ok(o) => println!(
                "{:<18} {:>9} {:>7} {:>9} {:>12} {:>7}",
                strategy.wire_name(),
                o.transcript.message_count(),
                o.transcript.policy_rounds,
                o.transcript.policies_disclosed,
                o.transcript.credentials_disclosed,
                o.transcript.ownership_proofs,
            ),
            Err(e) => println!("{:<18} failed: {e}", strategy.wire_name()),
        }
    }
}
