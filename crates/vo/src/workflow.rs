//! The Fig. 1 operation-phase workflow: the Aircraft Optimization process.
//!
//! "The Aircraft Company's engineer selects a wing design by the Design
//! Web Portal. The engineer decides to optimize the design. The Design
//! Optimization Partner Service is first activated and then accesses the
//! design-optimization control file from the Design Partner Web Portal.
//! The file is sent to the HPC Partner Service which computes a new wing
//! profile and computes a flow solution, generating new wing lift and drag
//! values which are stored at the storage provider service. This data is
//! then used to compute a revised design. Note that these steps (Steps 5
//! and 6) are executed repeatedly until the target result is achieved."
//! (§3)
//!
//! The workflow drives every cross-member call through the operation-phase
//! machinery: membership certificates are verified, each service access is
//! gated by an authorization TN, every interaction is monitored, and the
//! iterative steps run "until the target result is achieved" — here a
//! simple drag-minimization model that converges geometrically.

use crate::error::VoError;
use crate::formation::FormedVo;
use crate::member::ServiceProvider;
use crate::operation::{authorize_operation, verify_membership, OperationLog};
use crate::reputation::ReputationLedger;
use crate::scenario::{names, roles};
use std::collections::BTreeMap;
use trust_vo_credential::RevocationList;
use trust_vo_negotiation::Strategy;
use trust_vo_soa::simclock::SimClock;

/// One optimization iteration's aerodynamic figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WingFigures {
    /// Iteration number (0 = the initial portal design).
    pub iteration: usize,
    /// Lift coefficient.
    pub lift: f64,
    /// Drag coefficient (to be minimized).
    pub drag: f64,
}

/// The workflow outcome.
#[derive(Debug, Clone)]
pub struct OptimizationRun {
    /// Figures per iteration, initial design first.
    pub history: Vec<WingFigures>,
    /// Authorizations obtained along the way (design file, flow solution,
    /// storage).
    pub authorizations: Vec<String>,
    /// Whether the drag target was reached within the iteration budget.
    pub converged: bool,
}

impl OptimizationRun {
    /// The final figures.
    pub fn final_figures(&self) -> WingFigures {
        *self.history.last().expect("at least the initial design")
    }
}

/// Parameters of the optimization loop.
#[derive(Debug, Clone, Copy)]
pub struct OptimizationTarget {
    /// Stop once drag falls below this value.
    pub drag_target: f64,
    /// Hard iteration budget (Fig. 1's loop must terminate).
    pub max_iterations: usize,
}

impl Default for OptimizationTarget {
    fn default() -> Self {
        OptimizationTarget {
            drag_target: 0.022,
            max_iterations: 32,
        }
    }
}

/// Execute the Fig. 1 workflow over a formed VO.
///
/// Preconditions: the VO is in the Operation phase and the four scenario
/// roles are filled. Each cross-member access first verifies the acting
/// member's membership certificate and then obtains an authorization via
/// an operation-phase TN; interactions are recorded into `log`.
#[allow(clippy::too_many_arguments)]
pub fn run_optimization(
    vo: &FormedVo,
    providers: &BTreeMap<String, ServiceProvider>,
    reputation: &mut ReputationLedger,
    log: &mut OperationLog,
    crl: &RevocationList,
    clock: &SimClock,
    strategy: Strategy,
    target: OptimizationTarget,
) -> Result<OptimizationRun, VoError> {
    // All four partners must be present with valid membership.
    for role in [
        roles::DESIGN_PORTAL,
        roles::OPTIMIZER,
        roles::HPC,
        roles::STORAGE,
    ] {
        let record = vo
            .member_for_role(role)
            .ok_or_else(|| VoError::UnknownRole(role.to_owned()))?;
        verify_membership(vo, record, clock.timestamp(), crl)?;
    }
    let portal = &vo
        .member_for_role(roles::DESIGN_PORTAL)
        .expect("checked")
        .provider;
    let optimizer = &vo
        .member_for_role(roles::OPTIMIZER)
        .expect("checked")
        .provider;
    let hpc = &vo.member_for_role(roles::HPC).expect("checked").provider;
    let storage = &vo
        .member_for_role(roles::STORAGE)
        .expect("checked")
        .provider;
    let mut authorizations = Vec::new();

    // Steps 1–2: the engineer selects a design and activates the optimizer.
    log.record(
        vo,
        reputation,
        names::AIRCRAFT,
        portal,
        "select wing design",
        false,
        clock.timestamp(),
    )?;
    log.record(
        vo,
        reputation,
        names::AIRCRAFT,
        optimizer,
        "activate optimization",
        false,
        clock.timestamp(),
    )?;

    // Step 3(a): the optimizer fetches the control file from the portal —
    // this is the dashed TN arrow of Fig. 1. The portal's ControlFile
    // service is ungoverned in the stock scenario, so the TN is trivial,
    // but the authorization machinery still runs.
    let auth = authorize_operation(
        vo,
        providers,
        optimizer,
        portal,
        "ControlFile",
        reputation,
        clock,
        strategy,
    )?;
    authorizations.push(format!("{} -> {}: {}", optimizer, portal, auth.resource));
    log.record(
        vo,
        reputation,
        optimizer,
        portal,
        "fetch design-optimization control file",
        false,
        clock.timestamp(),
    )?;

    // Step 4: the optimizer engages the HPC service (privacy-gated TN).
    let auth = authorize_operation(
        vo,
        providers,
        optimizer,
        hpc,
        "FlowSolution",
        reputation,
        clock,
        strategy,
    )?;
    authorizations.push(format!("{} -> {}: {}", optimizer, hpc, auth.resource));

    // Steps 5–6, repeated: compute profile + flow solution, store lift and
    // drag, revise the design. The toy aero model: each iteration the HPC
    // flow solution reduces drag geometrically toward an asymptote while
    // lift is held within 2% of the requirement.
    let mut history = vec![WingFigures {
        iteration: 0,
        lift: 1.32,
        drag: 0.034,
    }];
    let asymptote = 0.019;
    let mut converged = false;
    for iteration in 1..=target.max_iterations {
        let prev = history.last().expect("seeded").drag;
        let drag = asymptote + (prev - asymptote) * 0.72;
        let lift = 1.30 + 0.02 * (iteration as f64 * 0.9).sin();
        history.push(WingFigures {
            iteration,
            lift,
            drag,
        });
        log.record(
            vo,
            reputation,
            hpc,
            storage,
            &format!("store lift/drag for iteration {iteration}"),
            false,
            clock.timestamp(),
        )?;
        log.record(
            vo,
            reputation,
            storage,
            optimizer,
            &format!("serve analysis data for revision {iteration}"),
            false,
            clock.timestamp(),
        )?;
        if drag <= target.drag_target {
            converged = true;
            break;
        }
    }

    // Step 7: the revised design goes back to the portal.
    log.record(
        vo,
        reputation,
        optimizer,
        portal,
        "publish revised design",
        false,
        clock.timestamp(),
    )?;
    Ok(OptimizationRun {
        history,
        authorizations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::AircraftScenario;
    use trust_vo_credential::RevocationList;

    fn world() -> (AircraftScenario, FormedVo) {
        let mut s = AircraftScenario::build();
        let vo = s.form_vo(Strategy::Standard).unwrap();
        (s, vo)
    }

    #[test]
    fn optimization_converges_with_monitored_interactions() {
        let (mut s, vo) = world();
        let providers = s.toolkit.providers.clone();
        let mut log = OperationLog::new();
        let crl = RevocationList::new();
        let run = run_optimization(
            &vo,
            &providers,
            &mut s.toolkit.reputation,
            &mut log,
            &crl,
            &s.toolkit.clock,
            Strategy::Standard,
            OptimizationTarget::default(),
        )
        .unwrap();
        assert!(run.converged, "drag history: {:?}", run.history);
        assert!(run.final_figures().drag <= 0.022);
        // Drag decreases monotonically.
        for pair in run.history.windows(2) {
            assert!(pair[1].drag < pair[0].drag);
        }
        // Two authorization TNs were obtained (control file + flow solution).
        assert_eq!(run.authorizations.len(), 2);
        // Every iteration produced two monitored interactions plus the
        // fixed workflow steps.
        assert!(log.records().len() >= 2 * (run.history.len() - 1) + 4);
        // Successful cooperation raised reputations.
        assert!(s.toolkit.reputation.get(crate::scenario::names::HPC) > 0.5);
    }

    #[test]
    fn unreachable_target_reports_non_convergence() {
        let (mut s, vo) = world();
        let providers = s.toolkit.providers.clone();
        let mut log = OperationLog::new();
        let crl = RevocationList::new();
        let run = run_optimization(
            &vo,
            &providers,
            &mut s.toolkit.reputation,
            &mut log,
            &crl,
            &s.toolkit.clock,
            Strategy::Standard,
            OptimizationTarget {
                drag_target: 0.001,
                max_iterations: 5,
            },
        )
        .unwrap();
        assert!(!run.converged);
        assert_eq!(run.history.len(), 6); // initial + 5 iterations
    }

    #[test]
    fn revoked_membership_blocks_the_workflow() {
        let (mut s, vo) = world();
        let providers = s.toolkit.providers.clone();
        let mut crl = RevocationList::new();
        let hpc_cert = vo
            .member_for_role(roles::HPC)
            .unwrap()
            .certificate
            .revocation_id();
        crl.revoke(hpc_cert, s.toolkit.clock.timestamp());
        let err = run_optimization(
            &vo,
            &providers,
            &mut s.toolkit.reputation,
            &mut OperationLog::new(),
            &crl,
            &s.toolkit.clock,
            Strategy::Standard,
            OptimizationTarget::default(),
        )
        .unwrap_err();
        assert!(matches!(err, VoError::InvalidMembership { .. }));
    }

    #[test]
    fn missing_role_blocks_the_workflow() {
        let (mut s, mut vo) = world();
        let providers = s.toolkit.providers.clone();
        vo.members.retain(|m| m.role != roles::STORAGE);
        let err = run_optimization(
            &vo,
            &providers,
            &mut s.toolkit.reputation,
            &mut OperationLog::new(),
            &RevocationList::new(),
            &s.toolkit.clock,
            Strategy::Standard,
            OptimizationTarget::default(),
        )
        .unwrap_err();
        assert!(matches!(err, VoError::UnknownRole(_)));
    }
}
