//! Member reputation.
//!
//! "Each member will have an associated reputation, established on the
//! basis of past transactions and updated as it interacts with members of
//! the VO" (§2); during operation, "reputation of the members is updated
//! accordingly based on the result of the operations, the quality of the
//! service granted and so forth. If a VO member violates the contract, it
//! can either be replaced or it can be punished; for example its
//! reputation can be negatively modified."

use std::collections::BTreeMap;

/// Default reputation for a previously unseen party.
pub const DEFAULT_REPUTATION: f64 = 0.5;
/// Reputation gained per successful transaction.
pub const SUCCESS_DELTA: f64 = 0.05;
/// Reputation lost per contract violation.
pub const VIOLATION_DELTA: f64 = 0.2;
/// Reputation lost per failed trust negotiation ("the failed TN may
/// affect the parties' reputation", §5.1).
pub const FAILED_TN_DELTA: f64 = 0.1;

/// A ledger of member reputations in `[0, 1]`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReputationLedger {
    scores: BTreeMap<String, f64>,
    events: u64,
}

impl ReputationLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// The reputation of a party (default for unknown parties).
    pub fn get(&self, party: &str) -> f64 {
        self.scores
            .get(party)
            .copied()
            .unwrap_or(DEFAULT_REPUTATION)
    }

    fn adjust(&mut self, party: &str, delta: f64) {
        let current = self.get(party);
        self.scores
            .insert(party.to_owned(), (current + delta).clamp(0.0, 1.0));
        self.events += 1;
    }

    /// Record a successful transaction.
    pub fn record_success(&mut self, party: &str) {
        self.adjust(party, SUCCESS_DELTA);
    }

    /// Record a contract violation.
    pub fn record_violation(&mut self, party: &str) {
        self.adjust(party, -VIOLATION_DELTA);
    }

    /// Record a failed trust negotiation.
    pub fn record_failed_negotiation(&mut self, party: &str) {
        self.adjust(party, -FAILED_TN_DELTA);
    }

    /// Is the party below the replacement threshold?
    pub fn needs_replacement(&self, party: &str, threshold: f64) -> bool {
        self.get(party) < threshold
    }

    /// Number of recorded events.
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unknown_party_has_default() {
        let ledger = ReputationLedger::new();
        assert_eq!(ledger.get("Ghost"), DEFAULT_REPUTATION);
    }

    #[test]
    fn success_and_violation_move_score() {
        let mut ledger = ReputationLedger::new();
        ledger.record_success("HPC-A");
        assert!((ledger.get("HPC-A") - (DEFAULT_REPUTATION + SUCCESS_DELTA)).abs() < 1e-12);
        ledger.record_violation("HPC-A");
        assert!(ledger.get("HPC-A") < DEFAULT_REPUTATION);
        assert_eq!(ledger.events(), 2);
    }

    #[test]
    fn replacement_threshold() {
        let mut ledger = ReputationLedger::new();
        assert!(!ledger.needs_replacement("HPC-A", 0.3));
        ledger.record_violation("HPC-A");
        ledger.record_violation("HPC-A");
        // 0.5 - 0.4 = 0.1 < 0.3
        assert!(ledger.needs_replacement("HPC-A", 0.3));
    }

    #[test]
    fn failed_negotiation_penalty() {
        let mut ledger = ReputationLedger::new();
        ledger.record_failed_negotiation("Shady Co");
        assert!((ledger.get("Shady Co") - (DEFAULT_REPUTATION - FAILED_TN_DELTA)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn reputation_stays_bounded(ops in proptest::collection::vec(0u8..3, 0..100)) {
            let mut ledger = ReputationLedger::new();
            for op in ops {
                match op {
                    0 => ledger.record_success("X"),
                    1 => ledger.record_violation("X"),
                    _ => ledger.record_failed_negotiation("X"),
                }
                let score = ledger.get("X");
                prop_assert!((0.0..=1.0).contains(&score));
            }
        }

        #[test]
        fn successes_never_decrease(n in 1usize..50) {
            let mut ledger = ReputationLedger::new();
            let mut last = ledger.get("X");
            for _ in 0..n {
                ledger.record_success("X");
                let now = ledger.get("X");
                prop_assert!(now >= last);
                last = now;
            }
        }
    }
}
