//! Member reputation.
//!
//! "Each member will have an associated reputation, established on the
//! basis of past transactions and updated as it interacts with members of
//! the VO" (§2); during operation, "reputation of the members is updated
//! accordingly based on the result of the operations, the quality of the
//! service granted and so forth. If a VO member violates the contract, it
//! can either be replaced or it can be punished; for example its
//! reputation can be negatively modified."

use std::collections::BTreeMap;

/// Default reputation for a previously unseen party.
pub const DEFAULT_REPUTATION: f64 = 0.5;
/// Reputation gained per successful transaction.
pub const SUCCESS_DELTA: f64 = 0.05;
/// Reputation lost per contract violation.
pub const VIOLATION_DELTA: f64 = 0.2;
/// Reputation lost per failed trust negotiation ("the failed TN may
/// affect the parties' reputation", §5.1).
pub const FAILED_TN_DELTA: f64 = 0.1;

/// A ledger of member reputations in `[0, 1]`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReputationLedger {
    scores: BTreeMap<String, f64>,
    party_events: BTreeMap<String, u64>,
    events: u64,
}

impl ReputationLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// The reputation of a party (default for unknown parties).
    pub fn get(&self, party: &str) -> f64 {
        self.scores
            .get(party)
            .copied()
            .unwrap_or(DEFAULT_REPUTATION)
    }

    fn adjust(&mut self, party: &str, delta: f64) {
        let current = self.get(party);
        let next = (current + delta).clamp(0.0, 1.0);
        self.scores.insert(party.to_owned(), next);
        // A fully-clamped no-op update — e.g. a violation against a party
        // already at 0.0 — leaves the score untouched and is not an event.
        if next.to_bits() != current.to_bits() {
            self.events += 1;
            *self.party_events.entry(party.to_owned()).or_insert(0) += 1;
        }
    }

    /// Record a successful transaction.
    pub fn record_success(&mut self, party: &str) {
        self.adjust(party, SUCCESS_DELTA);
    }

    /// Record a contract violation.
    pub fn record_violation(&mut self, party: &str) {
        self.adjust(party, -VIOLATION_DELTA);
    }

    /// Record a failed trust negotiation.
    pub fn record_failed_negotiation(&mut self, party: &str) {
        self.adjust(party, -FAILED_TN_DELTA);
    }

    /// Is the party below the replacement threshold?
    ///
    /// The comparison is a strict `<`: a party whose score sits *exactly
    /// at* the threshold is **not** replaced. Admission banding
    /// (`trust-vo-admission`'s `BandConfig::band_for`) reuses the same
    /// boundary semantics — an exact-threshold score lands in the higher
    /// band — so the two layers never disagree about a borderline party.
    pub fn needs_replacement(&self, party: &str, threshold: f64) -> bool {
        self.get(party) < threshold
    }

    /// Number of effective (score-moving) recorded events, over all
    /// parties. Fully-clamped no-op updates do not count.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Effective (score-moving) events recorded for one party — the
    /// transaction-count evidence the admission scoring engine reads.
    pub fn events_for(&self, party: &str) -> u64 {
        self.party_events.get(party).copied().unwrap_or(0)
    }

    /// Every known party and its score, in party order — e.g. for seeding
    /// an admission `ScoringEngine` over this ledger.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        self.scores.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unknown_party_has_default() {
        let ledger = ReputationLedger::new();
        assert_eq!(ledger.get("Ghost"), DEFAULT_REPUTATION);
    }

    #[test]
    fn success_and_violation_move_score() {
        let mut ledger = ReputationLedger::new();
        ledger.record_success("HPC-A");
        assert!((ledger.get("HPC-A") - (DEFAULT_REPUTATION + SUCCESS_DELTA)).abs() < 1e-12);
        ledger.record_violation("HPC-A");
        assert!(ledger.get("HPC-A") < DEFAULT_REPUTATION);
        assert_eq!(ledger.events(), 2);
    }

    #[test]
    fn replacement_threshold() {
        let mut ledger = ReputationLedger::new();
        assert!(!ledger.needs_replacement("HPC-A", 0.3));
        ledger.record_violation("HPC-A");
        ledger.record_violation("HPC-A");
        // 0.5 - 0.4 = 0.1 < 0.3
        assert!(ledger.needs_replacement("HPC-A", 0.3));
    }

    #[test]
    fn replacement_boundary_is_strict() {
        // Pinned boundary semantics: score == threshold is NOT replaced.
        // Admission banding reuses this comparison, so it must not drift.
        let mut ledger = ReputationLedger::new();
        ledger.record_violation("Edge");
        let score = ledger.get("Edge");
        assert!(!ledger.needs_replacement("Edge", score));
        assert!(ledger.needs_replacement("Edge", score + 1e-12));
        // Unknown parties sit exactly at the default: same rule.
        assert!(!ledger.needs_replacement("Ghost", DEFAULT_REPUTATION));
    }

    #[test]
    fn clamped_noop_update_is_not_an_event() {
        let mut ledger = ReputationLedger::new();
        // 0.5 → 0.3 → 0.1 → 0.0 (clamped but still moving): 3 events.
        ledger.record_violation("V");
        ledger.record_violation("V");
        ledger.record_violation("V");
        assert_eq!(ledger.get("V"), 0.0);
        assert_eq!(ledger.events(), 3);
        assert_eq!(ledger.events_for("V"), 3);
        // Already at the floor: a further violation changes nothing and
        // must not count as an event.
        ledger.record_violation("V");
        assert_eq!(ledger.events(), 3);
        assert_eq!(ledger.events_for("V"), 3);
        assert_eq!(ledger.events_for("Ghost"), 0);
    }

    #[test]
    fn snapshot_lists_scores_in_party_order() {
        let mut ledger = ReputationLedger::new();
        ledger.record_success("B");
        ledger.record_violation("A");
        let snapshot = ledger.snapshot();
        assert_eq!(snapshot.len(), 2);
        assert_eq!(snapshot[0].0, "A");
        assert_eq!(snapshot[1].0, "B");
        assert!((snapshot[1].1 - 0.55).abs() < 1e-12);
    }

    #[test]
    fn failed_negotiation_penalty() {
        let mut ledger = ReputationLedger::new();
        ledger.record_failed_negotiation("Shady Co");
        assert!((ledger.get("Shady Co") - (DEFAULT_REPUTATION - FAILED_TN_DELTA)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn reputation_stays_bounded(ops in proptest::collection::vec(0u8..3, 0..100)) {
            let mut ledger = ReputationLedger::new();
            for op in ops {
                match op {
                    0 => ledger.record_success("X"),
                    1 => ledger.record_violation("X"),
                    _ => ledger.record_failed_negotiation("X"),
                }
                let score = ledger.get("X");
                prop_assert!((0.0..=1.0).contains(&score));
            }
        }

        #[test]
        fn successes_never_decrease(n in 1usize..50) {
            let mut ledger = ReputationLedger::new();
            let mut last = ledger.get("X");
            for _ in 0..n {
                ledger.record_success("X");
                let now = ledger.get("X");
                prop_assert!(now >= last);
                last = now;
            }
        }
    }
}
