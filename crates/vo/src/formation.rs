//! The Formation phase with integrated trust negotiation (paper §5.1).
//!
//! "The VO Initiator engages a TN with the potential members accepting its
//! invitation. … unlike the conventional joining phase of a VO, acceptance
//! in TN is mutual … If the VO Initiator decides to assign the VO
//! potential member to the role, it sends it a VO membership certificate
//! that the member can use to identify itself during the operational
//! phase. If a negotiation is not successful, the VO Initiator removes the
//! invited VO partner from the potential partners list and looks for other
//! potential members."
//!
//! [`join_member`] reproduces the §6.3.1 measured *join process* for one
//! member (with or without TN — the two Fig. 9 bars); [`form_vo`] runs the
//! whole Formation phase over every contract role.

use crate::contract::Contract;
use crate::error::VoError;
use crate::lifecycle::{Phase, VoLifecycle};
use crate::mailbox::{Invitation, MailboxSystem};
use crate::member::{MemberRecord, ServiceProvider};
use crate::registry::ServiceRegistry;
use crate::reputation::ReputationLedger;
use std::collections::BTreeMap;
use trust_vo_credential::x509::AttributeCertificate;
use trust_vo_credential::TimeRange;
use trust_vo_crypto::{hex, KeyPair};
use trust_vo_negotiation::{negotiate, NegotiationConfig, Party, Strategy, Transcript};
use trust_vo_soa::simclock::{CostKind, SimClock};

/// A formed VO: the output of the Formation phase.
#[derive(Debug, Clone)]
pub struct FormedVo {
    /// The VO name (from the contract).
    pub name: String,
    /// The contract in force.
    pub contract: Contract,
    /// The initiating organization.
    pub initiator: String,
    /// The VO key pair; the public half is embedded in membership tokens
    /// "to be used for authentication in the VO" (§5.1).
    pub vo_keys: KeyPair,
    /// Current members.
    pub members: Vec<MemberRecord>,
    /// Lifecycle tracker.
    pub lifecycle: VoLifecycle,
    pub(crate) next_serial: u64,
}

impl FormedVo {
    /// The member playing `role`, if assigned.
    pub fn member_for_role(&self, role: &str) -> Option<&MemberRecord> {
        self.members.iter().find(|m| m.role == role)
    }

    /// Is the named provider a member?
    pub fn is_member(&self, provider: &str) -> bool {
        self.members.iter().any(|m| m.provider == provider)
    }

    /// The members.
    pub fn members(&self) -> &[MemberRecord] {
        &self.members
    }

    /// Allocate the next membership-certificate serial.
    pub fn next_serial(&mut self) -> u64 {
        self.next_serial += 1;
        self.next_serial
    }
}

/// Charge the sim-clock for the work a negotiation transcript records.
pub fn charge_negotiation(clock: &SimClock, transcript: &Transcript) {
    clock.charge_n(CostKind::SoapRoundTrip, transcript.policy_rounds as u64);
    clock.charge_n(CostKind::DbQuery, transcript.policies_disclosed as u64);
    clock.charge_n(CostKind::PolicyEvaluation, transcript.policies_disclosed as u64);
    // Each credential: one SOAP hop, one DB fetch, one verification.
    clock.charge_n(CostKind::SoapRoundTrip, transcript.credentials_disclosed as u64);
    clock.charge_n(CostKind::DbQuery, transcript.credentials_disclosed as u64);
    clock.charge_n(CostKind::SignatureVerify, transcript.verifications as u64);
    clock.charge_n(CostKind::SignatureSign, transcript.ownership_proofs as u64);
    clock.charge_n(CostKind::SignatureVerify, transcript.ownership_proofs as u64);
}

/// The initiator's negotiation identity for one role: its own party data
/// with the contract's Identification-phase policies for that role merged
/// in ("policies are created for the specific VO and in particular for the
/// roles", §5.1).
fn initiator_party_for_role(initiator: &ServiceProvider, contract: &Contract, role: &str) -> Party {
    let mut party = initiator.party.clone();
    if let Some(set) = contract.policies_for(role) {
        for policy in set.iter() {
            party.policies.add(policy.clone());
        }
    }
    party
}

/// Issue the VO membership certificate for a successful candidate.
fn issue_membership(
    vo: &mut FormedVo,
    initiator_keys: &KeyPair,
    clock: &SimClock,
    candidate: &Party,
    role: &str,
) -> AttributeCertificate {
    clock.charge(CostKind::CertificateIssue);
    clock.charge(CostKind::SignatureSign);
    let serial = vo.next_serial();
    AttributeCertificate::issue(
        serial,
        candidate.name.clone(),
        candidate.keys.public,
        vo.initiator.clone(),
        initiator_keys,
        TimeRange::one_year_from(clock.timestamp()),
        vec![
            ("vo".into(), vo.name.clone()),
            ("role".into(), role.to_owned()),
            ("voPublicKey".into(), hex::encode(&vo.vo_keys.public.0.to_be_bytes())),
        ],
    )
}

/// The §6.3.1 join process for one member, with or without TN.
///
/// The GUI steps mirror §6.1's flow: invitation screen → member mailbox →
/// accept → "Role overview" screen → "Assign Member" → confirmation.
/// Passing `Some(strategy)` interleaves the mutual trust negotiation
/// (Fig. 4) between acceptance and role assignment.
#[allow(clippy::too_many_arguments)]
pub fn join_member(
    vo: &mut FormedVo,
    initiator: &ServiceProvider,
    candidate: &ServiceProvider,
    role: &str,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    clock: &SimClock,
    with_tn: Option<Strategy>,
) -> Result<MemberRecord, VoError> {
    let role_def = vo
        .contract
        .role(role)
        .ok_or_else(|| VoError::UnknownRole(role.to_owned()))?
        .clone();

    // Invitation screen + delivery into the member's mailbox.
    clock.charge(CostKind::GuiStep);
    clock.charge(CostKind::SoapRoundTrip);
    mailboxes.deliver(
        candidate.name(),
        Invitation {
            vo_name: vo.name.clone(),
            role: role.to_owned(),
            from: initiator.name().to_owned(),
            text: format!("Join '{}': {}", vo.name, role_def.requirements),
        },
    );
    // Member reads the mailbox and decides.
    clock.charge(CostKind::GuiStep);
    let _invitation = mailboxes.take(candidate.name());
    if !candidate.accepts_invitations {
        return Err(VoError::RoleUnfilled {
            role: role.to_owned(),
            tried: vec![candidate.name().to_owned()],
        });
    }
    clock.charge(CostKind::GuiStep); // accept click + reply
    clock.charge(CostKind::SoapRoundTrip);

    // The interleaved trust negotiation (Fig. 3, arrow 0 / Fig. 4).
    if let Some(strategy) = with_tn {
        let initiator_party = initiator_party_for_role(initiator, &vo.contract, role);
        let cfg = NegotiationConfig::new(strategy, clock.timestamp());
        match negotiate(&candidate.party, &initiator_party, "VoMembership", &cfg) {
            Ok(outcome) => {
                charge_negotiation(clock, &outcome.transcript);
                reputation.record_success(candidate.name());
            }
            Err(e) => {
                // "the failed TN may affect the parties' reputation" (§5.1).
                reputation.record_failed_negotiation(candidate.name());
                return Err(VoError::Negotiation(e));
            }
        }
    }

    // Role overview + Assign Member + registration write.
    clock.charge(CostKind::GuiStep);
    clock.charge(CostKind::GuiStep);
    clock.charge_n(CostKind::DbQuery, 2);
    let certificate = issue_membership(vo, &initiator.party.keys, clock, &candidate.party, role);
    // Confirmation screen.
    clock.charge(CostKind::GuiStep);
    clock.charge(CostKind::DbQuery);

    let record = MemberRecord {
        provider: candidate.name().to_owned(),
        role: role.to_owned(),
        certificate,
    };
    vo.members.push(record.clone());
    Ok(record)
}

/// Create the VO shell after the Identification phase: lifecycle advanced
/// to Formation, VO keys generated, no members yet.
pub fn create_vo(contract: Contract, initiator: &ServiceProvider, clock: &SimClock) -> FormedVo {
    let mut lifecycle = VoLifecycle::new(clock.timestamp());
    lifecycle
        .advance_to(Phase::Identification, clock.timestamp())
        .expect("fresh lifecycle advances");
    lifecycle
        .advance_to(Phase::Formation, clock.timestamp())
        .expect("identification advances to formation");
    let vo_keys = KeyPair::from_seed(format!("vo:{}", contract.vo_name).as_bytes());
    FormedVo {
        name: contract.vo_name.clone(),
        initiator: initiator.name().to_owned(),
        contract,
        vo_keys,
        members: Vec::new(),
        lifecycle,
        next_serial: 0,
    }
}

/// Run the whole Formation phase: for every contract role, query the
/// registry, invite candidates best-first (registry quality × reputation),
/// negotiate, and assign the first success. Ends with the lifecycle in
/// Operation.
#[allow(clippy::too_many_arguments)]
pub fn form_vo(
    contract: Contract,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
    registry: &ServiceRegistry,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    clock: &SimClock,
    strategy: Strategy,
) -> Result<FormedVo, VoError> {
    let mut vo = create_vo(contract, initiator, clock);
    let roles: Vec<_> = vo.contract.roles.clone();
    for role in &roles {
        // Formation: "The VO Initiator queries public repositories to
        // retrieve the information published during the Preparation phase."
        clock.charge(CostKind::DbQuery);
        let mut candidates: Vec<&crate::registry::ResourceDescription> =
            registry.find_by_capability(&role.capability);
        if candidates.is_empty() {
            return Err(VoError::NoCandidates { role: role.name.clone() });
        }
        // Order by advertised quality weighted by reputation.
        candidates.sort_by(|a, b| {
            let score = |d: &crate::registry::ResourceDescription| d.quality * reputation.get(&d.provider);
            score(b)
                .partial_cmp(&score(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.provider.cmp(&b.provider))
        });
        let mut tried = Vec::new();
        let mut assigned = false;
        for description in candidates {
            let Some(candidate) = providers.get(&description.provider) else {
                continue;
            };
            tried.push(candidate.name().to_owned());
            match join_member(
                &mut vo,
                initiator,
                candidate,
                &role.name,
                mailboxes,
                reputation,
                clock,
                Some(strategy),
            ) {
                Ok(_) => {
                    assigned = true;
                    break;
                }
                Err(_) => continue, // "looks for other potential members"
            }
        }
        if !assigned {
            return Err(VoError::RoleUnfilled { role: role.name.clone(), tried });
        }
    }
    vo.lifecycle
        .advance_to(Phase::Operation, clock.timestamp())
        .expect("formation advances to operation");
    Ok(vo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::Role;
    use crate::registry::ResourceDescription;
    use trust_vo_credential::{CredentialAuthority, TimeRange, Timestamp};
    use trust_vo_policy::{DisclosurePolicy, PolicySet, Resource, Term};
    use trust_vo_soa::simclock::CostModel;

    fn clock() -> SimClock {
        SimClock::new(CostModel::paper_testbed(), Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0))
    }

    /// A minimal one-role world: the initiator requires WebDesignerQuality
    /// for the DesignPortal role; two candidate providers exist, one with
    /// the credential and one without.
    fn world() -> (Contract, ServiceProvider, BTreeMap<String, ServiceProvider>, ServiceRegistry) {
        let mut ca = CredentialAuthority::new("AAA");
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));

        let mut initiator_party = Party::new("Aircraft");
        let mut good = Party::new("Aerospace");
        let quality = ca
            .issue("WebDesignerQuality", "Aerospace", good.keys.public, vec![], window)
            .unwrap();
        good.profile.add(quality);
        good.trust_root(ca.public_key());
        initiator_party.trust_root(ca.public_key());
        let bad = Party::new("Shady Co");

        let mut contract = Contract::new("AircraftOptimization", "low emissions")
            .with_role(Role::new("DesignPortal", "design-db", "ISO 9000"));
        let mut policies = PolicySet::new();
        policies.add(DisclosurePolicy::rule(
            "vo-p1",
            Resource::service("VoMembership"),
            vec![Term::of_type("WebDesignerQuality")],
        ));
        contract.set_role_policies("DesignPortal", policies);

        let mut registry = ServiceRegistry::new();
        registry.publish(ResourceDescription::new("Shady Co", "design-db", "x", 0.99));
        registry.publish(ResourceDescription::new("Aerospace", "design-db", "x", 0.9));

        let mut providers = BTreeMap::new();
        providers.insert("Aerospace".to_owned(), ServiceProvider::new(good));
        providers.insert("Shady Co".to_owned(), ServiceProvider::new(bad));
        (contract, ServiceProvider::new(initiator_party), providers, registry)
    }

    #[test]
    fn formation_fills_role_skipping_failed_candidate() {
        let (contract, initiator, providers, registry) = world();
        let clock = clock();
        let mut mailboxes = MailboxSystem::new();
        let mut reputation = ReputationLedger::new();
        let vo = form_vo(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut mailboxes,
            &mut reputation,
            &clock,
            Strategy::Standard,
        )
        .unwrap();
        // Shady Co (higher quality) was tried first but failed TN;
        // Aerospace got the role.
        assert!(vo.is_member("Aerospace"));
        assert!(!vo.is_member("Shady Co"));
        assert!(reputation.get("Shady Co") < 0.5);
        assert!(reputation.get("Aerospace") > 0.5);
        assert_eq!(vo.lifecycle.phase(), Phase::Operation);
        // The membership token carries the VO public key and the role.
        let record = vo.member_for_role("DesignPortal").unwrap();
        assert_eq!(record.certificate.attr("role"), Some("DesignPortal"));
        assert_eq!(
            record.certificate.attr("voPublicKey"),
            Some(hex::encode(&vo.vo_keys.public.0.to_be_bytes()).as_str())
        );
        assert!(record.certificate.verify_signature().is_ok());
    }

    #[test]
    fn join_without_tn_is_cheaper_than_with() {
        let (contract, initiator, providers, _registry) = world();
        let candidate = providers.get("Aerospace").unwrap();

        let c1 = clock();
        let mut vo1 = create_vo(contract.clone(), &initiator, &c1);
        let mut mail = MailboxSystem::new();
        let mut rep = ReputationLedger::new();
        join_member(&mut vo1, &initiator, candidate, "DesignPortal", &mut mail, &mut rep, &c1, None)
            .unwrap();
        let without = c1.elapsed();

        let c2 = clock();
        let mut vo2 = create_vo(contract, &initiator, &c2);
        join_member(
            &mut vo2,
            &initiator,
            candidate,
            "DesignPortal",
            &mut mail,
            &mut rep,
            &c2,
            Some(Strategy::Standard),
        )
        .unwrap();
        let with = c2.elapsed();
        assert!(with > without, "with TN {with} must exceed without {without}");
        // The Fig. 9 shape: TN adds a modest fraction, not a multiple.
        let ratio = with.as_secs_f64() / without.as_secs_f64();
        assert!(ratio > 1.05 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn declining_candidate_is_skipped() {
        let (contract, initiator, mut providers, registry) = world();
        providers.insert(
            "Aerospace".to_owned(),
            ServiceProvider::new(providers.get("Aerospace").unwrap().party.clone()).declining(),
        );
        let clock = clock();
        let err = form_vo(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &clock,
            Strategy::Standard,
        )
        .unwrap_err();
        assert!(matches!(err, VoError::RoleUnfilled { .. }));
    }

    #[test]
    fn empty_registry_reports_no_candidates() {
        let (contract, initiator, providers, _) = world();
        let err = form_vo(
            contract,
            &initiator,
            &providers,
            &ServiceRegistry::new(),
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &clock(),
            Strategy::Standard,
        )
        .unwrap_err();
        assert!(matches!(err, VoError::NoCandidates { .. }));
    }

    #[test]
    fn unknown_role_rejected() {
        let (contract, initiator, providers, _) = world();
        let clock = clock();
        let mut vo = create_vo(contract, &initiator, &clock);
        let err = join_member(
            &mut vo,
            &initiator,
            providers.get("Aerospace").unwrap(),
            "Ghost",
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &clock,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, VoError::UnknownRole(_)));
    }

    #[test]
    fn serials_are_unique() {
        let (contract, initiator, providers, _) = world();
        let clock = clock();
        let mut vo = create_vo(contract, &initiator, &clock);
        let mut mail = MailboxSystem::new();
        let mut rep = ReputationLedger::new();
        let a = join_member(&mut vo, &initiator, providers.get("Aerospace").unwrap(), "DesignPortal", &mut mail, &mut rep, &clock, None).unwrap();
        let b = join_member(&mut vo, &initiator, providers.get("Shady Co").unwrap(), "DesignPortal", &mut mail, &mut rep, &clock, None).unwrap();
        assert_ne!(a.certificate.serial, b.certificate.serial);
    }
}
