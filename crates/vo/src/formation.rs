//! The Formation phase with integrated trust negotiation (paper §5.1).
//!
//! "The VO Initiator engages a TN with the potential members accepting its
//! invitation. … unlike the conventional joining phase of a VO, acceptance
//! in TN is mutual … If the VO Initiator decides to assign the VO
//! potential member to the role, it sends it a VO membership certificate
//! that the member can use to identify itself during the operational
//! phase. If a negotiation is not successful, the VO Initiator removes the
//! invited VO partner from the potential partners list and looks for other
//! potential members."
//!
//! [`join_member`] reproduces the §6.3.1 measured *join process* for one
//! member (with or without TN — the two Fig. 9 bars); [`form_vo`] runs the
//! whole Formation phase over every contract role, and
//! [`form_vo_parallel`] runs the same phase with the per-candidate trust
//! negotiations fanned out over a scoped thread pool.
//!
//! # Parallel admission
//!
//! The serial admission loop is inherently ordered: candidate ranking
//! depends on the reputation ledger, which earlier joins mutate. The
//! parallel engine therefore splits formation into two steps:
//!
//! 1. **Speculate** — every (role, accepting-candidate) trust negotiation
//!    is independent of reputation and of the other negotiations, so all
//!    of them run concurrently on a scoped thread pool, through the shared
//!    [`ConcurrentSequenceCache`], at the formation-start timestamp.
//! 2. **Replay** — the exact serial decision procedure (ranking, attempt
//!    order, reputation updates, sim-clock charges, serial allocation)
//!    runs with negotiation results looked up from the speculation table
//!    instead of recomputed.
//!
//! Replay consults only the attempts the serial algorithm would make, so
//! the resulting [`FormedVo`] — members, roles, certificate serials — is
//! identical to the serial one; negotiations speculated past the first
//! success per role are the (bounded) price of the parallel fan-out.

use crate::admitted::AdmissionHooks;
use crate::contract::Contract;
use crate::error::VoError;
use crate::lifecycle::{Phase, VoLifecycle};
use crate::mailbox::{Invitation, MailboxSystem};
use crate::member::{MemberRecord, ServiceProvider};
use crate::registry::ServiceRegistry;
use crate::reputation::ReputationLedger;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use trust_vo_credential::x509::AttributeCertificate;
use trust_vo_credential::{TimeRange, Timestamp};
use trust_vo_crypto::{hex, verify_batch, KeyPair, PublicKey, Signature};
use trust_vo_negotiation::{
    negotiate, ConcurrentSequenceCache, NegotiationConfig, NegotiationError, NegotiationOutcome,
    Party, Strategy, Transcript,
};
use trust_vo_obs::{ObsContext, SpanLink};
use trust_vo_soa::simclock::{CostKind, SimClock};

/// A formed VO: the output of the Formation phase.
#[derive(Debug, Clone)]
pub struct FormedVo {
    /// The VO name (from the contract).
    pub name: String,
    /// The contract in force.
    pub contract: Contract,
    /// The initiating organization.
    pub initiator: String,
    /// The VO key pair; the public half is embedded in membership tokens
    /// "to be used for authentication in the VO" (§5.1).
    pub vo_keys: KeyPair,
    /// Current members.
    pub members: Vec<MemberRecord>,
    /// Lifecycle tracker.
    pub lifecycle: VoLifecycle,
    pub(crate) next_serial: u64,
}

impl FormedVo {
    /// The member playing `role`, if assigned.
    pub fn member_for_role(&self, role: &str) -> Option<&MemberRecord> {
        self.members.iter().find(|m| m.role == role)
    }

    /// Is the named provider a member?
    pub fn is_member(&self, provider: &str) -> bool {
        self.members.iter().any(|m| m.provider == provider)
    }

    /// The members.
    pub fn members(&self) -> &[MemberRecord] {
        &self.members
    }

    /// Allocate the next membership-certificate serial.
    pub fn next_serial(&mut self) -> u64 {
        self.next_serial += 1;
        self.next_serial
    }
}

/// Batch-audit every member's membership-certificate signature in a
/// single Schnorr batch verification (one shared multi-exponentiation
/// instead of one pair of exponentiations per member).
///
/// Every formation path — serial, cached, parallel, and the
/// transport-driven resilient loop — runs this before handing the VO to
/// the Operation phase. A failing batch is re-checked individually so the
/// error names the offending member.
pub fn audit_members(vo: &FormedVo) -> Result<(), VoError> {
    let tbs: Vec<Vec<u8>> = vo.members.iter().map(|m| m.certificate.tbs()).collect();
    let items: Vec<(PublicKey, &[u8], Signature)> = vo
        .members
        .iter()
        .zip(&tbs)
        .map(|(m, bytes)| {
            (
                m.certificate.issuer_key,
                bytes.as_slice(),
                m.certificate.signature,
            )
        })
        .collect();
    if verify_batch(&items) {
        return Ok(());
    }
    for member in &vo.members {
        member
            .certificate
            .verify_signature()
            .map_err(|e| VoError::InvalidMembership {
                member: member.provider.clone(),
                detail: e.to_string(),
            })?;
    }
    // Unreachable in practice (the batch rejects iff some individual
    // check rejects), but fail closed rather than trust the batch alone.
    Err(VoError::InvalidMembership {
        member: vo.name.clone(),
        detail: "batch membership audit failed".into(),
    })
}

/// Charge the sim-clock for the work a negotiation transcript records.
pub fn charge_negotiation(clock: &SimClock, transcript: &Transcript) {
    clock.charge_n(CostKind::SoapRoundTrip, transcript.policy_rounds as u64);
    clock.charge_n(CostKind::DbQuery, transcript.policies_disclosed as u64);
    clock.charge_n(
        CostKind::PolicyEvaluation,
        transcript.policies_disclosed as u64,
    );
    // Each credential: one SOAP hop, one DB fetch, one verification.
    clock.charge_n(
        CostKind::SoapRoundTrip,
        transcript.credentials_disclosed as u64,
    );
    clock.charge_n(CostKind::DbQuery, transcript.credentials_disclosed as u64);
    clock.charge_n(CostKind::SignatureVerify, transcript.verifications as u64);
    clock.charge_n(CostKind::SignatureSign, transcript.ownership_proofs as u64);
    clock.charge_n(
        CostKind::SignatureVerify,
        transcript.ownership_proofs as u64,
    );
}

/// The initiator's negotiation identity for one role: its own party data
/// with the contract's Identification-phase policies for that role merged
/// in ("policies are created for the specific VO and in particular for the
/// roles", §5.1).
pub(crate) fn initiator_party_for_role(
    initiator: &ServiceProvider,
    contract: &Contract,
    role: &str,
) -> Party {
    let mut party = initiator.party.clone();
    if let Some(set) = contract.policies_for(role) {
        for policy in set.iter() {
            party.policies.add(policy.clone());
        }
    }
    party
}

/// Issue the VO membership certificate for a successful candidate.
fn issue_membership(
    vo: &mut FormedVo,
    initiator_keys: &KeyPair,
    clock: &SimClock,
    candidate: &Party,
    role: &str,
) -> AttributeCertificate {
    clock.charge(CostKind::CertificateIssue);
    clock.charge(CostKind::SignatureSign);
    let serial = vo.next_serial();
    AttributeCertificate::issue(
        serial,
        candidate.name.clone(),
        candidate.keys.public,
        vo.initiator.clone(),
        initiator_keys,
        TimeRange::one_year_from(clock.timestamp()),
        vec![
            ("vo".into(), vo.name.clone()),
            ("role".into(), role.to_owned()),
            (
                "voPublicKey".into(),
                hex::encode(&vo.vo_keys.public.0.to_be_bytes()),
            ),
        ],
    )
}

/// How a join attempt resolves its trust negotiation.
pub(crate) enum TnAction<'a> {
    /// No TN (the paper's plain join bar).
    Skip,
    /// Negotiate now, at a fixed virtual instant, optionally through a
    /// shared sequence cache.
    Negotiate {
        strategy: Strategy,
        at: Timestamp,
        cache: Option<&'a ConcurrentSequenceCache>,
    },
    /// Apply a speculatively precomputed outcome (parallel replay).
    /// `None` means the speculation pass skipped this pair; reaching it is
    /// a bug because speculation covers every accepting candidate.
    Precomputed(Option<Result<NegotiationOutcome, NegotiationError>>),
    /// A verdict already reached — and charged to the sim clock — by the
    /// TN web service (the resilient, transport-driven formation path).
    External(Result<(), NegotiationError>),
}

/// The §6.3.1 join process for one member, with or without TN.
///
/// The GUI steps mirror §6.1's flow: invitation screen → member mailbox →
/// accept → "Role overview" screen → "Assign Member" → confirmation.
/// Passing `Some(strategy)` interleaves the mutual trust negotiation
/// (Fig. 4) between acceptance and role assignment.
#[allow(clippy::too_many_arguments)]
pub fn join_member(
    vo: &mut FormedVo,
    initiator: &ServiceProvider,
    candidate: &ServiceProvider,
    role: &str,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    clock: &SimClock,
    with_tn: Option<Strategy>,
) -> Result<MemberRecord, VoError> {
    let action = match with_tn {
        Some(strategy) => TnAction::Negotiate {
            strategy,
            at: clock.timestamp(),
            cache: None,
        },
        None => TnAction::Skip,
    };
    join_attempt(
        vo,
        initiator,
        candidate,
        role,
        mailboxes,
        reputation,
        clock,
        action,
        SpanLink::default(),
        None,
    )
}

/// One join attempt: invitation flow, optional TN (live or precomputed),
/// role assignment, membership certificate. `link` is the enclosing
/// formation span's trace position, if any — the attempt's own span (and
/// the negotiation spans under it) hang off it and inherit its trace id.
/// When `admission` hooks are present, the attempt's outcome (success,
/// failed TN, declined invitation) is also recorded into the admission
/// scoring engine alongside the paper's reputation ledger.
#[allow(clippy::too_many_arguments)]
pub(crate) fn join_attempt(
    vo: &mut FormedVo,
    initiator: &ServiceProvider,
    candidate: &ServiceProvider,
    role: &str,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    clock: &SimClock,
    tn: TnAction<'_>,
    link: SpanLink,
    admission: Option<&AdmissionHooks<'_>>,
) -> Result<MemberRecord, VoError> {
    let obs = clock.collector();
    let mut span = obs.span_linked("formation.join_attempt", link);
    if span.id().is_some() {
        span.field("role", role);
        span.field("provider", candidate.name());
        obs.counter_add("formation.attempts", 1);
    }
    let role_def = match vo.contract.role(role) {
        Some(def) => def.clone(),
        None => {
            span.field("result", "unknown-role");
            return Err(VoError::UnknownRole(role.to_owned()));
        }
    };

    // Invitation screen + delivery into the member's mailbox.
    clock.charge(CostKind::GuiStep);
    clock.charge(CostKind::SoapRoundTrip);
    mailboxes.deliver(
        candidate.name(),
        Invitation {
            vo_name: vo.name.clone(),
            role: role.to_owned(),
            from: initiator.name().to_owned(),
            text: format!("Join '{}': {}", vo.name, role_def.requirements),
        },
    );
    // Member reads the mailbox and decides.
    clock.charge(CostKind::GuiStep);
    let _invitation = mailboxes.take(candidate.name());
    if !candidate.accepts_invitations {
        // The counterpart walked away before negotiating: admission
        // scoring treats that as an abandonment.
        if let Some(hooks) = admission {
            hooks.record_abandonment(candidate.name(), clock);
        }
        span.field("result", "declined");
        return Err(VoError::RoleUnfilled {
            role: role.to_owned(),
            tried: vec![candidate.name().to_owned()],
        });
    }
    clock.charge(CostKind::GuiStep); // accept click + reply
    clock.charge(CostKind::SoapRoundTrip);

    // The interleaved trust negotiation (Fig. 3, arrow 0 / Fig. 4). The
    // inner `Option<NegotiationOutcome>` is `None` when the verdict was
    // reached (and charged) elsewhere — the TN-web-service-driven path.
    let outcome: Option<Result<Option<NegotiationOutcome>, NegotiationError>> = match tn {
        TnAction::Skip => None,
        TnAction::Negotiate {
            strategy,
            at,
            cache,
        } => {
            let initiator_party = initiator_party_for_role(initiator, &vo.contract, role);
            let cfg = NegotiationConfig::new(strategy, at)
                .with_obs(ObsContext::new(obs.clone()).at_link(span.link()));
            let result = match cache {
                Some(shared) => {
                    shared.negotiate(&candidate.party, &initiator_party, "VoMembership", &cfg)
                }
                None => negotiate(&candidate.party, &initiator_party, "VoMembership", &cfg),
            };
            Some(result.map(Some))
        }
        TnAction::Precomputed(outcome) => {
            obs.counter_add("formation.replayed", 1);
            Some(
                outcome
                    .expect("speculation covered every accepting candidate")
                    .map(Some),
            )
        }
        TnAction::External(verdict) => Some(verdict.map(|()| None)),
    };
    if let Some(result) = outcome {
        match result {
            Ok(outcome) => {
                if let Some(outcome) = outcome {
                    charge_negotiation(clock, &outcome.transcript);
                }
                reputation.record_success(candidate.name());
                if let Some(hooks) = admission {
                    hooks.record_success(candidate.name(), clock);
                }
            }
            Err(e) => {
                // "the failed TN may affect the parties' reputation" (§5.1).
                reputation.record_failed_negotiation(candidate.name());
                if let Some(hooks) = admission {
                    hooks.record_failed_negotiation(candidate.name(), clock);
                }
                span.field("result", "tn-failed");
                return Err(VoError::Negotiation(e));
            }
        }
    }

    // Role overview + Assign Member + registration write.
    clock.charge(CostKind::GuiStep);
    clock.charge(CostKind::GuiStep);
    clock.charge_n(CostKind::DbQuery, 2);
    let certificate = issue_membership(vo, &initiator.party.keys, clock, &candidate.party, role);
    // Confirmation screen.
    clock.charge(CostKind::GuiStep);
    clock.charge(CostKind::DbQuery);

    let record = MemberRecord {
        provider: candidate.name().to_owned(),
        role: role.to_owned(),
        certificate,
    };
    vo.members.push(record.clone());
    span.field("result", "admitted");
    obs.counter_add("formation.admissions", 1);
    Ok(record)
}

/// Create the VO shell after the Identification phase: lifecycle advanced
/// to Formation, VO keys generated, no members yet.
pub fn create_vo(contract: Contract, initiator: &ServiceProvider, clock: &SimClock) -> FormedVo {
    let mut lifecycle = VoLifecycle::new(clock.timestamp());
    lifecycle
        .advance_to(Phase::Identification, clock.timestamp())
        .expect("fresh lifecycle advances");
    lifecycle
        .advance_to(Phase::Formation, clock.timestamp())
        .expect("identification advances to formation");
    let vo_keys = KeyPair::from_seed(format!("vo:{}", contract.vo_name).as_bytes());
    FormedVo {
        name: contract.vo_name.clone(),
        initiator: initiator.name().to_owned(),
        contract,
        vo_keys,
        members: Vec::new(),
        lifecycle,
        next_serial: 0,
    }
}

/// A speculation-table key: (role name, provider name).
type SpeculationKey = (String, String);

/// Where the per-attempt trust negotiations come from during formation.
pub(crate) enum TnSource<'a> {
    /// Negotiate live as each attempt is made, optionally through a shared
    /// sequence cache.
    Live(Option<&'a ConcurrentSequenceCache>),
    /// Look results up in a precomputed speculation table.
    Table(HashMap<SpeculationKey, Result<NegotiationOutcome, NegotiationError>>),
}

/// The serial Formation decision procedure, parameterized over where each
/// attempt's negotiation result comes from. Every negotiation — live or
/// speculated — is configured at the formation-start instant, so the same
/// contract and registry yield the same outcomes in every mode.
///
/// When `admission` hooks are present (the admission-aware drivers in
/// [`crate::admitted`]), candidates are ordered by the admission queue key
/// (trust band first, then score-weighted quality), each candidate is
/// negotiated with the strategy its formation-start trust band selects,
/// and every attempt outcome feeds the scoring engine.
#[allow(clippy::too_many_arguments)]
pub(crate) fn form_vo_impl(
    contract: Contract,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
    registry: &ServiceRegistry,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    clock: &SimClock,
    strategy: Strategy,
    mut tn: TnSource<'_>,
    admission: Option<&AdmissionHooks<'_>>,
) -> Result<FormedVo, VoError> {
    let mut vo = create_vo(contract, initiator, clock);
    let obs = clock.collector();
    // Each formation is its own trace: every span below — attempts, live
    // negotiations — carries this root's trace id.
    let mut root_span = obs.span_linked(
        "formation.form_vo",
        SpanLink {
            trace_id: obs.new_trace_id(),
            parent: None,
        },
    );
    if root_span.id().is_some() {
        root_span.field("vo", vo.name.as_str());
        root_span.field("roles", vo.contract.roles.len());
        if admission.is_some() {
            root_span.field("admission", true);
        }
    }
    let root_link = root_span.link();
    let formation_at = clock.timestamp();
    let roles: Vec<_> = vo.contract.roles.clone();
    for role in &roles {
        // Formation: "The VO Initiator queries public repositories to
        // retrieve the information published during the Preparation phase."
        clock.charge(CostKind::DbQuery);
        let mut candidates: Vec<&crate::registry::ResourceDescription> =
            registry.find_by_capability(&role.capability);
        if candidates.is_empty() {
            root_span.field("outcome", "no-candidates");
            return Err(VoError::NoCandidates {
                role: role.name.clone(),
            });
        }
        match admission {
            // Order by advertised quality weighted by reputation.
            None => candidates.sort_by(|a, b| {
                let score = |d: &crate::registry::ResourceDescription| {
                    d.quality * reputation.get(&d.provider)
                };
                score(b)
                    .partial_cmp(&score(a))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.provider.cmp(&b.provider))
            }),
            // Admission queue: trust band first, then score-weighted
            // quality, from the formation-start snapshot.
            Some(hooks) => {
                candidates.sort_by_cached_key(|d| hooks.queue_key(&d.provider, d.quality))
            }
        }
        let mut tried = Vec::new();
        let mut assigned = false;
        for description in candidates {
            let Some(candidate) = providers.get(&description.provider) else {
                continue;
            };
            tried.push(candidate.name().to_owned());
            let action = match &mut tn {
                TnSource::Live(cache) => TnAction::Negotiate {
                    strategy: admission
                        .map_or(strategy, |hooks| hooks.strategy_for(candidate.name())),
                    at: formation_at,
                    cache: *cache,
                },
                // Successes are moved out (an outcome carries the whole
                // explored negotiation tree — cloning it would cost as much
                // as replaying); they are consumed at most once because a
                // success ends the role's candidate loop. Failures are
                // re-inserted (errors are small) so a provider listed under
                // several matching registry entries sees the same
                // deterministic outcome on every attempt.
                TnSource::Table(table) => {
                    let key = (role.name.clone(), candidate.name().to_owned());
                    let entry = match table.remove(&key) {
                        Some(Err(e)) => {
                            table.insert(key, Err(e.clone()));
                            Some(Err(e))
                        }
                        other => other,
                    };
                    TnAction::Precomputed(entry)
                }
            };
            match join_attempt(
                &mut vo, initiator, candidate, &role.name, mailboxes, reputation, clock, action,
                root_link, admission,
            ) {
                Ok(_) => {
                    assigned = true;
                    break;
                }
                Err(_) => continue, // "looks for other potential members"
            }
        }
        if !assigned {
            root_span.field("outcome", "role-unfilled");
            return Err(VoError::RoleUnfilled {
                role: role.name.clone(),
                tried,
            });
        }
    }
    audit_members(&vo)?;
    obs.counter_add("formation.audits", 1);
    {
        let _lifecycle = obs.span_linked("formation.lifecycle", root_link);
        vo.lifecycle
            .advance_to(Phase::Operation, clock.timestamp())
            .expect("formation advances to operation");
    }
    root_span.field("outcome", "ok");
    root_span.field("members", vo.members.len());
    Ok(vo)
}

/// Run the whole Formation phase: for every contract role, query the
/// registry, invite candidates best-first (registry quality × reputation),
/// negotiate, and assign the first success. Ends with the lifecycle in
/// Operation.
#[allow(clippy::too_many_arguments)]
pub fn form_vo(
    contract: Contract,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
    registry: &ServiceRegistry,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    clock: &SimClock,
    strategy: Strategy,
) -> Result<FormedVo, VoError> {
    form_vo_impl(
        contract,
        initiator,
        providers,
        registry,
        mailboxes,
        reputation,
        clock,
        strategy,
        TnSource::Live(None),
        None,
    )
}

/// [`form_vo`], with every trust negotiation routed through a shared
/// [`ConcurrentSequenceCache`]. Semantically identical to the uncached
/// serial path; repeated negotiations against the same party reuse their
/// phase-1 trust sequence.
#[allow(clippy::too_many_arguments)]
pub fn form_vo_cached(
    contract: Contract,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
    registry: &ServiceRegistry,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    clock: &SimClock,
    strategy: Strategy,
    cache: &ConcurrentSequenceCache,
) -> Result<FormedVo, VoError> {
    form_vo_impl(
        contract,
        initiator,
        providers,
        registry,
        mailboxes,
        reputation,
        clock,
        strategy,
        TnSource::Live(Some(cache)),
        None,
    )
}

/// Run the Formation phase with the trust negotiations fanned out over a
/// scoped thread pool (see the module docs' *Parallel admission* section).
///
/// Speculation covers every (role, accepting-candidate) pair, runs through
/// the shared `cache`, and charges nothing to the sim-clock; the replay
/// step then re-runs the exact serial decision procedure against the
/// speculation table, so the returned [`FormedVo`] — member set, role
/// assignment, certificate serials — is identical to [`form_vo_cached`]
/// with the same inputs, as are the sim-clock charges.
///
/// `workers` bounds the pool (clamped to at least 1 and at most the number
/// of speculation jobs).
#[allow(clippy::too_many_arguments)]
pub fn form_vo_parallel(
    contract: Contract,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
    registry: &ServiceRegistry,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    clock: &SimClock,
    strategy: Strategy,
    cache: &ConcurrentSequenceCache,
    workers: usize,
) -> Result<FormedVo, VoError> {
    form_vo_parallel_impl(
        contract, initiator, providers, registry, mailboxes, reputation, clock, strategy, cache,
        workers, None,
    )
}

/// [`form_vo_parallel`] with optional admission hooks: speculation
/// negotiates each candidate with its banded strategy (from the same
/// formation-start snapshot the serial replay uses, so the two stay in
/// lock-step), and the replay feeds outcomes to the scoring engine.
#[allow(clippy::too_many_arguments)]
pub(crate) fn form_vo_parallel_impl(
    contract: Contract,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
    registry: &ServiceRegistry,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    clock: &SimClock,
    strategy: Strategy,
    cache: &ConcurrentSequenceCache,
    workers: usize,
    admission: Option<&AdmissionHooks<'_>>,
) -> Result<FormedVo, VoError> {
    let formation_at = clock.timestamp();

    // Speculate: one job per (role, accepting candidate). Declining
    // candidates never reach the negotiation step, so they need no entry.
    let mut jobs: Vec<(String, &ServiceProvider, Party)> = Vec::new();
    let mut seen: HashSet<SpeculationKey> = HashSet::new();
    for role in &contract.roles {
        for description in registry.find_by_capability(&role.capability) {
            let Some(candidate) = providers.get(&description.provider) else {
                continue;
            };
            if !candidate.accepts_invitations {
                continue;
            }
            if seen.insert((role.name.clone(), candidate.name().to_owned())) {
                jobs.push((
                    role.name.clone(),
                    candidate,
                    initiator_party_for_role(initiator, &contract, &role.name),
                ));
            }
        }
    }

    let obs = clock.collector();
    let table: Mutex<HashMap<SpeculationKey, Result<NegotiationOutcome, NegotiationError>>> =
        Mutex::new(HashMap::with_capacity(jobs.len()));
    let next = AtomicUsize::new(0);
    let workers = workers.max(1).min(jobs.len().max(1));
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((role, candidate, initiator_party)) = jobs.get(i) else {
                    break;
                };
                let mut span = obs.span("formation.speculate");
                let candidate_strategy =
                    admission.map_or(strategy, |hooks| hooks.strategy_for(candidate.name()));
                let cfg = if span.id().is_some() {
                    span.field("role", role.as_str());
                    span.field("provider", candidate.name());
                    obs.counter_add("formation.speculated", 1);
                    NegotiationConfig::new(candidate_strategy, formation_at)
                        .with_obs(ObsContext::new(obs.clone()).with_parent(span.id()))
                } else {
                    NegotiationConfig::new(candidate_strategy, formation_at)
                };
                let result =
                    cache.negotiate(&candidate.party, initiator_party, "VoMembership", &cfg);
                if span.id().is_some() {
                    span.field("ok", result.is_ok());
                }
                table
                    .lock()
                    .insert((role.clone(), candidate.name().to_owned()), result);
            });
        }
    })
    .expect("speculation workers do not panic");

    // Replay the serial decision procedure against the speculation table.
    form_vo_impl(
        contract,
        initiator,
        providers,
        registry,
        mailboxes,
        reputation,
        clock,
        strategy,
        TnSource::Table(table.into_inner()),
        admission,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::Role;
    use crate::registry::ResourceDescription;
    use trust_vo_credential::{CredentialAuthority, TimeRange, Timestamp};
    use trust_vo_policy::{DisclosurePolicy, PolicySet, Resource, Term};
    use trust_vo_soa::simclock::CostModel;

    fn clock() -> SimClock {
        SimClock::new(
            CostModel::paper_testbed(),
            Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0),
        )
    }

    /// A minimal one-role world: the initiator requires WebDesignerQuality
    /// for the DesignPortal role; two candidate providers exist, one with
    /// the credential and one without.
    fn world() -> (
        Contract,
        ServiceProvider,
        BTreeMap<String, ServiceProvider>,
        ServiceRegistry,
    ) {
        let mut ca = CredentialAuthority::new("AAA");
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));

        let mut initiator_party = Party::new("Aircraft");
        let mut good = Party::new("Aerospace");
        let quality = ca
            .issue(
                "WebDesignerQuality",
                "Aerospace",
                good.keys.public,
                vec![],
                window,
            )
            .unwrap();
        good.profile.add(quality);
        good.trust_root(ca.public_key());
        initiator_party.trust_root(ca.public_key());
        let bad = Party::new("Shady Co");

        let mut contract = Contract::new("AircraftOptimization", "low emissions")
            .with_role(Role::new("DesignPortal", "design-db", "ISO 9000"));
        let mut policies = PolicySet::new();
        policies.add(DisclosurePolicy::rule(
            "vo-p1",
            Resource::service("VoMembership"),
            vec![Term::of_type("WebDesignerQuality")],
        ));
        contract.set_role_policies("DesignPortal", policies);

        let mut registry = ServiceRegistry::new();
        registry.publish(ResourceDescription::new("Shady Co", "design-db", "x", 0.99));
        registry.publish(ResourceDescription::new("Aerospace", "design-db", "x", 0.9));

        let mut providers = BTreeMap::new();
        providers.insert("Aerospace".to_owned(), ServiceProvider::new(good));
        providers.insert("Shady Co".to_owned(), ServiceProvider::new(bad));
        (
            contract,
            ServiceProvider::new(initiator_party),
            providers,
            registry,
        )
    }

    #[test]
    fn formation_fills_role_skipping_failed_candidate() {
        let (contract, initiator, providers, registry) = world();
        let clock = clock();
        let mut mailboxes = MailboxSystem::new();
        let mut reputation = ReputationLedger::new();
        let vo = form_vo(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut mailboxes,
            &mut reputation,
            &clock,
            Strategy::Standard,
        )
        .unwrap();
        // Shady Co (higher quality) was tried first but failed TN;
        // Aerospace got the role.
        assert!(vo.is_member("Aerospace"));
        assert!(!vo.is_member("Shady Co"));
        assert!(reputation.get("Shady Co") < 0.5);
        assert!(reputation.get("Aerospace") > 0.5);
        assert_eq!(vo.lifecycle.phase(), Phase::Operation);
        // The membership token carries the VO public key and the role.
        let record = vo.member_for_role("DesignPortal").unwrap();
        assert_eq!(record.certificate.attr("role"), Some("DesignPortal"));
        assert_eq!(
            record.certificate.attr("voPublicKey"),
            Some(hex::encode(&vo.vo_keys.public.0.to_be_bytes()).as_str())
        );
        assert!(record.certificate.verify_signature().is_ok());
    }

    #[test]
    fn join_without_tn_is_cheaper_than_with() {
        let (contract, initiator, providers, _registry) = world();
        let candidate = providers.get("Aerospace").unwrap();

        let c1 = clock();
        let mut vo1 = create_vo(contract.clone(), &initiator, &c1);
        let mut mail = MailboxSystem::new();
        let mut rep = ReputationLedger::new();
        join_member(
            &mut vo1,
            &initiator,
            candidate,
            "DesignPortal",
            &mut mail,
            &mut rep,
            &c1,
            None,
        )
        .unwrap();
        let without = c1.elapsed();

        let c2 = clock();
        let mut vo2 = create_vo(contract, &initiator, &c2);
        join_member(
            &mut vo2,
            &initiator,
            candidate,
            "DesignPortal",
            &mut mail,
            &mut rep,
            &c2,
            Some(Strategy::Standard),
        )
        .unwrap();
        let with = c2.elapsed();
        assert!(
            with > without,
            "with TN {with} must exceed without {without}"
        );
        // The Fig. 9 shape: TN adds a modest fraction, not a multiple.
        let ratio = with.as_secs_f64() / without.as_secs_f64();
        assert!(ratio > 1.05 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn declining_candidate_is_skipped() {
        let (contract, initiator, mut providers, registry) = world();
        providers.insert(
            "Aerospace".to_owned(),
            ServiceProvider::new(providers.get("Aerospace").unwrap().party.clone()).declining(),
        );
        let clock = clock();
        let err = form_vo(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &clock,
            Strategy::Standard,
        )
        .unwrap_err();
        assert!(matches!(err, VoError::RoleUnfilled { .. }));
    }

    #[test]
    fn empty_registry_reports_no_candidates() {
        let (contract, initiator, providers, _) = world();
        let err = form_vo(
            contract,
            &initiator,
            &providers,
            &ServiceRegistry::new(),
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &clock(),
            Strategy::Standard,
        )
        .unwrap_err();
        assert!(matches!(err, VoError::NoCandidates { .. }));
    }

    #[test]
    fn unknown_role_rejected() {
        let (contract, initiator, providers, _) = world();
        let clock = clock();
        let mut vo = create_vo(contract, &initiator, &clock);
        let err = join_member(
            &mut vo,
            &initiator,
            providers.get("Aerospace").unwrap(),
            "Ghost",
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &clock,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, VoError::UnknownRole(_)));
    }

    #[test]
    fn parallel_formation_matches_serial() {
        let (contract, initiator, providers, registry) = world();

        let serial_clock = clock();
        let mut serial_rep = ReputationLedger::new();
        let serial = form_vo(
            contract.clone(),
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut serial_rep,
            &serial_clock,
            Strategy::Standard,
        )
        .unwrap();

        let parallel_clock = clock();
        let mut parallel_rep = ReputationLedger::new();
        let cache = ConcurrentSequenceCache::new();
        let parallel = form_vo_parallel(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut parallel_rep,
            &parallel_clock,
            Strategy::Standard,
            &cache,
            4,
        )
        .unwrap();

        let summary = |vo: &FormedVo| {
            vo.members()
                .iter()
                .map(|m| (m.provider.clone(), m.role.clone(), m.certificate.serial))
                .collect::<Vec<_>>()
        };
        assert_eq!(summary(&serial), summary(&parallel));
        assert_eq!(serial_clock.elapsed(), parallel_clock.elapsed());
        assert_eq!(serial_rep.get("Aerospace"), parallel_rep.get("Aerospace"));
        assert_eq!(serial_rep.get("Shady Co"), parallel_rep.get("Shady Co"));
        // Speculation ran both candidates through the shared cache.
        let stats = cache.stats();
        assert!(
            stats.misses >= 1,
            "speculation populates the cache: {stats:?}"
        );
    }

    #[test]
    fn parallel_formation_with_declining_candidate_matches_serial_error() {
        let (contract, initiator, mut providers, registry) = world();
        providers.insert(
            "Aerospace".to_owned(),
            ServiceProvider::new(providers.get("Aerospace").unwrap().party.clone()).declining(),
        );
        let cache = ConcurrentSequenceCache::new();
        let err = form_vo_parallel(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &clock(),
            Strategy::Standard,
            &cache,
            4,
        )
        .unwrap_err();
        assert!(matches!(err, VoError::RoleUnfilled { .. }));
    }

    #[test]
    fn cached_formation_matches_uncached() {
        let (contract, initiator, providers, registry) = world();
        let uncached_clock = clock();
        let uncached = form_vo(
            contract.clone(),
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &uncached_clock,
            Strategy::Standard,
        )
        .unwrap();

        let cached_clock = clock();
        let cache = ConcurrentSequenceCache::new();
        let cached = form_vo_cached(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &cached_clock,
            Strategy::Standard,
            &cache,
        )
        .unwrap();
        let summary = |vo: &FormedVo| {
            vo.members()
                .iter()
                .map(|m| (m.provider.clone(), m.role.clone(), m.certificate.serial))
                .collect::<Vec<_>>()
        };
        assert_eq!(summary(&uncached), summary(&cached));
        assert_eq!(uncached_clock.elapsed(), cached_clock.elapsed());
    }

    #[test]
    fn serials_are_unique() {
        let (contract, initiator, providers, _) = world();
        let clock = clock();
        let mut vo = create_vo(contract, &initiator, &clock);
        let mut mail = MailboxSystem::new();
        let mut rep = ReputationLedger::new();
        let a = join_member(
            &mut vo,
            &initiator,
            providers.get("Aerospace").unwrap(),
            "DesignPortal",
            &mut mail,
            &mut rep,
            &clock,
            None,
        )
        .unwrap();
        let b = join_member(
            &mut vo,
            &initiator,
            providers.get("Shady Co").unwrap(),
            "DesignPortal",
            &mut mail,
            &mut rep,
            &clock,
            None,
        )
        .unwrap();
        assert_ne!(a.certificate.serial, b.certificate.serial);
    }
}
