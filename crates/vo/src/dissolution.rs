//! The Dissolution phase.
//!
//! "This phase takes place when the objectives of the VO have been
//! fulfilled. The VO structure is dissolved and final operations are
//! performed to nullify all contractual binding of the VO's members." (§2)

use crate::error::VoError;
use crate::formation::FormedVo;
use crate::lifecycle::Phase;
use trust_vo_credential::RevocationList;
use trust_vo_soa::simclock::{CostKind, SimClock};

/// The record of a completed dissolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DissolutionReport {
    /// The dissolved VO.
    pub vo_name: String,
    /// Members whose bindings were nullified.
    pub members_released: Vec<String>,
    /// Membership certificates revoked.
    pub certificates_revoked: usize,
}

/// Dissolve a VO: revoke every membership certificate (nullifying the
/// contractual bindings), clear the member list, and advance the
/// lifecycle to its terminal phase.
pub fn dissolve(
    vo: &mut FormedVo,
    crl: &mut RevocationList,
    clock: &SimClock,
) -> Result<DissolutionReport, VoError> {
    vo.lifecycle.require(Phase::Operation)?;
    let mut released = Vec::with_capacity(vo.members.len());
    for member in vo.members.drain(..) {
        crl.revoke(member.certificate.revocation_id(), clock.timestamp());
        clock.charge(CostKind::DbQuery);
        released.push(member.provider);
    }
    vo.lifecycle
        .advance_to(Phase::Dissolution, clock.timestamp())
        .expect("operation advances to dissolution");
    Ok(DissolutionReport {
        vo_name: vo.name.clone(),
        certificates_revoked: released.len(),
        members_released: released,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{Contract, Role};
    use crate::formation::{create_vo, form_vo};
    use crate::mailbox::MailboxSystem;
    use crate::member::ServiceProvider;
    use crate::registry::{ResourceDescription, ServiceRegistry};
    use crate::reputation::ReputationLedger;
    use std::collections::BTreeMap;
    use trust_vo_credential::{CredentialAuthority, TimeRange, Timestamp};
    use trust_vo_negotiation::{Party, Strategy};
    use trust_vo_policy::{DisclosurePolicy, PolicySet, Resource, Term};
    use trust_vo_soa::simclock::CostModel;

    fn formed() -> (FormedVo, RevocationList, SimClock) {
        let clock = SimClock::new(
            CostModel::paper_testbed(),
            Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0),
        );
        let mut ca = CredentialAuthority::new("CA");
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
        let mut initiator_party = Party::new("Aircraft");
        initiator_party.trust_root(ca.public_key());
        let mut member_party = Party::new("StoreCo");
        let sla = ca
            .issue(
                "StorageSla",
                "StoreCo",
                member_party.keys.public,
                vec![],
                window,
            )
            .unwrap();
        member_party.profile.add(sla);
        member_party.trust_root(ca.public_key());

        let mut contract =
            Contract::new("VO", "goal").with_role(Role::new("Storage", "storage", "SLA"));
        let mut policies = PolicySet::new();
        policies.add(DisclosurePolicy::rule(
            "p",
            Resource::service("VoMembership"),
            vec![Term::of_type("StorageSla")],
        ));
        contract.set_role_policies("Storage", policies);
        let mut registry = ServiceRegistry::new();
        registry.publish(ResourceDescription::new("StoreCo", "storage", "x", 0.9));
        let mut providers = BTreeMap::new();
        providers.insert("StoreCo".to_owned(), ServiceProvider::new(member_party));
        let initiator = ServiceProvider::new(initiator_party);
        let vo = form_vo(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &clock,
            Strategy::Standard,
        )
        .unwrap();
        (vo, RevocationList::new(), clock)
    }

    #[test]
    fn dissolve_revokes_and_terminates() {
        let (mut vo, mut crl, clock) = formed();
        let cert_id = vo.members()[0].certificate.revocation_id();
        let report = dissolve(&mut vo, &mut crl, &clock).unwrap();
        assert_eq!(report.vo_name, "VO");
        assert_eq!(report.members_released, ["StoreCo"]);
        assert_eq!(report.certificates_revoked, 1);
        assert!(crl.is_revoked(&cert_id));
        assert!(vo.members().is_empty());
        assert_eq!(vo.lifecycle.phase(), Phase::Dissolution);
    }

    #[test]
    fn dissolve_requires_operation_phase() {
        let (vo, mut crl, clock) = formed();
        let mut fresh = create_vo(
            vo.contract.clone(),
            &ServiceProvider::new(Party::new("Aircraft")),
            &clock,
        );
        let err = dissolve(&mut fresh, &mut crl, &clock).unwrap_err();
        assert!(matches!(err, VoError::WrongPhase { .. }));
    }

    #[test]
    fn dissolving_twice_fails() {
        let (mut vo, mut crl, clock) = formed();
        dissolve(&mut vo, &mut crl, &clock).unwrap();
        assert!(dissolve(&mut vo, &mut crl, &clock).is_err());
    }
}
