//! Invitations and mailboxes.
//!
//! "Invitations appear in the Mailbox of the new potential members. The
//! message contains the text entered in the invitation screen. When all
//! the members have accepted the invitation, the 'Role overview' screen
//! shows the possible members that can be assigned to each role." (§6.1)

use std::collections::BTreeMap;

/// An invitation to join a VO in a given role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invitation {
    /// The VO being formed.
    pub vo_name: String,
    /// The role offered.
    pub role: String,
    /// The inviting VO Initiator.
    pub from: String,
    /// The invitation text ("the text entered in the invitation screen").
    pub text: String,
}

/// A member's reply to an invitation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reply {
    /// The provider accepts and is willing to negotiate.
    Accept,
    /// The provider declines.
    Decline,
}

/// The mailbox system: per-provider invitation queues.
#[derive(Debug, Clone, Default)]
pub struct MailboxSystem {
    boxes: BTreeMap<String, Vec<Invitation>>,
}

impl MailboxSystem {
    /// An empty mailbox system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deliver an invitation to a provider's mailbox.
    pub fn deliver(&mut self, to: &str, invitation: Invitation) {
        self.boxes
            .entry(to.to_owned())
            .or_default()
            .push(invitation);
    }

    /// Read (without consuming) a provider's invitations.
    pub fn read(&self, provider: &str) -> &[Invitation] {
        self.boxes.get(provider).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Pop the oldest invitation from a provider's mailbox.
    pub fn take(&mut self, provider: &str) -> Option<Invitation> {
        let inbox = self.boxes.get_mut(provider)?;
        if inbox.is_empty() {
            None
        } else {
            Some(inbox.remove(0))
        }
    }

    /// Total pending invitations across all mailboxes.
    pub fn pending(&self) -> usize {
        self.boxes.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invitation(role: &str) -> Invitation {
        Invitation {
            vo_name: "AircraftOptimization".into(),
            role: role.into(),
            from: "Aircraft Company".into(),
            text: "Join our low-emission aircraft project".into(),
        }
    }

    #[test]
    fn deliver_and_read() {
        let mut mail = MailboxSystem::new();
        mail.deliver("Aerospace", invitation("DesignPortal"));
        mail.deliver("Aerospace", invitation("Backup"));
        assert_eq!(mail.read("Aerospace").len(), 2);
        assert_eq!(mail.read("Nobody").len(), 0);
        assert_eq!(mail.pending(), 2);
    }

    #[test]
    fn take_is_fifo() {
        let mut mail = MailboxSystem::new();
        mail.deliver("Aerospace", invitation("First"));
        mail.deliver("Aerospace", invitation("Second"));
        assert_eq!(mail.take("Aerospace").unwrap().role, "First");
        assert_eq!(mail.take("Aerospace").unwrap().role, "Second");
        assert!(mail.take("Aerospace").is_none());
        assert!(mail.take("Nobody").is_none());
    }
}
