//! Error type for VO management operations.

use crate::lifecycle::Phase;
use trust_vo_negotiation::NegotiationError;
use trust_vo_soa::Fault;

/// Errors raised by the VO Management toolkit.
#[derive(Debug, Clone, PartialEq)]
pub enum VoError {
    /// The operation is not valid in the current lifecycle phase.
    WrongPhase {
        /// The phase the operation requires.
        expected: Phase,
        /// The phase the VO is actually in.
        actual: Phase,
    },
    /// An invalid lifecycle transition was attempted.
    BadTransition {
        /// Current phase.
        from: Phase,
        /// Requested phase.
        to: Phase,
    },
    /// A referenced role does not exist in the contract.
    UnknownRole(String),
    /// A referenced member is not part of the VO.
    UnknownMember(String),
    /// No registered provider can cover the role.
    NoCandidates {
        /// The uncovered role.
        role: String,
    },
    /// Every candidate for the role failed its trust negotiation (or
    /// declined the invitation).
    RoleUnfilled {
        /// The uncovered role.
        role: String,
        /// Candidates that were tried.
        tried: Vec<String>,
    },
    /// A trust negotiation failed.
    Negotiation(NegotiationError),
    /// The transport to the TN web service failed even after the retry
    /// and resume budgets were exhausted.
    Transport(Fault),
    /// The member's membership certificate failed verification during the
    /// operation phase.
    InvalidMembership {
        /// The member whose certificate failed.
        member: String,
        /// Why.
        detail: String,
    },
}

impl std::fmt::Display for VoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WrongPhase { expected, actual } => {
                write!(
                    f,
                    "operation requires phase {expected}, but the VO is in {actual}"
                )
            }
            Self::BadTransition { from, to } => {
                write!(f, "invalid lifecycle transition {from} -> {to}")
            }
            Self::UnknownRole(role) => write!(f, "role '{role}' is not in the contract"),
            Self::UnknownMember(member) => write!(f, "'{member}' is not a VO member"),
            Self::NoCandidates { role } => {
                write!(
                    f,
                    "no registered provider offers the capability for role '{role}'"
                )
            }
            Self::RoleUnfilled { role, tried } => {
                write!(
                    f,
                    "role '{role}' could not be filled (tried: {})",
                    tried.join(", ")
                )
            }
            Self::Negotiation(e) => write!(f, "trust negotiation failed: {e}"),
            Self::Transport(fault) => {
                write!(
                    f,
                    "TN service unreachable: [{}] {}",
                    fault.code, fault.reason
                )
            }
            Self::InvalidMembership { member, detail } => {
                write!(f, "membership certificate of '{member}' invalid: {detail}")
            }
        }
    }
}

impl std::error::Error for VoError {}

impl From<NegotiationError> for VoError {
    fn from(e: NegotiationError) -> Self {
        VoError::Negotiation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let cases: Vec<(VoError, &str)> = vec![
            (
                VoError::WrongPhase {
                    expected: Phase::Operation,
                    actual: Phase::Formation,
                },
                "requires phase operation",
            ),
            (
                VoError::BadTransition {
                    from: Phase::Preparation,
                    to: Phase::Operation,
                },
                "invalid lifecycle transition",
            ),
            (VoError::UnknownRole("HPC".into()), "role 'HPC'"),
            (VoError::UnknownMember("X".into()), "not a VO member"),
            (
                VoError::NoCandidates {
                    role: "Storage".into(),
                },
                "no registered provider",
            ),
            (
                VoError::RoleUnfilled {
                    role: "HPC".into(),
                    tried: vec!["A".into(), "B".into()],
                },
                "tried: A, B",
            ),
            (
                VoError::InvalidMembership {
                    member: "X".into(),
                    detail: "expired".into(),
                },
                "expired",
            ),
            (
                VoError::Transport(Fault::transport("Timeout", "request lost")),
                "TN service unreachable",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn negotiation_error_converts() {
        let err: VoError = NegotiationError::NoTrustSequence {
            resource: "VoMembership".into(),
        }
        .into();
        assert!(err.to_string().contains("VoMembership"));
    }
}
