//! The VO Management toolkit facade (paper §6.1).
//!
//! "The toolkit is deployed as three distinct components": the **Host
//! Edition** (member registration, VO monitoring, the list of services
//! available for participation), the **Initiator Edition** (VO creation
//! and management), and the **Member Edition** (participation: register at
//! a Host, configure properties, send/receive e-mails). [`VoToolkit`]
//! holds the shared state; the edition structs expose each component's
//! operations over it.

use crate::admitted::{form_vo_admitted, AdmissionControl};
use crate::contract::Contract;
use crate::error::VoError;
use crate::formation::{form_vo, FormedVo};
use crate::mailbox::MailboxSystem;
use crate::member::ServiceProvider;
use crate::registry::{ResourceDescription, ServiceRegistry};
use crate::reputation::ReputationLedger;
use std::collections::BTreeMap;
use trust_vo_negotiation::Strategy;
use trust_vo_soa::simclock::{CostKind, SimClock};

/// Shared toolkit state.
#[derive(Debug)]
pub struct VoToolkit {
    /// The simulated clock every operation charges.
    pub clock: SimClock,
    /// The Preparation-phase public repository.
    pub registry: ServiceRegistry,
    /// The invitation mailboxes.
    pub mailboxes: MailboxSystem,
    /// The reputation ledger.
    pub reputation: ReputationLedger,
    /// Registered providers, by name.
    pub providers: BTreeMap<String, ServiceProvider>,
    /// VOs formed through this toolkit.
    pub active_vos: Vec<String>,
}

impl VoToolkit {
    /// A fresh toolkit on the given clock.
    pub fn new(clock: SimClock) -> Self {
        VoToolkit {
            clock,
            registry: ServiceRegistry::new(),
            mailboxes: MailboxSystem::new(),
            reputation: ReputationLedger::new(),
            providers: BTreeMap::new(),
            active_vos: Vec::new(),
        }
    }

    // ---- Host Edition ----

    /// Host Edition: register a member and publish its resources. "The
    /// Host Edition provides services such as member registration and VO
    /// monitoring."
    pub fn host_register(
        &mut self,
        provider: ServiceProvider,
        descriptions: Vec<ResourceDescription>,
    ) {
        self.clock.charge(CostKind::SoapRoundTrip);
        self.clock.charge(CostKind::DbQuery);
        for d in descriptions {
            self.registry.publish(d);
            self.clock.charge(CostKind::DbQuery);
        }
        self.providers.insert(provider.name().to_owned(), provider);
    }

    /// Host Edition: "the list of services that are available for
    /// participating in a VO".
    pub fn host_available_services(&self) -> Vec<&ResourceDescription> {
        self.providers
            .keys()
            .flat_map(|name| self.registry.by_provider(name))
            .collect()
    }

    /// Host Edition: the active VO list.
    pub fn host_active_vos(&self) -> &[String] {
        &self.active_vos
    }

    // ---- Initiator Edition ----

    /// Initiator Edition: create and form a VO from a contract. Runs the
    /// Identification and Formation phases (with trust negotiation) and
    /// registers the VO as active.
    pub fn initiator_form_vo(
        &mut self,
        contract: Contract,
        initiator_name: &str,
        strategy: Strategy,
    ) -> Result<FormedVo, VoError> {
        let initiator = self
            .providers
            .get(initiator_name)
            .ok_or_else(|| VoError::UnknownMember(initiator_name.to_owned()))?
            .clone();
        // Authoring the contract + policies on the Initiator GUI.
        self.clock.charge(CostKind::GuiStep);
        let vo = form_vo(
            contract,
            &initiator,
            &self.providers,
            &self.registry,
            &mut self.mailboxes,
            &mut self.reputation,
            &self.clock,
            strategy,
        )?;
        self.active_vos.push(vo.name.clone());
        Ok(vo)
    }

    /// Initiator Edition: [`VoToolkit::initiator_form_vo`] under
    /// reputation-gated admission control. The engine is seeded from the
    /// toolkit's own [`ReputationLedger`] first, so admission banding
    /// starts from the reputation the paper's write-side has accumulated —
    /// the ledger keeps working exactly as before underneath.
    pub fn initiator_form_vo_admitted(
        &mut self,
        contract: Contract,
        initiator_name: &str,
        fallback: Strategy,
        admission: &AdmissionControl,
    ) -> Result<FormedVo, VoError> {
        let initiator = self
            .providers
            .get(initiator_name)
            .ok_or_else(|| VoError::UnknownMember(initiator_name.to_owned()))?
            .clone();
        admission.seed_from_ledger(&self.reputation, self.clock.elapsed());
        // Authoring the contract + policies on the Initiator GUI.
        self.clock.charge(CostKind::GuiStep);
        let vo = form_vo_admitted(
            contract,
            &initiator,
            &self.providers,
            &self.registry,
            &mut self.mailboxes,
            &mut self.reputation,
            &self.clock,
            fallback,
            admission,
        )?;
        self.active_vos.push(vo.name.clone());
        Ok(vo)
    }

    // ---- Member Edition ----

    /// Member Edition: a member's pending invitations.
    pub fn member_inbox(&self, member: &str) -> usize {
        self.mailboxes.read(member).len()
    }

    /// Member Edition: reconfigure whether a member accepts invitations.
    pub fn member_set_accepting(&mut self, member: &str, accepting: bool) -> Result<(), VoError> {
        let provider = self
            .providers
            .get_mut(member)
            .ok_or_else(|| VoError::UnknownMember(member.to_owned()))?;
        provider.accepts_invitations = accepting;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::Role;
    use trust_vo_credential::{CredentialAuthority, TimeRange, Timestamp};
    use trust_vo_negotiation::Party;
    use trust_vo_policy::{DisclosurePolicy, PolicySet, Resource, Term};
    use trust_vo_soa::simclock::CostModel;

    fn toolkit() -> VoToolkit {
        let clock = SimClock::new(
            CostModel::paper_testbed(),
            Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0),
        );
        let mut tk = VoToolkit::new(clock);
        let mut ca = CredentialAuthority::new("CA");
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));

        let mut initiator = Party::new("Aircraft");
        initiator.trust_root(ca.public_key());
        tk.host_register(ServiceProvider::new(initiator), vec![]);

        let mut member = Party::new("StoreCo");
        let sla = ca
            .issue("StorageSla", "StoreCo", member.keys.public, vec![], window)
            .unwrap();
        member.profile.add(sla);
        member.trust_root(ca.public_key());
        tk.host_register(
            ServiceProvider::new(member),
            vec![ResourceDescription::new(
                "StoreCo",
                "storage",
                "soap://store",
                0.9,
            )],
        );
        tk
    }

    fn contract() -> Contract {
        let mut c =
            Contract::new("VO-1", "store data").with_role(Role::new("Storage", "storage", "SLA"));
        let mut policies = PolicySet::new();
        policies.add(DisclosurePolicy::rule(
            "p",
            Resource::service("VoMembership"),
            vec![Term::of_type("StorageSla")],
        ));
        c.set_role_policies("Storage", policies);
        c
    }

    #[test]
    fn host_edition_listing() {
        let tk = toolkit();
        let services = tk.host_available_services();
        assert_eq!(services.len(), 1);
        assert_eq!(services[0].provider, "StoreCo");
        assert!(tk.host_active_vos().is_empty());
    }

    #[test]
    fn initiator_forms_vo_end_to_end() {
        let mut tk = toolkit();
        let vo = tk
            .initiator_form_vo(contract(), "Aircraft", Strategy::Standard)
            .unwrap();
        assert!(vo.is_member("StoreCo"));
        assert_eq!(tk.host_active_vos(), ["VO-1"]);
    }

    #[test]
    fn admitted_formation_seeds_the_engine_from_the_ledger() {
        let mut tk = toolkit();
        // Pre-formation history in the paper's ledger: two violations put
        // StoreCo in the Suspicious band at admission time.
        tk.reputation.record_violation("StoreCo");
        tk.reputation.record_violation("StoreCo");
        let admission = crate::admitted::AdmissionControl::default();
        let vo = tk
            .initiator_form_vo_admitted(contract(), "Aircraft", Strategy::Standard, &admission)
            .unwrap();
        assert!(vo.is_member("StoreCo"));
        // The engine saw the ledger's 0.1 seed, then the join success.
        let now = tk.clock.elapsed();
        let expected = 0.5 - 0.2 - 0.2 + admission.engine().config().success_delta;
        assert!((admission.engine().score("StoreCo", now) - expected).abs() < 1e-12);
        assert_eq!(admission.engine().events_for("StoreCo"), 1);
    }

    #[test]
    fn unknown_initiator_rejected() {
        let mut tk = toolkit();
        let err = tk
            .initiator_form_vo(contract(), "Ghost", Strategy::Standard)
            .unwrap_err();
        assert!(matches!(err, VoError::UnknownMember(_)));
    }

    #[test]
    fn member_edition_configuration() {
        let mut tk = toolkit();
        tk.member_set_accepting("StoreCo", false).unwrap();
        let err = tk
            .initiator_form_vo(contract(), "Aircraft", Strategy::Standard)
            .unwrap_err();
        assert!(matches!(err, VoError::RoleUnfilled { .. }));
        assert!(tk.member_set_accepting("Ghost", true).is_err());
    }

    #[test]
    fn mailbox_visibility() {
        let mut tk = toolkit();
        assert_eq!(tk.member_inbox("StoreCo"), 0);
        tk.initiator_form_vo(contract(), "Aircraft", Strategy::Standard)
            .unwrap();
        // Invitation was consumed during the join.
        assert_eq!(tk.member_inbox("StoreCo"), 0);
    }
}

/// A Host Edition monitoring snapshot of one VO ("The Host Edition
/// provides services such as member registration and VO monitoring",
/// §6.1).
#[derive(Debug, Clone, PartialEq)]
pub struct MonitoringReport {
    /// The monitored VO.
    pub vo_name: String,
    /// Current lifecycle phase.
    pub phase: crate::lifecycle::Phase,
    /// Member count.
    pub members: usize,
    /// Members whose membership certificate is expired or revoked at the
    /// report instant.
    pub invalid_memberships: Vec<String>,
    /// Members below the replacement reputation threshold.
    pub below_threshold: Vec<String>,
}

impl VoToolkit {
    /// Host Edition: produce a monitoring snapshot of a VO.
    pub fn host_monitor(
        &self,
        vo: &crate::formation::FormedVo,
        crl: &trust_vo_credential::RevocationList,
        threshold: f64,
    ) -> MonitoringReport {
        let now = self.clock.timestamp();
        let invalid_memberships = vo
            .members()
            .iter()
            .filter(|m| m.certificate.verify(now, Some(crl)).is_err())
            .map(|m| m.provider.clone())
            .collect();
        let below_threshold = vo
            .members()
            .iter()
            .filter(|m| self.reputation.needs_replacement(&m.provider, threshold))
            .map(|m| m.provider.clone())
            .collect();
        MonitoringReport {
            vo_name: vo.name.clone(),
            phase: vo.lifecycle.phase(),
            members: vo.members().len(),
            invalid_memberships,
            below_threshold,
        }
    }
}

#[cfg(test)]
mod monitoring_tests {
    use super::*;
    use crate::contract::{Contract, Role};
    use crate::operation::REPLACEMENT_THRESHOLD;
    use trust_vo_credential::{CredentialAuthority, RevocationList, TimeRange, Timestamp};
    use trust_vo_negotiation::Party;
    use trust_vo_policy::{DisclosurePolicy, PolicySet, Resource, Term};
    use trust_vo_soa::simclock::{CostModel, SimDuration};

    fn toolkit_with_vo() -> (VoToolkit, crate::formation::FormedVo) {
        let clock = SimClock::new(
            CostModel::paper_testbed(),
            Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0),
        );
        let mut tk = VoToolkit::new(clock);
        let mut ca = CredentialAuthority::new("CA");
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
        let mut initiator = Party::new("Aircraft");
        initiator.trust_root(ca.public_key());
        tk.host_register(ServiceProvider::new(initiator), vec![]);
        let mut member = Party::new("StoreCo");
        let sla = ca
            .issue("StorageSla", "StoreCo", member.keys.public, vec![], window)
            .unwrap();
        member.profile.add(sla);
        member.trust_root(ca.public_key());
        tk.host_register(
            ServiceProvider::new(member),
            vec![ResourceDescription::new("StoreCo", "storage", "x", 0.9)],
        );
        let mut contract =
            Contract::new("MonVO", "goal").with_role(Role::new("Storage", "storage", "SLA"));
        let mut policies = PolicySet::new();
        policies.add(DisclosurePolicy::rule(
            "p",
            Resource::service("VoMembership"),
            vec![Term::of_type("StorageSla")],
        ));
        contract.set_role_policies("Storage", policies);
        let vo = tk
            .initiator_form_vo(
                contract,
                "Aircraft",
                trust_vo_negotiation::Strategy::Standard,
            )
            .unwrap();
        (tk, vo)
    }

    #[test]
    fn healthy_vo_reports_clean() {
        let (tk, vo) = toolkit_with_vo();
        let report = tk.host_monitor(&vo, &RevocationList::new(), REPLACEMENT_THRESHOLD);
        assert_eq!(report.members, 1);
        assert!(report.invalid_memberships.is_empty());
        assert!(report.below_threshold.is_empty());
        assert_eq!(report.phase, crate::lifecycle::Phase::Operation);
    }

    #[test]
    fn expired_certificate_flagged() {
        let (tk, vo) = toolkit_with_vo();
        tk.clock
            .advance(SimDuration::from_millis(2 * 365 * 24 * 3600 * 1000));
        let report = tk.host_monitor(&vo, &RevocationList::new(), REPLACEMENT_THRESHOLD);
        assert_eq!(report.invalid_memberships, ["StoreCo"]);
    }

    #[test]
    fn revoked_certificate_and_low_reputation_flagged() {
        let (mut tk, vo) = toolkit_with_vo();
        let mut crl = RevocationList::new();
        crl.revoke(
            vo.members()[0].certificate.revocation_id(),
            tk.clock.timestamp(),
        );
        tk.reputation.record_violation("StoreCo");
        tk.reputation.record_violation("StoreCo");
        tk.reputation.record_violation("StoreCo");
        let report = tk.host_monitor(&vo, &crl, REPLACEMENT_THRESHOLD);
        assert_eq!(report.invalid_memberships, ["StoreCo"]);
        assert_eq!(report.below_threshold, ["StoreCo"]);
    }
}
