//! The Preparation-phase public repository.
//!
//! "SPs publish their resources' functionalities in a public repository.
//! The resources' description provides detailed information about
//! resources' capabilities, the resources' interaction means and other
//! information like the resource quality. This information allows one to
//! select a SP for inclusion in the VO." (§2)

/// A published resource description.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceDescription {
    /// The publishing service provider.
    pub provider: String,
    /// The advertised capability, e.g. `hpc-compute`.
    pub capability: String,
    /// Interaction means (endpoint/protocol description).
    pub interaction: String,
    /// Advertised quality in `[0, 1]`.
    pub quality: f64,
}

impl ResourceDescription {
    /// Construct a description (quality clamped into `[0, 1]`).
    pub fn new(
        provider: impl Into<String>,
        capability: impl Into<String>,
        interaction: impl Into<String>,
        quality: f64,
    ) -> Self {
        ResourceDescription {
            provider: provider.into(),
            capability: capability.into(),
            interaction: interaction.into(),
            quality: quality.clamp(0.0, 1.0),
        }
    }
}

/// The public repository queried by VO Initiators during Formation.
#[derive(Debug, Clone, Default)]
pub struct ServiceRegistry {
    entries: Vec<ResourceDescription>,
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a description. A provider republishing the same capability
    /// replaces its previous entry.
    pub fn publish(&mut self, description: ResourceDescription) {
        if let Some(slot) = self
            .entries
            .iter_mut()
            .find(|e| e.provider == description.provider && e.capability == description.capability)
        {
            *slot = description;
        } else {
            self.entries.push(description);
        }
    }

    /// Withdraw all of a provider's publications (e.g. at dissolution).
    pub fn withdraw(&mut self, provider: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.provider != provider);
        before - self.entries.len()
    }

    /// Providers advertising `capability`, best quality first.
    pub fn find_by_capability(&self, capability: &str) -> Vec<&ResourceDescription> {
        let mut found: Vec<&ResourceDescription> = self
            .entries
            .iter()
            .filter(|e| e.capability == capability)
            .collect();
        found.sort_by(|a, b| {
            b.quality
                .partial_cmp(&a.quality)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.provider.cmp(&b.provider))
        });
        found
    }

    /// All publications of one provider.
    pub fn by_provider<'a>(
        &'a self,
        provider: &'a str,
    ) -> impl Iterator<Item = &'a ResourceDescription> + 'a {
        self.entries.iter().filter(move |e| e.provider == provider)
    }

    /// Number of publications.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is published.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> ServiceRegistry {
        let mut r = ServiceRegistry::new();
        r.publish(ResourceDescription::new(
            "HPC-A",
            "hpc-compute",
            "soap://hpc-a",
            0.9,
        ));
        r.publish(ResourceDescription::new(
            "HPC-B",
            "hpc-compute",
            "soap://hpc-b",
            0.95,
        ));
        r.publish(ResourceDescription::new(
            "StoreCo",
            "storage",
            "soap://store",
            0.8,
        ));
        r
    }

    #[test]
    fn find_sorted_by_quality() {
        let r = registry();
        let found = r.find_by_capability("hpc-compute");
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].provider, "HPC-B");
        assert_eq!(found[1].provider, "HPC-A");
        assert!(r.find_by_capability("quantum").is_empty());
    }

    #[test]
    fn quality_ties_break_by_name() {
        let mut r = ServiceRegistry::new();
        r.publish(ResourceDescription::new("Zeta", "cap", "x", 0.5));
        r.publish(ResourceDescription::new("Alpha", "cap", "x", 0.5));
        let found = r.find_by_capability("cap");
        assert_eq!(found[0].provider, "Alpha");
    }

    #[test]
    fn republish_replaces() {
        let mut r = registry();
        r.publish(ResourceDescription::new(
            "HPC-A",
            "hpc-compute",
            "soap://hpc-a2",
            0.99,
        ));
        let found = r.find_by_capability("hpc-compute");
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].provider, "HPC-A");
        assert_eq!(found[0].interaction, "soap://hpc-a2");
    }

    #[test]
    fn withdraw_removes_all() {
        let mut r = registry();
        r.publish(ResourceDescription::new("HPC-A", "storage", "x", 0.4));
        assert_eq!(r.withdraw("HPC-A"), 2);
        assert_eq!(r.withdraw("HPC-A"), 0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn quality_clamped() {
        let d = ResourceDescription::new("X", "c", "i", 1.7);
        assert_eq!(d.quality, 1.0);
        let d = ResourceDescription::new("X", "c", "i", -0.3);
        assert_eq!(d.quality, 0.0);
    }
}
