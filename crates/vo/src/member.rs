//! Service providers and VO membership records.

use trust_vo_credential::x509::AttributeCertificate;
use trust_vo_negotiation::Party;

/// A service provider: the negotiation-capable identity plus its toolkit
/// edition behaviour.
#[derive(Debug, Clone)]
pub struct ServiceProvider {
    /// The provider's negotiation identity (profile, policies, ontology).
    pub party: Party,
    /// Whether the provider accepts VO invitations (Member Edition
    /// configuration; the paper's invitees may decline).
    pub accepts_invitations: bool,
}

impl ServiceProvider {
    /// A provider wrapping the given party, accepting invitations.
    pub fn new(party: Party) -> Self {
        ServiceProvider {
            party,
            accepts_invitations: true,
        }
    }

    /// Builder: make the provider decline all invitations.
    #[must_use]
    pub fn declining(mut self) -> Self {
        self.accepts_invitations = false;
        self
    }

    /// The provider's display name.
    pub fn name(&self) -> &str {
        &self.party.name
    }
}

/// A formed-VO membership record: who plays which role, under which
/// membership certificate.
#[derive(Debug, Clone)]
pub struct MemberRecord {
    /// The member's provider name.
    pub provider: String,
    /// The role it plays.
    pub role: String,
    /// The X.509v2 membership certificate the Initiator issued. "The
    /// membership token contains the public key of the VO to be used for
    /// authentication in the VO." (§5.1)
    pub certificate: AttributeCertificate,
}

impl MemberRecord {
    /// The VO name baked into the certificate.
    pub fn vo_name(&self) -> Option<&str> {
        self.certificate.attr("vo")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trust_vo_credential::{TimeRange, Timestamp};
    use trust_vo_crypto::KeyPair;

    #[test]
    fn provider_construction() {
        let p = ServiceProvider::new(Party::new("HPC-A"));
        assert_eq!(p.name(), "HPC-A");
        assert!(p.accepts_invitations);
        assert!(
            !ServiceProvider::new(Party::new("X"))
                .declining()
                .accepts_invitations
        );
    }

    #[test]
    fn member_record_vo_name() {
        let issuer = KeyPair::from_seed(b"initiator");
        let holder = KeyPair::from_seed(b"member");
        let cert = AttributeCertificate::issue(
            1,
            "HPC-A",
            holder.public,
            "Aircraft",
            &issuer,
            TimeRange::one_year_from(Timestamp(0)),
            vec![
                ("vo".into(), "AircraftOptimization".into()),
                ("role".into(), "HPC".into()),
            ],
        );
        let record = MemberRecord {
            provider: "HPC-A".into(),
            role: "HPC".into(),
            certificate: cert,
        };
        assert_eq!(record.vo_name(), Some("AircraftOptimization"));
    }
}
