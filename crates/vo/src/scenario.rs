//! The running example: the Aircraft Optimization VO (paper §3).
//!
//! "An aircraft company is a prime contractor for an aerospace project
//! developing a civil aircraft. … the prime contractor decides to create a
//! VO of smaller companies that provide services offering the required
//! design/analysis capabilities":
//!
//! 1. the **Aircraft Company** initiating the optimization (VO Initiator),
//! 2. an **aerospace company** hosting the Design Partner Web Portal,
//! 3. a **scientific/engineering consultancy** providing the Design
//!    Optimization Partner Service,
//! 4. a **High Performance Computing** provider (HPC Partner Service),
//! 5. a **storage provider** (Storage Partner Service).
//!
//! The builder wires up the credential authorities (INFN for ISO 9000, the
//! American Aircraft Association, the BBB certification company, an SLA
//! certifier), every party's X-Profile, disclosure policies — including
//! the §5 examples (`VoMembership ← WebDesignerQuality {UNI EN ISO 9000}`,
//! `Certification() ← AAAccreditation()`, the balance-sheet alternative,
//! and the privacy-regulator mutual policies) — and the ontology concepts
//! of §4.3.

use crate::contract::{CollaborationRule, Contract, Role};
use crate::error::VoError;
use crate::formation::FormedVo;
use crate::member::ServiceProvider;
use crate::registry::ResourceDescription;
use crate::toolkit::VoToolkit;
use std::collections::BTreeMap;
use trust_vo_credential::{Attribute, CredentialAuthority, Sensitivity, TimeRange, Timestamp};
use trust_vo_negotiation::{
    negotiate, NegotiationConfig, NegotiationError, NegotiationOutcome, Party, Strategy,
};
use trust_vo_ontology::{Concept, Ontology};
use trust_vo_policy::{Condition, DisclosurePolicy, PolicySet, Resource, Term};
use trust_vo_soa::simclock::SimClock;

/// Provider name constants (also the registry keys).
pub mod names {
    /// The VO Initiator.
    pub const AIRCRAFT: &str = "Aircraft Company";
    /// The Design Partner Web Portal provider.
    pub const AEROSPACE: &str = "Aerospace Company";
    /// The Design Optimization Partner Service provider.
    pub const CONSULTANCY: &str = "Design Optimization Consultancy";
    /// The HPC Partner Service provider.
    pub const HPC: &str = "HPC Services Inc";
    /// A second HPC provider kept in reserve for replacement.
    pub const HPC_BACKUP: &str = "HPC Backup Corp";
    /// The Storage Partner Service provider.
    pub const STORAGE: &str = "Storage Partner Ltd";
}

/// Role name constants.
pub mod roles {
    /// Design Partner Web Portal.
    pub const DESIGN_PORTAL: &str = "DesignPartnerWebPortal";
    /// Design Optimization Partner Service.
    pub const OPTIMIZER: &str = "DesignOptimizationPartner";
    /// HPC Partner Service.
    pub const HPC: &str = "HpcPartnerService";
    /// Storage Partner Service.
    pub const STORAGE: &str = "StoragePartnerService";
}

/// The fully wired scenario.
#[derive(Debug)]
pub struct AircraftScenario {
    /// The toolkit holding providers, registry, mailboxes, reputation.
    pub toolkit: VoToolkit,
    /// The Aircraft Optimization contract.
    pub contract: Contract,
    /// The credential authorities, by name (INFN, AAA, BBB, SLACert).
    pub authorities: BTreeMap<String, CredentialAuthority>,
}

/// The validity window used for every scenario credential.
pub fn credential_window() -> TimeRange {
    TimeRange::one_year_from(Timestamp::parse_iso("2009-10-26T21:32:52").unwrap())
}

/// The instant scenario negotiations nominally run at.
pub fn scenario_time() -> Timestamp {
    Timestamp::parse_iso("2009-12-01T00:00:00").unwrap()
}

fn reference_ontology() -> Ontology {
    let mut o = Ontology::new();
    o.add(
        Concept::new("WebDesignerQuality")
            .keyword("ISO 9000 quality regulation")
            .implemented_by("ISO9000Certified.QualityRegulation"),
    );
    o.add(
        Concept::new("QualityCertification")
            .keyword("ISO")
            .implemented_by("ISO9000Certified"),
    );
    o.add(Concept::new("Accreditation").implemented_by("AAAccreditation"));
    o.add(
        Concept::new("BalanceSheet")
            .keyword("financial statement")
            .implemented_by("CertificationAuthorityCompany"),
    );
    o.add(Concept::new("BusinessProof"));
    o.add(Concept::new("PrivacyCompliance").implemented_by("PrivacyRegulator"));
    o.add(Concept::new("ComputeSla").implemented_by("HpcSla"));
    o.add(Concept::new("StorageSla").implemented_by("StorageSla"));
    assert!(o.add_is_a("BalanceSheet", "BusinessProof"));
    assert!(o.add_is_a("Accreditation", "BusinessProof"));
    assert!(o.add_is_a("QualityCertification", "WebDesignerQuality"));
    o
}

impl AircraftScenario {
    /// Build the whole scenario on a paper-calibrated clock.
    pub fn build() -> Self {
        Self::build_with_clock(SimClock::paper_default())
    }

    /// Build on a caller-supplied clock (benches use a free clock for pure
    /// CPU measurement).
    pub fn build_with_clock(clock: SimClock) -> Self {
        let window = credential_window();
        let mut infn = CredentialAuthority::new("INFN");
        let mut aaa = CredentialAuthority::new("American Aircraft Association");
        let mut bbb = CredentialAuthority::new("BBB Certification");
        let mut sla_cert = CredentialAuthority::new("SLA Certifier");
        let ontology = reference_ontology();
        let mut toolkit = VoToolkit::new(clock);

        let root_keys: Vec<_> = [&infn, &aaa, &bbb, &sla_cert]
            .iter()
            .map(|ca| ca.public_key())
            .collect();
        let trust_all = move |party: &mut Party| {
            for key in &root_keys {
                party.trust_root(*key);
            }
        };

        // ---- Aircraft Company (VO Initiator) ----
        let mut aircraft = Party::new(names::AIRCRAFT).with_ontology(ontology.clone());
        trust_all(&mut aircraft);
        let accreditation = aaa
            .issue(
                "AAAccreditation",
                names::AIRCRAFT,
                aircraft.keys.public,
                vec![Attribute::new("MemberSince", 1998i64)],
                window,
            )
            .expect("open schema");
        aircraft
            .profile
            .add_with_sensitivity(accreditation, Sensitivity::Low);
        let balance_sheet = bbb
            .issue(
                "CertificationAuthorityCompany",
                names::AIRCRAFT,
                aircraft.keys.public,
                vec![
                    Attribute::new("Issuer", "BBB"),
                    Attribute::new("Year", 2009i64),
                ],
                window,
            )
            .expect("open schema");
        aircraft
            .profile
            .add_with_sensitivity(balance_sheet, Sensitivity::High);
        let privacy = infn
            .issue(
                "PrivacyRegulator",
                names::AIRCRAFT,
                aircraft.keys.public,
                vec![Attribute::new("Regulation", "EU-95/46")],
                window,
            )
            .expect("open schema");
        aircraft
            .profile
            .add_with_sensitivity(privacy, Sensitivity::Medium);
        // The initiator's credentials are freely deliverable within a
        // negotiation, except the balance sheet, which mutually requires
        // the counterpart's quality certification.
        aircraft.policies.add(DisclosurePolicy::deliv(
            "air-d1",
            Resource::credential("AAAccreditation"),
        ));
        aircraft.policies.add(DisclosurePolicy::rule(
            "air-p1",
            Resource::credential("CertificationAuthorityCompany"),
            vec![Term::of_type("AAAMember")],
        ));
        aircraft.policies.add(DisclosurePolicy::rule(
            "air-p2",
            Resource::credential("PrivacyRegulator"),
            vec![Term::of_type("PrivacyRegulator")],
        ));
        toolkit.host_register(ServiceProvider::new(aircraft), vec![]);

        // ---- Aerospace Company (Design Partner Web Portal) ----
        let mut aerospace = Party::new(names::AEROSPACE).with_ontology(ontology.clone());
        trust_all(&mut aerospace);
        let iso9000 = infn
            .issue(
                "ISO9000Certified",
                names::AEROSPACE,
                aerospace.keys.public,
                vec![Attribute::new("QualityRegulation", "UNI EN ISO 9000")],
                window,
            )
            .expect("open schema");
        aerospace
            .profile
            .add_with_sensitivity(iso9000, Sensitivity::Medium);
        let aaa_member = aaa
            .issue(
                "AAAMember",
                names::AEROSPACE,
                aerospace.keys.public,
                vec![Attribute::new("MemberSince", 2001i64)],
                window,
            )
            .expect("open schema");
        aerospace
            .profile
            .add_with_sensitivity(aaa_member, Sensitivity::Low);
        // §5: "The Aerospace company, in order to give proof of the
        // compliance to quality, wants the Aircraft company to prove that
        // [it] has an accreditation released by the American Aircraft
        // associations, or to disclose a recent balance sheet."
        aerospace.policies.add(DisclosurePolicy::rule(
            "aero-p1",
            Resource::credential("ISO9000Certified"),
            vec![Term::of_type("AAAccreditation")],
        ));
        aerospace.policies.add(DisclosurePolicy::rule(
            "aero-p2",
            Resource::credential("ISO9000Certified"),
            // Concept-level alternative: resolved by the counterpart's
            // reasoning engine onto its (high-sensitivity) balance sheet.
            vec![Term::of_concept("BusinessProof")
                .with_condition(Condition::parse("//content/Issuer = 'BBB'").unwrap())],
        ));
        aerospace.policies.add(DisclosurePolicy::deliv(
            "aero-d1",
            Resource::credential("AAAMember"),
        ));
        toolkit.host_register(
            ServiceProvider::new(aerospace),
            vec![ResourceDescription::new(
                names::AEROSPACE,
                "design-db",
                "soap://aerospace/design-portal",
                0.92,
            )],
        );

        // ---- Design Optimization Consultancy ----
        let mut consultancy = Party::new(names::CONSULTANCY).with_ontology(ontology.clone());
        trust_all(&mut consultancy);
        let optimization = infn
            .issue(
                "OptimizationCapability",
                names::CONSULTANCY,
                consultancy.keys.public,
                vec![Attribute::new("Domain", "aerospace design")],
                window,
            )
            .expect("open schema");
        consultancy.profile.add(optimization);
        // The §5 operation-phase example: the ISO 002 certificate is
        // disclosed only to privacy-compliant counterparts, mutually.
        let iso002 = infn
            .issue(
                "ISO002Certification",
                names::CONSULTANCY,
                consultancy.keys.public,
                vec![Attribute::new("Scope", "design data handling")],
                window,
            )
            .expect("open schema");
        consultancy
            .profile
            .add_with_sensitivity(iso002, Sensitivity::Medium);
        let privacy = infn
            .issue(
                "PrivacyRegulator",
                names::CONSULTANCY,
                consultancy.keys.public,
                vec![Attribute::new("Regulation", "EU-95/46")],
                window,
            )
            .expect("open schema");
        consultancy
            .profile
            .add_with_sensitivity(privacy, Sensitivity::Medium);
        consultancy.policies.add(DisclosurePolicy::deliv(
            "con-d1",
            Resource::credential("OptimizationCapability"),
        ));
        consultancy.policies.add(DisclosurePolicy::rule(
            "con-p1",
            Resource::credential("ISO002Certification"),
            vec![Term::of_type("PrivacyRegulator")],
        ));
        consultancy.policies.add(DisclosurePolicy::rule(
            "con-p2",
            Resource::credential("PrivacyRegulator"),
            vec![Term::of_type("PrivacyRegulator")],
        ));
        toolkit.host_register(
            ServiceProvider::new(consultancy),
            vec![ResourceDescription::new(
                names::CONSULTANCY,
                "design-optimization",
                "soap://consultancy/optimizer",
                0.88,
            )],
        );

        // ---- HPC providers ----
        for (name, availability, quality) in
            [(names::HPC, 99i64, 0.95), (names::HPC_BACKUP, 99i64, 0.85)]
        {
            let mut hpc = Party::new(name).with_ontology(ontology.clone());
            trust_all(&mut hpc);
            let sla = sla_cert
                .issue(
                    "HpcSla",
                    name,
                    hpc.keys.public,
                    vec![Attribute::new("Availability", availability)],
                    window,
                )
                .expect("open schema");
            hpc.profile.add(sla);
            let privacy = infn
                .issue(
                    "PrivacyRegulator",
                    name,
                    hpc.keys.public,
                    vec![Attribute::new("Regulation", "EU-95/46")],
                    window,
                )
                .expect("open schema");
            hpc.profile.add(privacy);
            hpc.policies.add(DisclosurePolicy::deliv(
                "hpc-d1",
                Resource::credential("HpcSla"),
            ));
            hpc.policies.add(DisclosurePolicy::deliv(
                "hpc-d2",
                Resource::credential("PrivacyRegulator"),
            ));
            // Members grant the flow-solution service to holders of a
            // privacy credential (exercised in the operation phase).
            hpc.policies.add(DisclosurePolicy::rule(
                "hpc-p1",
                Resource::service("FlowSolution"),
                vec![Term::of_type("PrivacyRegulator")],
            ));
            toolkit.host_register(
                ServiceProvider::new(hpc),
                vec![ResourceDescription::new(
                    name,
                    "hpc-compute",
                    "soap://hpc/run",
                    quality,
                )],
            );
        }

        // ---- Storage provider ----
        let mut storage = Party::new(names::STORAGE).with_ontology(ontology.clone());
        trust_all(&mut storage);
        let sla = sla_cert
            .issue(
                "StorageSla",
                names::STORAGE,
                storage.keys.public,
                vec![Attribute::new("CapacityTb", 500i64)],
                window,
            )
            .expect("open schema");
        storage.profile.add(sla);
        storage.policies.add(DisclosurePolicy::deliv(
            "sto-d1",
            Resource::credential("StorageSla"),
        ));
        toolkit.host_register(
            ServiceProvider::new(storage),
            vec![ResourceDescription::new(
                names::STORAGE,
                "storage",
                "soap://storage",
                0.9,
            )],
        );

        // ---- Contract (Identification phase) ----
        let mut contract = Contract::new(
            "AircraftOptimization",
            "civil aircraft with low emissions and efficient fuel consumption",
        )
        .with_role(Role::new(
            roles::DESIGN_PORTAL,
            "design-db",
            "industry-standard product design database, ISO 9000 compliant",
        ))
        .with_role(Role::new(
            roles::OPTIMIZER,
            "design-optimization",
            "advanced aerospace design optimization capability",
        ))
        .with_role(Role::new(
            roles::HPC,
            "hpc-compute",
            "numerical simulation, SLA >= 99%",
        ))
        .with_role(Role::new(
            roles::STORAGE,
            "storage",
            "industrial engineering analysis data",
        ))
        .with_rule(CollaborationRule::global(
            "log-all",
            "log every cross-member access",
        ))
        .with_rule(CollaborationRule::for_roles(
            "sla-uptime",
            "maintain advertised availability",
            &[roles::HPC, roles::STORAGE],
        ));

        // §5.1 Identification: per-role disclosure policies.
        let mut portal_policies = PolicySet::new();
        portal_policies.add(DisclosurePolicy::rule(
            "vo-portal",
            Resource::service("VoMembership").with_attr("vo", "AircraftOptimization"),
            // "VoMembership ← WebDesignerQuality, {UNI EN ISO 9000}".
            vec![Term::of_type("ISO9000Certified")
                .where_attr("QualityRegulation", "UNI EN ISO 9000")],
        ));
        contract.set_role_policies(roles::DESIGN_PORTAL, portal_policies);

        let mut optimizer_policies = PolicySet::new();
        optimizer_policies.add(DisclosurePolicy::rule(
            "vo-optimizer",
            Resource::service("VoMembership"),
            vec![Term::of_type("OptimizationCapability")],
        ));
        contract.set_role_policies(roles::OPTIMIZER, optimizer_policies);

        let mut hpc_policies = PolicySet::new();
        hpc_policies.add(DisclosurePolicy::rule(
            "vo-hpc",
            Resource::service("VoMembership"),
            vec![Term::of_type("HpcSla")
                .with_condition(Condition::parse("//content/Availability >= 99").unwrap())],
        ));
        contract.set_role_policies(roles::HPC, hpc_policies);

        let mut storage_policies = PolicySet::new();
        storage_policies.add(DisclosurePolicy::rule(
            "vo-storage",
            Resource::service("VoMembership"),
            vec![Term::of_type("StorageSla")],
        ));
        contract.set_role_policies(roles::STORAGE, storage_policies);

        let mut authorities = BTreeMap::new();
        for ca in [infn, aaa, bbb, sla_cert] {
            authorities.insert(ca.name.clone(), ca);
        }
        AircraftScenario {
            toolkit,
            contract,
            authorities,
        }
    }

    /// Run the Formation phase for the whole contract.
    pub fn form_vo(&mut self, strategy: Strategy) -> Result<FormedVo, VoError> {
        self.toolkit
            .initiator_form_vo(self.contract.clone(), names::AIRCRAFT, strategy)
    }

    /// A provider's current negotiation identity.
    pub fn provider(&self, name: &str) -> &ServiceProvider {
        self.toolkit
            .providers
            .get(name)
            .unwrap_or_else(|| panic!("provider '{name}' is part of the scenario"))
    }

    /// The Fig. 2 negotiation, standalone: the Aerospace Company requests
    /// the VO membership from the Aircraft Company (whose Identification-
    /// phase Design-Portal policies are active).
    pub fn fig2_negotiation(
        &self,
        strategy: Strategy,
    ) -> Result<NegotiationOutcome, NegotiationError> {
        let mut initiator = self.provider(names::AIRCRAFT).party.clone();
        if let Some(set) = self.contract.policies_for(roles::DESIGN_PORTAL) {
            for policy in set.iter() {
                initiator.policies.add(policy.clone());
            }
        }
        let aerospace = &self.provider(names::AEROSPACE).party;
        let cfg = NegotiationConfig::new(strategy, scenario_time());
        negotiate(aerospace, &initiator, "VoMembership", &cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trust_vo_negotiation::message::Side;

    #[test]
    fn scenario_builds_with_all_providers() {
        let s = AircraftScenario::build();
        assert_eq!(s.toolkit.providers.len(), 6);
        assert_eq!(s.contract.roles.len(), 4);
        assert_eq!(s.authorities.len(), 4);
        for role in &s.contract.roles {
            assert!(
                s.contract.policies_for(&role.name).is_some(),
                "{}",
                role.name
            );
        }
    }

    #[test]
    fn full_formation_succeeds() {
        let mut s = AircraftScenario::build();
        let vo = s.form_vo(Strategy::Standard).unwrap();
        assert_eq!(vo.members().len(), 4);
        assert!(vo.is_member(names::AEROSPACE));
        assert!(vo.is_member(names::CONSULTANCY));
        assert!(vo.is_member(names::HPC)); // higher quality beats backup
        assert!(vo.is_member(names::STORAGE));
    }

    #[test]
    fn formation_succeeds_under_every_strategy() {
        for strategy in Strategy::ALL {
            let mut s = AircraftScenario::build();
            let vo = s.form_vo(strategy).unwrap();
            assert_eq!(vo.members().len(), 4, "{strategy}");
        }
    }

    #[test]
    fn fig2_negotiation_shape() {
        let s = AircraftScenario::build();
        let outcome = s.fig2_negotiation(Strategy::Standard).unwrap();
        // Aircraft's accreditation flows first, unlocking the aerospace
        // ISO 9000 credential.
        let seq: Vec<_> = outcome
            .sequence
            .disclosures()
            .iter()
            .map(|d| (d.by, d.cred_type.as_str().to_owned()))
            .collect();
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0].0, Side::Controller);
        assert_eq!(seq[0].1, "AAAccreditation");
        assert_eq!(seq[1].0, Side::Requester);
        assert_eq!(seq[1].1, "ISO9000Certified");
        // The tree shows the Fig. 2 structure (root + quality term +
        // the two alternative counter-requirements).
        assert!(outcome.tree.depth() >= 3);
    }

    #[test]
    fn concept_alternative_used_when_accreditation_missing() {
        let mut s = AircraftScenario::build();
        // Remove the Aircraft Company's AAA accreditation, forcing the
        // balance-sheet (concept) alternative of policy aero-p2.
        let aircraft = s.toolkit.providers.get_mut(names::AIRCRAFT).unwrap();
        let id = aircraft
            .party
            .profile
            .of_type("AAAccreditation")
            .next()
            .unwrap()
            .id()
            .clone();
        aircraft.party.profile.remove(&id);
        let outcome = s.fig2_negotiation(Strategy::Standard).unwrap();
        let types: Vec<_> = outcome
            .sequence
            .disclosures()
            .iter()
            .map(|d| d.cred_type.as_str())
            .collect();
        assert!(
            types.contains(&"CertificationAuthorityCompany"),
            "{types:?}"
        );
    }

    #[test]
    fn scenario_credentials_are_valid_at_scenario_time() {
        let s = AircraftScenario::build();
        for provider in s.toolkit.providers.values() {
            for cred in provider.party.profile.credentials() {
                assert!(
                    cred.verify(scenario_time(), None).is_ok(),
                    "{} of {}",
                    cred.id(),
                    provider.name()
                );
            }
        }
    }
}
