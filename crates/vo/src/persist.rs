//! VO state persistence.
//!
//! The prototype's VO Management toolkit "adopts MySQL as storage support"
//! (§6.3): active VOs, their members, and their membership certificates
//! survive toolkit restarts. This module serializes a [`FormedVo`] to an
//! XML document and back, and provides the save/load helpers over the
//! workspace [`Database`].
//!
//! The VO document embeds each X.509v2 membership certificate field by
//! field (including the signature), and deserialization reconstructs the
//! exact signed content — so reloaded certificates still verify.

use crate::contract::{CollaborationRule, Contract, Role};
use crate::formation::FormedVo;
use crate::lifecycle::{Phase, VoLifecycle};
use crate::member::MemberRecord;
use trust_vo_credential::x509::AttributeCertificate;
use trust_vo_credential::{TimeRange, Timestamp};
use trust_vo_crypto::{hex, KeyPair, PublicKey, Signature};
use trust_vo_store::Database;
use trust_vo_xmldoc::{Element, Node};

/// Error while (de)serializing VO state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError(pub String);

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VO persistence error: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

fn cert_to_xml(cert: &AttributeCertificate) -> Element {
    let mut el = Element::new("membershipCertificate")
        .attr("serial", cert.serial.to_string())
        .attr("holder", &cert.holder)
        .attr("holderKey", hex::encode(&cert.holder_key.0.to_be_bytes()))
        .attr("issuer", &cert.issuer)
        .attr("issuerKey", hex::encode(&cert.issuer_key.0.to_be_bytes()))
        .attr("from", cert.validity.not_before.to_iso())
        .attr("to", cert.validity.not_after.to_iso())
        .attr("sigR", cert.signature.r.to_string())
        .attr("sigS", cert.signature.s.to_string());
    for (name, value) in &cert.attributes {
        el.children.push(Node::Element(
            Element::new("attr").attr("name", name).attr("value", value),
        ));
    }
    el
}

fn key_from_hex(text: &str, what: &str) -> Result<PublicKey, PersistError> {
    let bytes = hex::decode(text)
        .filter(|b| b.len() == 8)
        .ok_or_else(|| PersistError(format!("{what}: bad key encoding")))?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes);
    Ok(PublicKey(u64::from_be_bytes(raw)))
}

fn cert_from_xml(el: &Element) -> Result<AttributeCertificate, PersistError> {
    let attr = |name: &str| {
        el.get_attr(name)
            .map(str::to_owned)
            .ok_or_else(|| PersistError(format!("certificate missing '{name}'")))
    };
    let parse_ts = |name: &str| -> Result<Timestamp, PersistError> {
        Timestamp::parse_iso(&attr(name)?)
            .ok_or_else(|| PersistError(format!("certificate: bad timestamp in '{name}'")))
    };
    let not_before = parse_ts("from")?;
    let not_after = parse_ts("to")?;
    if not_before > not_after {
        return Err(PersistError("certificate: inverted validity".into()));
    }
    let mut attributes = Vec::new();
    for a in el.all("attr") {
        let name = a
            .get_attr("name")
            .ok_or_else(|| PersistError("attr missing name".into()))?;
        let value = a
            .get_attr("value")
            .ok_or_else(|| PersistError("attr missing value".into()))?;
        attributes.push((name.to_owned(), value.to_owned()));
    }
    let parse_u64 = |name: &str| -> Result<u64, PersistError> {
        attr(name)?
            .parse()
            .map_err(|_| PersistError(format!("certificate: bad number in '{name}'")))
    };
    Ok(AttributeCertificate {
        serial: parse_u64("serial")?,
        holder: attr("holder")?,
        holder_key: key_from_hex(&attr("holderKey")?, "holderKey")?,
        issuer: attr("issuer")?,
        issuer_key: key_from_hex(&attr("issuerKey")?, "issuerKey")?,
        validity: TimeRange {
            not_before,
            not_after,
        },
        attributes,
        signature: Signature {
            r: parse_u64("sigR")?,
            s: parse_u64("sigS")?,
        },
    })
}

/// Serialize a VO to its persistence document.
pub fn vo_to_xml(vo: &FormedVo) -> Element {
    let mut contract_el = Element::new("contract").attr("goal", &vo.contract.goal);
    for role in &vo.contract.roles {
        contract_el.children.push(Node::Element(
            Element::new("role")
                .attr("name", &role.name)
                .attr("capability", &role.capability)
                .attr("requirements", &role.requirements),
        ));
    }
    for rule in &vo.contract.rules {
        let mut rule_el = Element::new("rule")
            .attr("id", &rule.id)
            .attr("description", &rule.description);
        for r in &rule.applies_to {
            rule_el
                .children
                .push(Node::Element(Element::new("appliesTo").text(r)));
        }
        contract_el.children.push(Node::Element(rule_el));
    }
    // Role admission policies. Without these, a reloaded VO's renewal and
    // admission negotiations run ungoverned — the negotiation engine treats
    // resources with no policy as freely released, so dropping them here
    // silently disables the membership gate.
    for (role, set) in &vo.contract.role_policies {
        let mut rp_el = Element::new("rolePolicies").attr("role", role);
        for policy in set.iter() {
            rp_el
                .children
                .push(Node::Element(trust_vo_policy::xml::policy_to_xml(policy)));
        }
        contract_el.children.push(Node::Element(rp_el));
    }
    let mut lifecycle_el = Element::new("lifecycle");
    for (phase, at) in vo.lifecycle.history() {
        lifecycle_el.children.push(Node::Element(
            Element::new("transition")
                .attr("phase", phase.to_string())
                .attr("at", at.to_iso()),
        ));
    }
    let mut members_el = Element::new("members");
    for m in &vo.members {
        members_el.children.push(Node::Element(
            Element::new("member")
                .attr("provider", &m.provider)
                .attr("role", &m.role)
                .child(cert_to_xml(&m.certificate)),
        ));
    }
    Element::new("virtualOrganization")
        .attr("name", &vo.name)
        .attr("initiator", &vo.initiator)
        .attr(
            "voPublicKey",
            hex::encode(&vo.vo_keys.public.0.to_be_bytes()),
        )
        .child(contract_el)
        .child(lifecycle_el)
        .child(members_el)
}

fn phase_from_str(text: &str) -> Option<Phase> {
    Phase::ORDER.into_iter().find(|p| p.to_string() == text)
}

/// Deserialize a VO from its persistence document.
///
/// The VO key pair is re-derived from the VO name (keys are deterministic
/// in this reproduction); the stored public key is checked against it.
pub fn vo_from_xml(root: &Element) -> Result<FormedVo, PersistError> {
    if root.name != "virtualOrganization" {
        return Err(PersistError(format!(
            "expected <virtualOrganization>, found <{}>",
            root.name
        )));
    }
    let name = root
        .get_attr("name")
        .ok_or_else(|| PersistError("missing name".into()))?
        .to_owned();
    let initiator = root
        .get_attr("initiator")
        .ok_or_else(|| PersistError("missing initiator".into()))?
        .to_owned();
    let vo_keys = KeyPair::from_seed(format!("vo:{name}").as_bytes());
    let stored_key = key_from_hex(
        root.get_attr("voPublicKey")
            .ok_or_else(|| PersistError("missing voPublicKey".into()))?,
        "voPublicKey",
    )?;
    if stored_key != vo_keys.public {
        return Err(PersistError(
            "stored VO public key does not match the VO name".into(),
        ));
    }
    // Contract.
    let contract_el = root
        .first("contract")
        .ok_or_else(|| PersistError("missing <contract>".into()))?;
    let mut contract = Contract::new(
        name.clone(),
        contract_el.get_attr("goal").unwrap_or_default().to_owned(),
    );
    for role_el in contract_el.all("role") {
        contract.roles.push(Role::new(
            role_el.get_attr("name").unwrap_or_default(),
            role_el.get_attr("capability").unwrap_or_default(),
            role_el.get_attr("requirements").unwrap_or_default(),
        ));
    }
    for rule_el in contract_el.all("rule") {
        let mut rule = CollaborationRule::global(
            rule_el.get_attr("id").unwrap_or_default(),
            rule_el.get_attr("description").unwrap_or_default(),
        );
        for applies in rule_el.all("appliesTo") {
            rule.applies_to.push(applies.text_content());
        }
        contract.rules.push(rule);
    }
    for rp_el in contract_el.all("rolePolicies") {
        let role = rp_el
            .get_attr("role")
            .ok_or_else(|| PersistError("rolePolicies missing role".into()))?;
        let mut set = trust_vo_policy::PolicySet::new();
        for policy_el in rp_el.all("policy") {
            set.add(
                trust_vo_policy::xml::policy_from_xml(policy_el)
                    .map_err(|e| PersistError(format!("role '{role}': {e}")))?,
            );
        }
        contract.set_role_policies(role, set);
    }
    // Lifecycle replay.
    let lifecycle_el = root
        .first("lifecycle")
        .ok_or_else(|| PersistError("missing <lifecycle>".into()))?;
    let mut transitions = lifecycle_el.all("transition");
    let first = transitions
        .next()
        .ok_or_else(|| PersistError("empty lifecycle history".into()))?;
    let first_at = Timestamp::parse_iso(first.get_attr("at").unwrap_or_default())
        .ok_or_else(|| PersistError("bad lifecycle timestamp".into()))?;
    if first.get_attr("phase") != Some("preparation") {
        return Err(PersistError(
            "lifecycle history must start at preparation".into(),
        ));
    }
    let mut lifecycle = VoLifecycle::new(first_at);
    for t in transitions {
        let phase = phase_from_str(t.get_attr("phase").unwrap_or_default())
            .ok_or_else(|| PersistError("unknown lifecycle phase".into()))?;
        let at = Timestamp::parse_iso(t.get_attr("at").unwrap_or_default())
            .ok_or_else(|| PersistError("bad lifecycle timestamp".into()))?;
        lifecycle
            .advance_to(phase, at)
            .map_err(|e| PersistError(format!("invalid lifecycle history: {e}")))?;
    }
    // Members.
    let members_el = root
        .first("members")
        .ok_or_else(|| PersistError("missing <members>".into()))?;
    let mut members = Vec::new();
    let mut max_serial = 0;
    for m in members_el.all("member") {
        let cert_el = m
            .first("membershipCertificate")
            .ok_or_else(|| PersistError("member missing certificate".into()))?;
        let certificate = cert_from_xml(cert_el)?;
        max_serial = max_serial.max(certificate.serial);
        members.push(MemberRecord {
            provider: m.get_attr("provider").unwrap_or_default().to_owned(),
            role: m.get_attr("role").unwrap_or_default().to_owned(),
            certificate,
        });
    }
    Ok(FormedVo {
        name,
        contract,
        initiator,
        vo_keys,
        members,
        lifecycle,
        // Resume serial allocation past every persisted certificate.
        next_serial: max_serial,
    })
}

/// Persist a VO into the `vos` collection of `db`.
pub fn save_vo(db: &Database, vo: &FormedVo) -> u64 {
    db.with_collection("vos", |c| c.put(vo.name.as_str(), vo_to_xml(vo)))
}

/// Load a VO by name from `db`.
pub fn load_vo(db: &Database, name: &str) -> Result<FormedVo, PersistError> {
    // Shared read access: loading must not take the write lock (which
    // serializes concurrent loaders) nor create an empty `vos` collection
    // as a side effect of a miss.
    let doc = db
        .read_collection("vos", |c| c.get(&name.into()).cloned())
        .flatten()
        .ok_or_else(|| PersistError(format!("no persisted VO named '{name}'")))?;
    vo_from_xml(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::MailboxSystem;
    use crate::member::ServiceProvider;
    use crate::registry::{ResourceDescription, ServiceRegistry};
    use crate::reputation::ReputationLedger;
    use std::collections::BTreeMap;
    use trust_vo_credential::{CredentialAuthority, TimeRange};
    use trust_vo_negotiation::{Party, Strategy};
    use trust_vo_policy::{DisclosurePolicy, PolicySet, Resource, Term};
    use trust_vo_soa::simclock::{CostModel, SimClock};

    struct World {
        vo: FormedVo,
        clock: SimClock,
        initiator: ServiceProvider,
        providers: BTreeMap<String, ServiceProvider>,
        ca: CredentialAuthority,
    }

    fn formed_world() -> World {
        let clock = SimClock::new(
            CostModel::free(),
            Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0),
        );
        let mut ca = CredentialAuthority::new("CA");
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
        let mut initiator_party = Party::new("Aircraft");
        initiator_party.trust_root(ca.public_key());
        let mut member = Party::new("StoreCo");
        let sla = ca
            .issue("StorageSla", "StoreCo", member.keys.public, vec![], window)
            .unwrap();
        member.profile.add(sla);
        member.trust_root(ca.public_key());
        let mut contract = Contract::new("PersistVO", "goal")
            .with_role(Role::new("Storage", "storage", "SLA"))
            .with_rule(CollaborationRule::for_roles("r1", "encrypt", &["Storage"]));
        let mut policies = PolicySet::new();
        policies.add(DisclosurePolicy::rule(
            "p",
            Resource::service("VoMembership"),
            vec![Term::of_type("StorageSla")],
        ));
        contract.set_role_policies("Storage", policies);
        let mut registry = ServiceRegistry::new();
        registry.publish(ResourceDescription::new("StoreCo", "storage", "x", 0.9));
        let mut providers = BTreeMap::new();
        providers.insert("StoreCo".to_owned(), ServiceProvider::new(member));
        let initiator = ServiceProvider::new(initiator_party);
        let vo = crate::formation::form_vo(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &clock,
            Strategy::Standard,
        )
        .unwrap();
        World {
            vo,
            clock,
            initiator,
            providers,
            ca,
        }
    }

    fn formed() -> (FormedVo, SimClock) {
        let w = formed_world();
        (w.vo, w.clock)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (vo, _clock) = formed();
        let doc = vo_to_xml(&vo);
        let text = trust_vo_xmldoc::to_string(&doc);
        let back = vo_from_xml(&trust_vo_xmldoc::parse(&text).unwrap()).unwrap();
        assert_eq!(back.name, vo.name);
        assert_eq!(back.initiator, vo.initiator);
        assert_eq!(back.members.len(), 1);
        assert_eq!(back.members[0].provider, "StoreCo");
        assert_eq!(back.lifecycle.phase(), Phase::Operation);
        assert_eq!(back.contract.roles.len(), 1);
        assert_eq!(back.contract.rules.len(), 1);
        assert_eq!(back.vo_keys.public, vo.vo_keys.public);
    }

    #[test]
    fn role_policies_survive_roundtrip() {
        let (vo, _clock) = formed();
        let doc = vo_to_xml(&vo);
        let text = trust_vo_xmldoc::to_string(&doc);
        let back = vo_from_xml(&trust_vo_xmldoc::parse(&text).unwrap()).unwrap();
        let set = back
            .contract
            .policies_for("Storage")
            .expect("role policies must survive save/load");
        assert_eq!(set.len(), 1);
        let policy = set.iter().next().unwrap();
        assert_eq!(policy.target.name, "VoMembership");
    }

    /// The reloaded admission gate must still gate: a renewal negotiation
    /// against a provider stripped of its SLA credential has to fail.
    /// Before role policies were persisted, this renewal *succeeded* — the
    /// negotiation engine treats ungoverned resources as freely released,
    /// so the lost PolicySet silently disabled membership checks.
    #[test]
    fn reloaded_vo_renewal_enforces_role_policies() {
        let w = formed_world();
        let db = Database::new();
        save_vo(&db, &w.vo);
        let mut reloaded = load_vo(&db, "PersistVO").unwrap();

        let mut bare = Party::new("StoreCo");
        bare.trust_root(w.ca.public_key());
        let mut stripped = BTreeMap::new();
        stripped.insert("StoreCo".to_owned(), ServiceProvider::new(bare));
        let denied = crate::operation::renew_membership(
            &mut reloaded,
            &w.initiator,
            &stripped,
            "StoreCo",
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &w.clock,
            Strategy::Standard,
        );
        assert!(
            denied.is_err(),
            "renewal without the SLA credential must fail against the reloaded policy"
        );

        // The genuine provider still renews successfully.
        let record = crate::operation::renew_membership(
            &mut reloaded,
            &w.initiator,
            &w.providers,
            "StoreCo",
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &w.clock,
            Strategy::Standard,
        )
        .expect("renewal with the credentialed provider succeeds");
        assert_eq!(record.provider, "StoreCo");
    }

    #[test]
    fn reloaded_certificates_still_verify() {
        let (vo, clock) = formed();
        let db = Database::new();
        save_vo(&db, &vo);
        let back = load_vo(&db, "PersistVO").unwrap();
        for m in back.members() {
            assert!(m.certificate.verify_signature().is_ok(), "{}", m.provider);
            assert!(m.certificate.verify(clock.timestamp(), None).is_ok());
        }
    }

    #[test]
    fn serial_counter_restored() {
        let (vo, _clock) = formed();
        let db = Database::new();
        save_vo(&db, &vo);
        let mut back = load_vo(&db, "PersistVO").unwrap();
        let old_max = vo.members()[0].certificate.serial;
        assert!(back.next_serial() > old_max);
    }

    #[test]
    fn tampered_certificate_detected_after_reload() {
        let (vo, _clock) = formed();
        let doc = vo_to_xml(&vo);
        let text = trust_vo_xmldoc::to_string(&doc).replace("Storage", "Sabotage");
        let back = vo_from_xml(&trust_vo_xmldoc::parse(&text).unwrap()).unwrap();
        assert!(back.members()[0].certificate.verify_signature().is_err());
    }

    #[test]
    fn wrong_vo_key_rejected() {
        let (vo, _clock) = formed();
        let mut doc = vo_to_xml(&vo);
        doc.set_attr("voPublicKey", "0000000000000001");
        assert!(vo_from_xml(&doc).is_err());
    }

    #[test]
    fn malformed_documents_rejected() {
        for text in [
            "<notVo/>",
            r#"<virtualOrganization/>"#,
            r#"<virtualOrganization name="x" initiator="i" voPublicKey="zz"/>"#,
        ] {
            let doc = trust_vo_xmldoc::parse(text).unwrap();
            assert!(vo_from_xml(&doc).is_err(), "{text}");
        }
        let db = Database::new();
        assert!(load_vo(&db, "ghost").is_err());
    }

    #[test]
    fn invalid_lifecycle_history_rejected() {
        let (vo, _clock) = formed();
        let mut doc = vo_to_xml(&vo);
        // Corrupt the history: drop the first transition so it starts at
        // identification.
        let lc = doc
            .children
            .iter_mut()
            .filter_map(|c| match c {
                Node::Element(e) if e.name == "lifecycle" => Some(e),
                _ => None,
            })
            .next()
            .unwrap();
        lc.children.remove(0);
        assert!(vo_from_xml(&doc).is_err());
    }
}
