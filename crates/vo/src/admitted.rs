//! Admission-aware formation drivers: reputation-gated strategy selection
//! and queue priority over the standard Formation decision procedure.
//!
//! The paper's reputation is write-only — scores move during formation and
//! operation but influence nothing at admission time. These drivers close
//! the loop with the `trust-vo-admission` crate:
//!
//! * the coordinator snapshots every candidate's score from a shared
//!   [`ScoringEngine`] at formation start, maps it through [`BandConfig`]
//!   to a trust band, and negotiates each candidate with the band's
//!   `negotiation::Strategy` (trusting ↔ standard ↔ suspicious ↔
//!   strong-suspicious);
//! * candidates are attempted in admission-queue order — trust band first,
//!   then score-weighted advertised quality — instead of the plain
//!   quality × reputation ranking;
//! * every attempt outcome feeds back into the engine: TN success,
//!   failed TN, declined invitation (abandonment), and — on the
//!   transport-driven paths — netsim-injected fault timeouts.
//!
//! The snapshot is taken once, before any attempt: the parallel drivers
//! speculate negotiations *before* the serial replay runs, so per-candidate
//! strategies must not depend on outcomes recorded mid-formation. This is
//! what keeps serial, parallel, and journal-resumed runs byte-identical.
//!
//! # Kill-switch
//!
//! When `TRUST_VO_ADMISSION` is off, every `*_admitted` driver collapses to
//! its plain counterpart with the caller's fallback strategy: no scoring
//! reads, no engine writes, no extra obs — byte-identical behavior.

use std::collections::BTreeMap;
use std::sync::Arc;

use trust_vo_admission::{
    admission_enabled, BandConfig, Outcome, QueueKey, ScoringConfig, ScoringEngine, TrustBand,
};
use trust_vo_negotiation::{ConcurrentSequenceCache, Strategy};
use trust_vo_soa::simclock::{SimClock, SimDuration};
use trust_vo_soa::{ResumePolicy, RetryPolicy, Transport};

use crate::contract::Contract;
use crate::error::VoError;
use crate::formation::{form_vo_impl, form_vo_parallel_impl, FormedVo, TnSource};
use crate::mailbox::MailboxSystem;
use crate::member::ServiceProvider;
use crate::registry::ServiceRegistry;
use crate::reputation::ReputationLedger;
use crate::resilient::{
    form_vo_resilient_impl, form_vo_resilient_parallel_impl, FormationResilience,
};

/// The coordinator-side admission state: a shared scoring engine plus the
/// band thresholds mapping scores to strategies and queue priorities.
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    engine: Arc<ScoringEngine>,
    bands: BandConfig,
}

impl AdmissionControl {
    /// Admission control over an existing engine.
    pub fn new(engine: Arc<ScoringEngine>, bands: BandConfig) -> Self {
        AdmissionControl { engine, bands }
    }

    /// The shared scoring engine.
    pub fn engine(&self) -> &Arc<ScoringEngine> {
        &self.engine
    }

    /// The band thresholds.
    pub fn bands(&self) -> &BandConfig {
        &self.bands
    }

    /// Seed the engine from the paper's [`ReputationLedger`] — the
    /// pluggable-over-the-ledger path: a toolkit that has been tracking
    /// reputation the §5.1 way can hand its scores to admission control
    /// without replaying its history.
    pub fn seed_from_ledger(&self, ledger: &ReputationLedger, now: SimDuration) {
        self.engine.seed(ledger.snapshot(), now);
    }

    /// The trust band `party`'s score (as of sim-time `now`) lands in.
    pub fn band_for(&self, party: &str, now: SimDuration) -> TrustBand {
        self.bands.band_for(self.engine.score(party, now))
    }

    /// The banded negotiation strategy for `party` as of sim-time `now`.
    /// This is the raw banding read; the `*_admitted` drivers apply the
    /// kill-switch (falling back to the caller's fixed strategy) on top.
    pub fn strategy_for(&self, party: &str, now: SimDuration) -> Strategy {
        self.band_for(party, now).strategy()
    }
}

impl Default for AdmissionControl {
    /// A fresh engine with [`ScoringConfig::paper_defaults`] under
    /// [`BandConfig::paper_defaults`].
    fn default() -> Self {
        AdmissionControl::new(
            Arc::new(ScoringEngine::new(ScoringConfig::paper_defaults())),
            BandConfig::paper_defaults(),
        )
    }
}

/// A formation-start snapshot of every candidate's score, band-derived
/// strategy, and queue weight, plus the engine handle for outcome
/// feedback.
///
/// Snapshotting (rather than reading the engine per attempt) is what makes
/// the parallel drivers deterministic: speculation picks each candidate's
/// strategy before the serial replay records any outcome, so both phases
/// must read the same pre-formation scores.
pub(crate) struct AdmissionHooks<'a> {
    engine: &'a ScoringEngine,
    bands: BandConfig,
    strategies: BTreeMap<String, Strategy>,
    scores: BTreeMap<String, f64>,
    fallback: Strategy,
}

impl<'a> AdmissionHooks<'a> {
    /// Snapshot scores for every registered provider at sim-time `now`.
    pub(crate) fn snapshot(
        control: &'a AdmissionControl,
        providers: &BTreeMap<String, ServiceProvider>,
        fallback: Strategy,
        now: SimDuration,
    ) -> Self {
        let mut strategies = BTreeMap::new();
        let mut scores = BTreeMap::new();
        for name in providers.keys() {
            let score = control.engine.score(name, now);
            scores.insert(name.clone(), score);
            strategies.insert(name.clone(), control.bands.strategy_for(score));
        }
        AdmissionHooks {
            engine: &control.engine,
            bands: control.bands,
            strategies,
            scores,
            fallback,
        }
    }

    /// The snapshotted banded strategy for a candidate. Parties outside
    /// the snapshot (never the case for registered providers) negotiate
    /// with the fallback.
    pub(crate) fn strategy_for(&self, party: &str) -> Strategy {
        self.strategies.get(party).copied().unwrap_or(self.fallback)
    }

    /// The admission-queue key for a candidate: snapshot band first, then
    /// descending `quality × score`, party name as the tiebreak.
    pub(crate) fn queue_key(&self, party: &str, quality: f64) -> QueueKey {
        let score = self
            .scores
            .get(party)
            .copied()
            .unwrap_or(self.engine.config().prior);
        QueueKey::new(self.bands.band_for(score), quality * score, party)
    }

    /// Feed a TN success into the engine at the clock's current sim-time.
    pub(crate) fn record_success(&self, party: &str, clock: &SimClock) {
        self.engine.record(party, Outcome::Success, clock.elapsed());
    }

    /// Feed a failed trust negotiation into the engine.
    pub(crate) fn record_failed_negotiation(&self, party: &str, clock: &SimClock) {
        self.engine
            .record(party, Outcome::FailedNegotiation, clock.elapsed());
    }

    /// Feed a declined invitation (abandonment) into the engine.
    pub(crate) fn record_abandonment(&self, party: &str, clock: &SimClock) {
        self.engine
            .record(party, Outcome::Abandonment, clock.elapsed());
    }

    /// Feed a transport fault-timeout (e.g. netsim-injected) into the
    /// engine.
    pub(crate) fn record_fault_timeout(&self, party: &str, clock: &SimClock) {
        self.engine
            .record(party, Outcome::FaultTimeout, clock.elapsed());
    }
}

/// [`form_vo`](crate::form_vo) with reputation-gated admission: candidates
/// are queued by trust band and negotiated with their banded strategy;
/// outcomes feed the scoring engine. With the `TRUST_VO_ADMISSION`
/// kill-switch off, identical to `form_vo` with `fallback`.
#[allow(clippy::too_many_arguments)]
pub fn form_vo_admitted(
    contract: Contract,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
    registry: &ServiceRegistry,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    clock: &SimClock,
    fallback: Strategy,
    admission: &AdmissionControl,
) -> Result<FormedVo, VoError> {
    if !admission_enabled() {
        return crate::formation::form_vo(
            contract, initiator, providers, registry, mailboxes, reputation, clock, fallback,
        );
    }
    let hooks = AdmissionHooks::snapshot(admission, providers, fallback, clock.elapsed());
    form_vo_impl(
        contract,
        initiator,
        providers,
        registry,
        mailboxes,
        reputation,
        clock,
        fallback,
        TnSource::Live(None),
        Some(&hooks),
    )
}

/// [`form_vo_parallel`](crate::form_vo_parallel) with reputation-gated
/// admission. Speculation and replay share one formation-start score
/// snapshot, so the result is identical to [`form_vo_admitted`] with the
/// same inputs.
#[allow(clippy::too_many_arguments)]
pub fn form_vo_admitted_parallel(
    contract: Contract,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
    registry: &ServiceRegistry,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    clock: &SimClock,
    fallback: Strategy,
    admission: &AdmissionControl,
    cache: &ConcurrentSequenceCache,
    workers: usize,
) -> Result<FormedVo, VoError> {
    if !admission_enabled() {
        return crate::formation::form_vo_parallel(
            contract, initiator, providers, registry, mailboxes, reputation, clock, fallback,
            cache, workers,
        );
    }
    let hooks = AdmissionHooks::snapshot(admission, providers, fallback, clock.elapsed());
    form_vo_parallel_impl(
        contract,
        initiator,
        providers,
        registry,
        mailboxes,
        reputation,
        clock,
        fallback,
        cache,
        workers,
        Some(&hooks),
    )
}

/// [`form_vo_resilient`](crate::form_vo_resilient) with reputation-gated
/// admission. On top of the in-process drivers' outcome feed, transport
/// exhaustion — the netsim-injected timeout path — is recorded as a
/// fault-timeout before the formation aborts.
#[allow(clippy::too_many_arguments)]
pub fn form_vo_resilient_admitted<T: Transport + ?Sized>(
    contract: Contract,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
    registry: &ServiceRegistry,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    transport: &T,
    service_name: &str,
    fallback: Strategy,
    retry: &RetryPolicy,
    resume: &ResumePolicy,
    seed: u64,
    admission: &AdmissionControl,
) -> Result<(FormedVo, FormationResilience), VoError> {
    if !admission_enabled() {
        return crate::resilient::form_vo_resilient(
            contract,
            initiator,
            providers,
            registry,
            mailboxes,
            reputation,
            transport,
            service_name,
            fallback,
            retry,
            resume,
            seed,
        );
    }
    let hooks =
        AdmissionHooks::snapshot(admission, providers, fallback, transport.clock().elapsed());
    form_vo_resilient_impl(
        contract,
        initiator,
        providers,
        registry,
        mailboxes,
        reputation,
        transport,
        service_name,
        fallback,
        retry,
        resume,
        seed,
        Some(&hooks),
    )
}

/// [`form_vo_resilient_parallel`](crate::form_vo_resilient_parallel) with
/// reputation-gated admission; fan-out and replay share one
/// formation-start score snapshot.
#[allow(clippy::too_many_arguments)]
pub fn form_vo_resilient_parallel_admitted<T: Transport + Sync + ?Sized>(
    contract: Contract,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
    registry: &ServiceRegistry,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    transport: &T,
    service_name: &str,
    fallback: Strategy,
    retry: &RetryPolicy,
    resume: &ResumePolicy,
    seed: u64,
    workers: usize,
    admission: &AdmissionControl,
) -> Result<(FormedVo, FormationResilience), VoError> {
    if !admission_enabled() {
        return crate::resilient::form_vo_resilient_parallel(
            contract,
            initiator,
            providers,
            registry,
            mailboxes,
            reputation,
            transport,
            service_name,
            fallback,
            retry,
            resume,
            seed,
            workers,
        );
    }
    let hooks =
        AdmissionHooks::snapshot(admission, providers, fallback, transport.clock().elapsed());
    form_vo_resilient_parallel_impl(
        contract,
        initiator,
        providers,
        registry,
        mailboxes,
        reputation,
        transport,
        service_name,
        fallback,
        retry,
        resume,
        seed,
        workers,
        Some(&hooks),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::Role;
    use crate::registry::ResourceDescription;
    use trust_vo_credential::{CredentialAuthority, TimeRange, Timestamp};
    use trust_vo_journal::Journal;
    use trust_vo_negotiation::Party;
    use trust_vo_policy::{DisclosurePolicy, PolicySet, Resource, Term};
    use trust_vo_soa::simclock::CostModel;

    fn clock() -> SimClock {
        SimClock::new(
            CostModel::paper_testbed(),
            Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0),
        )
    }

    /// The formation test world: Shady Co advertises higher quality but
    /// fails the trust negotiation; Aerospace passes.
    fn world() -> (
        Contract,
        ServiceProvider,
        BTreeMap<String, ServiceProvider>,
        ServiceRegistry,
    ) {
        let mut ca = CredentialAuthority::new("AAA");
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));

        let mut initiator_party = Party::new("Aircraft");
        let mut good = Party::new("Aerospace");
        let quality = ca
            .issue(
                "WebDesignerQuality",
                "Aerospace",
                good.keys.public,
                vec![],
                window,
            )
            .unwrap();
        good.profile.add(quality);
        good.trust_root(ca.public_key());
        initiator_party.trust_root(ca.public_key());
        let bad = Party::new("Shady Co");

        let mut contract = Contract::new("AircraftOptimization", "low emissions")
            .with_role(Role::new("DesignPortal", "design-db", "ISO 9000"));
        let mut policies = PolicySet::new();
        policies.add(DisclosurePolicy::rule(
            "vo-p1",
            Resource::service("VoMembership"),
            vec![Term::of_type("WebDesignerQuality")],
        ));
        contract.set_role_policies("DesignPortal", policies);

        let mut registry = ServiceRegistry::new();
        registry.publish(ResourceDescription::new("Shady Co", "design-db", "x", 0.99));
        registry.publish(ResourceDescription::new("Aerospace", "design-db", "x", 0.9));

        let mut providers = BTreeMap::new();
        providers.insert("Aerospace".to_owned(), ServiceProvider::new(good));
        providers.insert("Shady Co".to_owned(), ServiceProvider::new(bad));
        (
            contract,
            ServiceProvider::new(initiator_party),
            providers,
            registry,
        )
    }

    fn member_summary(vo: &FormedVo) -> Vec<(String, String, u64)> {
        vo.members()
            .iter()
            .map(|m| (m.provider.clone(), m.role.clone(), m.certificate.serial))
            .collect()
    }

    #[test]
    fn control_maps_scores_to_bands_and_strategies() {
        let control = AdmissionControl::default();
        let now = SimDuration::ZERO;
        // Unknown parties sit at the prior: Standard.
        assert_eq!(control.strategy_for("Ghost", now), Strategy::Standard);
        control
            .engine()
            .seed([("Saint", 0.9), ("Crook", 0.05)], now);
        assert_eq!(control.band_for("Saint", now), TrustBand::Trusting);
        assert_eq!(control.strategy_for("Saint", now), Strategy::Trusting);
        assert_eq!(
            control.strategy_for("Crook", now),
            Strategy::StrongSuspicious
        );
    }

    #[test]
    fn seeding_from_the_ledger_reuses_its_scores() {
        let mut ledger = ReputationLedger::new();
        ledger.record_violation("Shady Co");
        ledger.record_success("Aerospace");
        let control = AdmissionControl::default();
        control.seed_from_ledger(&ledger, SimDuration::ZERO);
        assert_eq!(
            control.engine().score("Shady Co", SimDuration::ZERO),
            ledger.get("Shady Co")
        );
        // One violation from the prior: 0.3, the Suspicious band.
        assert_eq!(
            control.band_for("Shady Co", SimDuration::ZERO),
            TrustBand::Suspicious
        );
    }

    #[test]
    fn admitted_formation_with_fresh_engine_matches_plain() {
        // Every candidate sits at the prior (Standard band ⇒ the same
        // Standard strategy; equal scores ⇒ the same quality ordering), so
        // the admitted driver must reproduce the plain one exactly.
        let (contract, initiator, providers, registry) = world();

        let plain_clock = clock();
        let plain = crate::formation::form_vo(
            contract.clone(),
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &plain_clock,
            Strategy::Standard,
        )
        .unwrap();

        let admitted_clock = clock();
        let control = AdmissionControl::default();
        let admitted = form_vo_admitted(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &admitted_clock,
            Strategy::Standard,
            &control,
        )
        .unwrap();

        assert_eq!(member_summary(&plain), member_summary(&admitted));
        assert_eq!(plain_clock.elapsed(), admitted_clock.elapsed());
        // The faulty join fed the engine: Shady Co failed, Aerospace won.
        assert_eq!(control.engine().events_for("Shady Co"), 1);
        assert_eq!(control.engine().events_for("Aerospace"), 1);
        assert!(control.engine().score("Shady Co", admitted_clock.elapsed()) < 0.5);
        assert!(
            control
                .engine()
                .score("Aerospace", admitted_clock.elapsed())
                > 0.5
        );
    }

    #[test]
    fn low_scored_party_is_demoted_in_the_admission_queue() {
        // Shady Co advertises the higher quality, but its near-floor score
        // drops it to the StrongSuspicious band — so Aerospace is tried
        // (and admitted) first and Shady Co is never negotiated at all.
        let (contract, initiator, providers, registry) = world();
        let control = AdmissionControl::default();
        control
            .engine()
            .seed([("Shady Co", 0.05)], SimDuration::ZERO);
        let clock = clock();
        let mut reputation = ReputationLedger::new();
        let vo = form_vo_admitted(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut reputation,
            &clock,
            Strategy::Standard,
            &control,
        )
        .unwrap();
        assert!(vo.is_member("Aerospace"));
        // Never attempted: no ledger movement, no engine events.
        assert_eq!(reputation.get("Shady Co"), 0.5);
        assert_eq!(control.engine().events_for("Shady Co"), 0);
    }

    #[test]
    fn serial_parallel_and_resumed_scores_agree_after_faulty_join() {
        let (contract, initiator, providers, registry) = world();

        // Serial, with a journal capturing every score mutation.
        let journal = Arc::new(Journal::in_memory());
        let serial_control = AdmissionControl::default();
        serial_control.engine().attach_journal(journal.clone());
        let serial_clock = clock();
        let mut serial_rep = ReputationLedger::new();
        let serial = form_vo_admitted(
            contract.clone(),
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut serial_rep,
            &serial_clock,
            Strategy::Standard,
            &serial_control,
        )
        .unwrap();

        // Parallel, fresh engine.
        let parallel_control = AdmissionControl::default();
        let parallel_clock = clock();
        let mut parallel_rep = ReputationLedger::new();
        let cache = ConcurrentSequenceCache::new();
        let parallel = form_vo_admitted_parallel(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut parallel_rep,
            &parallel_clock,
            Strategy::Standard,
            &parallel_control,
            &cache,
            4,
        )
        .unwrap();

        assert_eq!(member_summary(&serial), member_summary(&parallel));
        assert_eq!(serial_clock.elapsed(), parallel_clock.elapsed());
        assert_eq!(serial_rep, parallel_rep);
        assert_eq!(
            serial_control.engine().snapshot(),
            parallel_control.engine().snapshot()
        );

        // Resumed: replay the journal into a fresh engine — bit-identical
        // scores, and the same events.
        let replay = journal.replay();
        assert!(!replay.truncated);
        let resumed = AdmissionControl::default();
        resumed.engine().restore_from_facts(&replay.facts);
        assert_eq!(
            resumed.engine().snapshot(),
            serial_control.engine().snapshot()
        );
        assert_eq!(
            resumed.engine().events_for("Shady Co"),
            serial_control.engine().events_for("Shady Co")
        );
        assert_eq!(
            resumed.engine().events_for("Aerospace"),
            serial_control.engine().events_for("Aerospace")
        );
    }

    #[test]
    fn declined_invitation_is_scored_as_abandonment() {
        let (contract, initiator, mut providers, registry) = world();
        providers.insert(
            "Aerospace".to_owned(),
            ServiceProvider::new(providers.get("Aerospace").unwrap().party.clone()).declining(),
        );
        let control = AdmissionControl::default();
        let clock = clock();
        let err = form_vo_admitted(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &clock,
            Strategy::Standard,
            &control,
        )
        .unwrap_err();
        assert!(matches!(err, VoError::RoleUnfilled { .. }));
        // The decliner was scored down by the abandonment delta; the
        // paper's ledger (which has no such outcome) never saw it.
        let now = clock.elapsed();
        assert!(
            (control.engine().score("Aerospace", now)
                - (0.5 + control.engine().config().abandonment_delta))
                .abs()
                < 1e-12
        );
    }

    /// A transport that refuses every call: every negotiation dies to
    /// transport exhaustion.
    struct DeadNet(SimClock);
    impl Transport for DeadNet {
        fn call(
            &self,
            _service: &str,
            _request: &trust_vo_soa::Envelope,
        ) -> Result<trust_vo_soa::Envelope, trust_vo_soa::Fault> {
            Err(trust_vo_soa::Fault::transport("Timeout", "black hole"))
        }
        fn clock(&self) -> &SimClock {
            &self.0
        }
    }

    #[test]
    fn transport_exhaustion_is_scored_as_fault_timeout() {
        let (contract, initiator, providers, registry) = world();
        let control = AdmissionControl::default();
        let net = DeadNet(clock());
        let err = form_vo_resilient_admitted(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &net,
            "tn",
            Strategy::Standard,
            &trust_vo_soa::RetryPolicy::none(),
            &trust_vo_soa::ResumePolicy::none(),
            1,
            &control,
        )
        .unwrap_err();
        assert!(matches!(err, VoError::Transport(_)), "got {err:?}");
        // The first queued candidate (Shady Co: higher quality, same
        // Standard band) took the fault-timeout hit before the abort.
        let now = net.clock().elapsed();
        assert!(
            (control.engine().score("Shady Co", now)
                - (0.5 + control.engine().config().fault_timeout_delta))
                .abs()
                < 1e-12
        );
        assert_eq!(control.engine().events_for("Shady Co"), 1);
    }
}
