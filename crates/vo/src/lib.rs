//! The VO Management toolkit with integrated trust negotiation.
//!
//! Implements the five lifecycle phases of §2 — Preparation,
//! Identification, Formation, Operation, Dissolution — and the three
//! TN interaction points of §5.1:
//!
//! * **Identification**: the VO Initiator authors per-role disclosure
//!   policies for the upcoming negotiations.
//! * **Formation**: the Initiator invites candidates; acceptance triggers a
//!   *mutual* trust negotiation; success yields an X.509v2 membership
//!   certificate carrying the VO public key; failure removes the candidate
//!   and the Initiator "looks for other potential members".
//! * **Operation**: members interact under the contract's collaboration
//!   rules; credential expiry or revocation triggers re-negotiation whose
//!   result "is not a credential, but … an authorization to execute the
//!   next VO operations"; contract violations lower reputation and can
//!   lead to member replacement (again via TN).
//!
//! Modules: [`contract`] (roles, requirements, collaboration rules),
//! [`registry`] (the Preparation-phase public repository), [`member`]
//! (service providers and their editions), [`mailbox`] (invitations),
//! [`reputation`], [`lifecycle`] (the phase state machine), [`formation`],
//! [`operation`], [`dissolution`], [`toolkit`] (Host/Initiator/Member
//! edition facade), and [`scenario`] (the Aircraft Optimization VO of §3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admitted;
pub mod contract;
pub mod dissolution;
pub mod error;
pub mod formation;
pub mod lifecycle;
pub mod mailbox;
pub mod member;
pub mod operation;
pub mod persist;
pub mod registry;
pub mod reputation;
pub mod resilient;
pub mod scenario;
pub mod service;
pub mod toolkit;
pub mod workflow;

pub use admitted::{
    form_vo_admitted, form_vo_admitted_parallel, form_vo_resilient_admitted,
    form_vo_resilient_parallel_admitted, AdmissionControl,
};
pub use contract::{CollaborationRule, Contract, Role};
pub use error::VoError;
pub use formation::{
    audit_members, create_vo, form_vo, form_vo_cached, form_vo_parallel, join_member, FormedVo,
};
pub use lifecycle::{Phase, VoLifecycle};
pub use member::{MemberRecord, ServiceProvider};
pub use registry::{ResourceDescription, ServiceRegistry};
pub use reputation::ReputationLedger;
pub use resilient::{
    controller_name, form_vo_resilient, form_vo_resilient_parallel, register_formation_parties,
    FormationResilience,
};
pub use scenario::AircraftScenario;
pub use toolkit::VoToolkit;
