//! Formation driven through the TN *web service* over an unreliable
//! transport (paper §6: the toolkit invokes trust negotiation "as a web
//! service when needed").
//!
//! [`form_vo`](crate::form_vo) negotiates in-process; the functions here
//! instead route every trust negotiation through a
//! [`TnService`] behind any [`Transport`] — the bare
//! [`ServiceBus`](trust_vo_soa::ServiceBus) or the fault-injecting
//! `trust-vo-netsim` wrapper — using the resilient client driver
//! (per-call retry with capped backoff, plus checkpointed negotiation
//! resume when an endpoint crashes mid-exchange).
//!
//! The admission *decision procedure* — candidate ranking, attempt order,
//! reputation updates, GUI charges, certificate issue — is the same
//! `join_attempt` the in-process path uses; only the verdict source
//! differs. Per-role disclosure policies live in a dedicated controller
//! identity per role (see [`register_formation_parties`]), mirroring how
//! the paper's initiator authors "policies … for the specific VO and in
//! particular for the roles" (§5.1).

use std::collections::{BTreeMap, HashMap, HashSet};

use trust_vo_negotiation::{NegotiationError, Strategy};
use trust_vo_obs::{Collector, SpanGuard, SpanLink};
use trust_vo_soa::shard::{run_sharded, Backpressure, ShardConfig};
use trust_vo_soa::simclock::CostKind;
use trust_vo_soa::{
    run_negotiation_resilient, Fault, ResilientRun, ResumePolicy, RetryPolicy, TnService, Transport,
};

/// Per-shard queue bound for the formation fan-out: deep enough that the
/// submitter rarely stalls, small enough that `bus.queue_depth` stays an
/// honest load signal.
const FAN_OUT_QUEUE_DEPTH: usize = 8;

use crate::admitted::AdmissionHooks;
use crate::contract::Contract;
use crate::error::VoError;
use crate::formation::{
    audit_members, create_vo, initiator_party_for_role, join_attempt, FormedVo, TnAction,
};
use crate::lifecycle::Phase;
use crate::mailbox::MailboxSystem;
use crate::member::ServiceProvider;
use crate::registry::ServiceRegistry;
use crate::reputation::ReputationLedger;

/// Recovery work the transport-driven formation performed, summed over
/// every trust negotiation it ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FormationResilience {
    /// Negotiations completed through the service.
    pub negotiations: u64,
    /// Transport-level call retries.
    pub retries: u64,
    /// Sessions resumed from a durable checkpoint.
    pub resumes: u64,
    /// Sessions restarted from phase 1.
    pub restarts: u64,
}

impl FormationResilience {
    fn absorb(&mut self, run: &ResilientRun) {
        self.negotiations += 1;
        self.retries += run.retries;
        self.resumes += run.resumes;
        self.restarts += run.restarts;
    }
}

/// The service-registry name of the initiator's per-role controller
/// identity.
pub fn controller_name(initiator: &str, role: &str) -> String {
    format!("{initiator}/{role}")
}

/// Registers everything the TN service needs to arbitrate this
/// formation: one controller identity per contract role (the initiator's
/// party with that role's disclosure policies merged in) and every
/// candidate provider under its own name.
pub fn register_formation_parties(
    service: &TnService,
    contract: &Contract,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
) {
    for role in &contract.roles {
        let mut controller = initiator_party_for_role(initiator, contract, &role.name);
        controller.name = controller_name(initiator.name(), &role.name);
        service.register_party(controller);
    }
    for provider in providers.values() {
        service.register_party(provider.party.clone());
    }
}

/// FNV-1a over a name pair: a stable per-(role, candidate) word for
/// deriving idempotency-key seeds.
fn pair_seed(seed: u64, role: &str, candidate: &str) -> u64 {
    let mut h: u64 = seed ^ 0xCBF2_9CE4_8422_2325;
    for b in role
        .as_bytes()
        .iter()
        .chain([0xFFu8].iter())
        .chain(candidate.as_bytes())
    {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Classify a service fault: transport exhaustion aborts the formation,
/// anything else is that candidate's negative verdict.
fn verdict_from_fault(fault: Fault) -> Result<TnAction<'static>, VoError> {
    if fault.is_transport() {
        return Err(VoError::Transport(fault));
    }
    Ok(TnAction::External(Err(NegotiationError::Interrupted {
        reason: format!("[{}] {}", fault.code, fault.reason),
    })))
}

/// A verdict-table key: (role name, provider name).
type PairKey = (String, String);

/// Opens the per-formation root span for a resilient drive: a fresh
/// trace is minted so every negotiation, attempt, and bus-side span of
/// this formation hangs off one causal tree.
fn formation_root(obs: &Collector, contract: &Contract) -> SpanGuard {
    let mut span = obs.span_linked(
        "formation.form_vo_resilient",
        SpanLink {
            trace_id: obs.new_trace_id(),
            parent: None,
        },
    );
    if span.id().is_some() {
        span.field("vo", contract.vo_name.as_str());
        span.field("roles", contract.roles.len());
    }
    span
}

/// The shared decision procedure: the serial Formation loop with each
/// accepting candidate's trust-negotiation verdict supplied by `verdict`
/// (which receives the formation root's trace link, so externally-driven
/// negotiations can parent under it). The caller owns the root span —
/// the parallel driver must open it before its fan-out.
#[allow(clippy::too_many_arguments)]
fn admit_with<'a>(
    contract: Contract,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
    registry: &ServiceRegistry,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    clock: &trust_vo_soa::SimClock,
    root_span: &mut SpanGuard,
    admission: Option<&AdmissionHooks<'_>>,
    mut verdict: impl FnMut(&str, &ServiceProvider, SpanLink) -> Result<TnAction<'a>, VoError>,
) -> Result<FormedVo, VoError> {
    let mut vo = create_vo(contract, initiator, clock);
    let obs = clock.collector();
    if admission.is_some() && root_span.id().is_some() {
        root_span.field("admission", true);
    }
    let root_link = root_span.link();
    let roles: Vec<_> = vo.contract.roles.clone();
    for role in &roles {
        clock.charge(CostKind::DbQuery);
        let mut candidates: Vec<&crate::registry::ResourceDescription> =
            registry.find_by_capability(&role.capability);
        if candidates.is_empty() {
            root_span.field("outcome", "no-candidates");
            return Err(VoError::NoCandidates {
                role: role.name.clone(),
            });
        }
        match admission {
            None => candidates.sort_by(|a, b| {
                let score = |d: &crate::registry::ResourceDescription| {
                    d.quality * reputation.get(&d.provider)
                };
                score(b)
                    .partial_cmp(&score(a))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.provider.cmp(&b.provider))
            }),
            Some(hooks) => {
                candidates.sort_by_cached_key(|d| hooks.queue_key(&d.provider, d.quality))
            }
        }
        let mut tried = Vec::new();
        let mut assigned = false;
        for description in candidates {
            let Some(candidate) = providers.get(&description.provider) else {
                continue;
            };
            tried.push(candidate.name().to_owned());
            // Declining candidates turn back inside join_attempt before
            // the verdict is consumed, so don't negotiate for them.
            let action = if candidate.accepts_invitations {
                verdict(&role.name, candidate, root_link)?
            } else {
                TnAction::External(Ok(()))
            };
            match join_attempt(
                &mut vo, initiator, candidate, &role.name, mailboxes, reputation, clock, action,
                root_link, admission,
            ) {
                Ok(_) => {
                    assigned = true;
                    break;
                }
                Err(_) => continue, // "looks for other potential members"
            }
        }
        if !assigned {
            root_span.field("outcome", "role-unfilled");
            return Err(VoError::RoleUnfilled {
                role: role.name.clone(),
                tried,
            });
        }
    }
    audit_members(&vo)?;
    {
        let _lifecycle = obs.span_linked("formation.lifecycle", root_link);
        vo.lifecycle
            .advance_to(Phase::Operation, clock.timestamp())
            .expect("formation advances to operation");
    }
    root_span.field("outcome", "ok");
    root_span.field("members", vo.members.len());
    Ok(vo)
}

/// Run the Formation phase with every trust negotiation driven through
/// the TN service registered as `service_name` on `transport`.
///
/// Negotiations use the resilient client driver: each SOAP call carries
/// an idempotency key and is retried under `retry`; exhausted budgets and
/// endpoint crashes fall back to checkpointed resume under `resume`. A
/// transport fault that survives both budgets aborts the formation with
/// [`VoError::Transport`]. `seed` parameterizes the per-negotiation
/// idempotency-key streams, so a fixed `(seed, FaultPlan)` pair replays
/// the identical formation.
#[allow(clippy::too_many_arguments)]
pub fn form_vo_resilient<T: Transport + ?Sized>(
    contract: Contract,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
    registry: &ServiceRegistry,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    transport: &T,
    service_name: &str,
    strategy: Strategy,
    retry: &RetryPolicy,
    resume: &ResumePolicy,
    seed: u64,
) -> Result<(FormedVo, FormationResilience), VoError> {
    form_vo_resilient_impl(
        contract,
        initiator,
        providers,
        registry,
        mailboxes,
        reputation,
        transport,
        service_name,
        strategy,
        retry,
        resume,
        seed,
        None,
    )
}

/// [`form_vo_resilient`] with optional admission hooks: each candidate is
/// negotiated with its banded strategy, and transport exhaustion — the
/// netsim-injected fault-timeout path — is recorded into the scoring
/// engine before the formation aborts.
#[allow(clippy::too_many_arguments)]
pub(crate) fn form_vo_resilient_impl<T: Transport + ?Sized>(
    contract: Contract,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
    registry: &ServiceRegistry,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    transport: &T,
    service_name: &str,
    strategy: Strategy,
    retry: &RetryPolicy,
    resume: &ResumePolicy,
    seed: u64,
    admission: Option<&AdmissionHooks<'_>>,
) -> Result<(FormedVo, FormationResilience), VoError> {
    let initiator_name = initiator.name().to_owned();
    let mut stats = FormationResilience::default();
    let mut root_span = formation_root(&transport.clock().collector(), &contract);
    let vo = admit_with(
        contract,
        initiator,
        providers,
        registry,
        mailboxes,
        reputation,
        transport.clock(),
        &mut root_span,
        admission,
        |role, candidate, link| {
            let run = run_negotiation_resilient(
                transport,
                service_name,
                candidate.name(),
                &controller_name(&initiator_name, role),
                "VoMembership",
                admission.map_or(strategy, |hooks| hooks.strategy_for(candidate.name())),
                retry,
                resume,
                pair_seed(seed, role, candidate.name()),
                link,
            );
            match run {
                Ok(run) => {
                    stats.absorb(&run);
                    Ok(TnAction::External(Ok(())))
                }
                Err(fault) => {
                    if fault.is_transport() {
                        // The negotiation died to the network, not to a
                        // verdict: weak negative evidence for the scorer.
                        if let Some(hooks) = admission {
                            hooks.record_fault_timeout(candidate.name(), transport.clock());
                        }
                    } else {
                        // A negative verdict is still a completed
                        // negotiation; only transport exhaustion is not.
                        stats.negotiations += 1;
                    }
                    verdict_from_fault(fault)
                }
            }
        },
    )?;
    Ok((vo, stats))
}

/// [`form_vo_resilient`], with the per-candidate negotiations fanned out
/// over a scoped thread pool before the serial admission replay —
/// the transport-driven analogue of
/// [`form_vo_parallel`](crate::form_vo_parallel).
///
/// Loss/duplication decisions depend only on each call's idempotency-key
/// stream, so with no outage windows in play the parallel run admits the
/// same members and burns the same simulated time as the serial one.
/// (Crash windows fire on whichever call reaches them first and are only
/// deterministic under a serial drive.)
#[allow(clippy::too_many_arguments)]
pub fn form_vo_resilient_parallel<T: Transport + Sync + ?Sized>(
    contract: Contract,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
    registry: &ServiceRegistry,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    transport: &T,
    service_name: &str,
    strategy: Strategy,
    retry: &RetryPolicy,
    resume: &ResumePolicy,
    seed: u64,
    workers: usize,
) -> Result<(FormedVo, FormationResilience), VoError> {
    form_vo_resilient_parallel_impl(
        contract,
        initiator,
        providers,
        registry,
        mailboxes,
        reputation,
        transport,
        service_name,
        strategy,
        retry,
        resume,
        seed,
        workers,
        None,
    )
}

/// [`form_vo_resilient_parallel`] with optional admission hooks: the
/// fan-out negotiates each candidate with its banded strategy (from the
/// same formation-start snapshot the replay uses) and the replay feeds
/// outcomes — including transport fault-timeouts — to the scoring engine.
#[allow(clippy::too_many_arguments)]
pub(crate) fn form_vo_resilient_parallel_impl<T: Transport + Sync + ?Sized>(
    contract: Contract,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
    registry: &ServiceRegistry,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    transport: &T,
    service_name: &str,
    strategy: Strategy,
    retry: &RetryPolicy,
    resume: &ResumePolicy,
    seed: u64,
    workers: usize,
    admission: Option<&AdmissionHooks<'_>>,
) -> Result<(FormedVo, FormationResilience), VoError> {
    // One job per (role, accepting candidate), exactly the pairs the
    // admission loop could ever ask about.
    let mut jobs: Vec<(String, String)> = Vec::new();
    let mut seen: HashSet<PairKey> = HashSet::new();
    for role in &contract.roles {
        for description in registry.find_by_capability(&role.capability) {
            let Some(candidate) = providers.get(&description.provider) else {
                continue;
            };
            if !candidate.accepts_invitations {
                continue;
            }
            if seen.insert((role.name.clone(), candidate.name().to_owned())) {
                jobs.push((role.name.clone(), candidate.name().to_owned()));
            }
        }
    }

    let initiator_name = initiator.name().to_owned();
    // The root span must exist before the fan-out so every concurrent
    // negotiation parents under the same formation trace.
    let mut root_span = formation_root(&transport.clock().collector(), &contract);
    let root_link = root_span.link();
    // Fan out over the sharded work-stealing executor: one job per
    // (role, candidate) pair, each dispatching its bus calls inline on
    // its shard worker. `Block` backpressure means every pair runs —
    // flow control, never a shed.
    let workers = workers.max(1).min(jobs.len().max(1));
    let shard_jobs: Vec<_> = jobs
        .iter()
        .map(|(role, candidate)| {
            let initiator_name = &initiator_name;
            move || {
                let run = run_negotiation_resilient(
                    transport,
                    service_name,
                    candidate,
                    &controller_name(initiator_name, role),
                    "VoMembership",
                    admission.map_or(strategy, |hooks| hooks.strategy_for(candidate)),
                    retry,
                    resume,
                    pair_seed(seed, role, candidate),
                    root_link,
                );
                ((role.clone(), candidate.clone()), run)
            }
        })
        .collect();
    let fan_out = run_sharded(
        ShardConfig::new(workers, FAN_OUT_QUEUE_DEPTH),
        transport.clock(),
        shard_jobs,
        Backpressure::Block,
    );

    let mut stats = FormationResilience::default();
    let mut table: HashMap<PairKey, Result<ResilientRun, Fault>> =
        fan_out.results.into_iter().flatten().collect();
    let vo = admit_with(
        contract,
        initiator,
        providers,
        registry,
        mailboxes,
        reputation,
        transport.clock(),
        &mut root_span,
        admission,
        |role, candidate, _link| {
            let key = (role.to_owned(), candidate.name().to_owned());
            match table
                .remove(&key)
                .expect("fan-out covered every accepting candidate")
            {
                Ok(run) => {
                    stats.absorb(&run);
                    Ok(TnAction::External(Ok(())))
                }
                Err(fault) => {
                    if fault.is_transport() {
                        // Recorded at the serial replay position, so the
                        // parallel drive scores exactly like the serial
                        // one.
                        if let Some(hooks) = admission {
                            hooks.record_fault_timeout(candidate.name(), transport.clock());
                        }
                    } else {
                        // A negative verdict is still a completed
                        // negotiation; only transport exhaustion is not.
                        stats.negotiations += 1;
                    }
                    verdict_from_fault(fault)
                }
            }
        },
    )?;
    Ok((vo, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::Role;
    use crate::form_vo;
    use crate::registry::ResourceDescription;
    use std::sync::Arc;
    use trust_vo_credential::{CredentialAuthority, TimeRange, Timestamp};
    use trust_vo_negotiation::Party;
    use trust_vo_policy::{DisclosurePolicy, PolicySet, Resource, Term};
    use trust_vo_soa::simclock::{CostModel, SimClock};
    use trust_vo_soa::ServiceBus;
    use trust_vo_store::Database;

    fn clock() -> SimClock {
        SimClock::new(
            CostModel::paper_testbed(),
            Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0),
        )
    }

    fn world() -> (
        Contract,
        ServiceProvider,
        BTreeMap<String, ServiceProvider>,
        ServiceRegistry,
    ) {
        let mut ca = CredentialAuthority::new("AAA");
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));

        let mut initiator_party = Party::new("Aircraft");
        let mut good = Party::new("Aerospace");
        let quality = ca
            .issue(
                "WebDesignerQuality",
                "Aerospace",
                good.keys.public,
                vec![],
                window,
            )
            .unwrap();
        good.profile.add(quality);
        good.trust_root(ca.public_key());
        initiator_party.trust_root(ca.public_key());
        let bad = Party::new("Shady Co");

        let mut contract = Contract::new("AircraftOptimization", "low emissions")
            .with_role(Role::new("DesignPortal", "design-db", "ISO 9000"));
        let mut policies = PolicySet::new();
        policies.add(DisclosurePolicy::rule(
            "vo-p1",
            Resource::service("VoMembership"),
            vec![Term::of_type("WebDesignerQuality")],
        ));
        contract.set_role_policies("DesignPortal", policies);

        let mut registry = ServiceRegistry::new();
        registry.publish(ResourceDescription::new("Shady Co", "design-db", "x", 0.99));
        registry.publish(ResourceDescription::new("Aerospace", "design-db", "x", 0.9));

        let mut providers = BTreeMap::new();
        providers.insert("Aerospace".to_owned(), ServiceProvider::new(good));
        providers.insert("Shady Co".to_owned(), ServiceProvider::new(bad));
        (
            contract,
            ServiceProvider::new(initiator_party),
            providers,
            registry,
        )
    }

    fn service_bus(
        contract: &Contract,
        initiator: &ServiceProvider,
        providers: &BTreeMap<String, ServiceProvider>,
    ) -> ServiceBus {
        let clock = clock();
        let bus = ServiceBus::new(clock.clone());
        let svc = TnService::new(clock, Database::new());
        register_formation_parties(&svc, contract, initiator, providers);
        bus.register("tn", Arc::new(svc));
        bus
    }

    #[test]
    fn resilient_formation_admits_the_same_members_as_in_process() {
        let (contract, initiator, providers, registry) = world();

        let in_process_clock = clock();
        let in_process = form_vo(
            contract.clone(),
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &in_process_clock,
            Strategy::Standard,
        )
        .unwrap();

        let bus = service_bus(&contract, &initiator, &providers);
        let (vo, stats) = form_vo_resilient(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &bus,
            "tn",
            Strategy::Standard,
            &RetryPolicy::standard(),
            &ResumePolicy::standard(),
            42,
        )
        .unwrap();

        let summary = |vo: &FormedVo| {
            vo.members()
                .iter()
                .map(|m| (m.provider.clone(), m.role.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(summary(&in_process), summary(&vo));
        // Two candidates negotiated (Shady Co failed, Aerospace passed);
        // nothing needed recovery on a perfect bus.
        assert_eq!(stats.negotiations, 2);
        assert_eq!(stats.retries + stats.resumes + stats.restarts, 0);
    }

    #[test]
    fn parallel_resilient_formation_matches_serial() {
        let (contract, initiator, providers, registry) = world();

        let serial_bus = service_bus(&contract, &initiator, &providers);
        let mut serial_rep = ReputationLedger::new();
        let (serial_vo, serial_stats) = form_vo_resilient(
            contract.clone(),
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut serial_rep,
            &serial_bus,
            "tn",
            Strategy::Standard,
            &RetryPolicy::standard(),
            &ResumePolicy::standard(),
            42,
        )
        .unwrap();

        let parallel_bus = service_bus(&contract, &initiator, &providers);
        let mut parallel_rep = ReputationLedger::new();
        let (parallel_vo, parallel_stats) = form_vo_resilient_parallel(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut parallel_rep,
            &parallel_bus,
            "tn",
            Strategy::Standard,
            &RetryPolicy::standard(),
            &ResumePolicy::standard(),
            42,
            4,
        )
        .unwrap();

        let summary = |vo: &FormedVo| {
            vo.members()
                .iter()
                .map(|m| (m.provider.clone(), m.role.clone(), m.certificate.serial))
                .collect::<Vec<_>>()
        };
        assert_eq!(summary(&serial_vo), summary(&parallel_vo));
        assert_eq!(serial_stats, parallel_stats);
        assert_eq!(serial_bus.clock().elapsed(), parallel_bus.clock().elapsed());
        assert_eq!(serial_rep.get("Aerospace"), parallel_rep.get("Aerospace"));
    }

    #[test]
    fn unregistered_service_fails_every_candidate() {
        let (contract, initiator, providers, registry) = world();
        // Nothing registered under "tn": every call gets a NoSuchService
        // fault — terminal, surfaced as a failed verdict per candidate.
        let bus = ServiceBus::new(clock());
        let err = form_vo_resilient(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &bus,
            "tn",
            Strategy::Standard,
            &RetryPolicy::standard(),
            &ResumePolicy::none(),
            1,
        )
        .unwrap_err();
        assert!(matches!(err, VoError::RoleUnfilled { .. }), "got {err:?}");
    }

    /// A transport that refuses every call, to exercise the abort path.
    struct DeadNet(SimClock);
    impl Transport for DeadNet {
        fn call(
            &self,
            _service: &str,
            _request: &trust_vo_soa::Envelope,
        ) -> Result<trust_vo_soa::Envelope, Fault> {
            Err(Fault::transport("Timeout", "black hole"))
        }
        fn clock(&self) -> &SimClock {
            &self.0
        }
    }

    #[test]
    fn dead_transport_aborts_formation() {
        let (contract, initiator, providers, registry) = world();
        let err = form_vo_resilient(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut MailboxSystem::new(),
            &mut ReputationLedger::new(),
            &DeadNet(clock()),
            "tn",
            Strategy::Standard,
            &RetryPolicy::none(),
            &ResumePolicy::none(),
            1,
        )
        .unwrap_err();
        assert!(matches!(err, VoError::Transport(_)), "got {err:?}");
    }
}
