//! The Operation phase with integrated trust negotiation (paper §5.1).
//!
//! "TN protocols are also useful in case of long lasting VOs, where
//! credentials used for the VO formation may expire or be revoked before
//! the VO dissolution. … Unlike TN carried out during the formation phase,
//! the result of a TN, in this case is not a credential, but it is an
//! authorization to execute the next VO operations. … A TN is also
//! executed in case of a VO member replacement by following the same
//! protocols of the formation phase."

use crate::error::VoError;
use crate::formation::{charge_negotiation, join_member, FormedVo};
use crate::lifecycle::Phase;
use crate::mailbox::MailboxSystem;
use crate::member::{MemberRecord, ServiceProvider};
use crate::registry::ServiceRegistry;
use crate::reputation::ReputationLedger;
use std::collections::BTreeMap;
use trust_vo_credential::{RevocationList, Timestamp};
use trust_vo_negotiation::{negotiate, NegotiationConfig, Strategy};
use trust_vo_soa::simclock::{CostKind, SimClock};

/// The default reputation threshold below which a member is replaced.
pub const REPLACEMENT_THRESHOLD: f64 = 0.3;

/// The result of an operation-phase TN: not a credential, but permission
/// to proceed with the next VO operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Authorization {
    /// The member granted the authorization.
    pub granted_to: String,
    /// The operation/resource the authorization covers.
    pub resource: String,
    /// When it was granted (simulated time).
    pub at: Timestamp,
}

/// One monitored interaction between members (Fig. 1 arrows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteractionRecord {
    /// Acting member.
    pub from: String,
    /// Target member.
    pub to: String,
    /// What happened.
    pub action: String,
    /// When (simulated time).
    pub at: Timestamp,
    /// Whether monitoring flagged a contract violation.
    pub violation: bool,
}

/// The operation-phase engine: monitoring log plus TN-driven flows.
#[derive(Debug, Default)]
pub struct OperationLog {
    records: Vec<InteractionRecord>,
}

impl OperationLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a monitored interaction. "All the interactions must be
    /// monitored, ruled by security policies and any violation must be
    /// notified" (§2). Violations lower the offender's reputation.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        vo: &FormedVo,
        reputation: &mut ReputationLedger,
        from: &str,
        to: &str,
        action: &str,
        violation: bool,
        at: Timestamp,
    ) -> Result<(), VoError> {
        vo.lifecycle.require(Phase::Operation)?;
        for name in [from, to] {
            if !vo.is_member(name) && name != vo.initiator {
                return Err(VoError::UnknownMember(name.to_owned()));
            }
        }
        self.records.push(InteractionRecord {
            from: from.to_owned(),
            to: to.to_owned(),
            action: action.to_owned(),
            at,
            violation,
        });
        if violation {
            reputation.record_violation(from);
        } else {
            reputation.record_success(from);
        }
        Ok(())
    }

    /// All recorded interactions.
    pub fn records(&self) -> &[InteractionRecord] {
        &self.records
    }

    /// Violations by a given member.
    pub fn violations_by<'a>(
        &'a self,
        member: &'a str,
    ) -> impl Iterator<Item = &'a InteractionRecord> + 'a {
        self.records
            .iter()
            .filter(move |r| r.violation && r.from == member)
    }
}

/// Verify a member's membership certificate at `at` (signature, validity,
/// revocation against the VO's revocation list).
pub fn verify_membership(
    _vo: &FormedVo,
    record: &MemberRecord,
    at: Timestamp,
    crl: &RevocationList,
) -> Result<(), VoError> {
    record
        .certificate
        .verify(at, Some(crl))
        .map_err(|e| VoError::InvalidMembership {
            member: record.provider.clone(),
            detail: e.to_string(),
        })
}

/// An operation-phase trust negotiation between two members: `requester`
/// asks `controller` for `resource`; success yields an [`Authorization`].
#[allow(clippy::too_many_arguments)]
pub fn authorize_operation(
    vo: &FormedVo,
    providers: &BTreeMap<String, ServiceProvider>,
    requester: &str,
    controller: &str,
    resource: &str,
    reputation: &mut ReputationLedger,
    clock: &SimClock,
    strategy: Strategy,
) -> Result<Authorization, VoError> {
    vo.lifecycle.require(Phase::Operation)?;
    for name in [requester, controller] {
        if !vo.is_member(name) && name != vo.initiator {
            return Err(VoError::UnknownMember(name.to_owned()));
        }
    }
    let req_party = &providers
        .get(requester)
        .ok_or_else(|| VoError::UnknownMember(requester.to_owned()))?
        .party;
    let ctl_party = &providers
        .get(controller)
        .ok_or_else(|| VoError::UnknownMember(controller.to_owned()))?
        .party;
    let cfg = NegotiationConfig::new(strategy, clock.timestamp());
    match negotiate(req_party, ctl_party, resource, &cfg) {
        Ok(outcome) => {
            charge_negotiation(clock, &outcome.transcript);
            reputation.record_success(requester);
            Ok(Authorization {
                granted_to: requester.to_owned(),
                resource: resource.to_owned(),
                at: clock.timestamp(),
            })
        }
        Err(e) => {
            reputation.record_failed_negotiation(requester);
            Err(VoError::Negotiation(e))
        }
    }
}

/// Replace the member playing `role` "by following the same protocols of
/// the formation phase" (§5.1): the old member is removed, its certificate
/// revoked, and the registry is searched for a substitute (the old member
/// is excluded from the candidate list).
#[allow(clippy::too_many_arguments)]
pub fn replace_member(
    vo: &mut FormedVo,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
    registry: &ServiceRegistry,
    role: &str,
    crl: &mut RevocationList,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    clock: &SimClock,
    strategy: Strategy,
) -> Result<MemberRecord, VoError> {
    vo.lifecycle.require(Phase::Operation)?;
    let role_def = vo
        .contract
        .role(role)
        .ok_or_else(|| VoError::UnknownRole(role.to_owned()))?
        .clone();
    let old = vo
        .members
        .iter()
        .position(|m| m.role == role)
        .ok_or_else(|| VoError::UnknownRole(role.to_owned()))?;
    let removed = vo.members.remove(old);
    crl.revoke(removed.certificate.revocation_id(), clock.timestamp());
    clock.charge(CostKind::DbQuery); // registry query

    let mut candidates = registry.find_by_capability(&role_def.capability);
    candidates.retain(|d| d.provider != removed.provider);
    candidates.sort_by(|a, b| {
        let score =
            |d: &crate::registry::ResourceDescription| d.quality * reputation.get(&d.provider);
        score(b)
            .partial_cmp(&score(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.provider.cmp(&b.provider))
    });
    if candidates.is_empty() {
        return Err(VoError::NoCandidates {
            role: role.to_owned(),
        });
    }
    let mut tried = Vec::new();
    for description in candidates {
        let Some(candidate) = providers.get(&description.provider) else {
            continue;
        };
        tried.push(candidate.name().to_owned());
        if let Ok(record) = join_member(
            vo,
            initiator,
            candidate,
            role,
            mailboxes,
            reputation,
            clock,
            Some(strategy),
        ) {
            return Ok(record);
        }
    }
    Err(VoError::RoleUnfilled {
        role: role.to_owned(),
        tried,
    })
}

/// Re-issue an expired membership certificate after a successful
/// re-negotiation ("credentials used for the VO formation may expire …
/// a TN is executed to ensure that this certification is still valid").
#[allow(clippy::too_many_arguments)]
pub fn renew_membership(
    vo: &mut FormedVo,
    initiator: &ServiceProvider,
    providers: &BTreeMap<String, ServiceProvider>,
    member: &str,
    mailboxes: &mut MailboxSystem,
    reputation: &mut ReputationLedger,
    clock: &SimClock,
    strategy: Strategy,
) -> Result<MemberRecord, VoError> {
    vo.lifecycle.require(Phase::Operation)?;
    let idx = vo
        .members
        .iter()
        .position(|m| m.provider == member)
        .ok_or_else(|| VoError::UnknownMember(member.to_owned()))?;
    let role = vo.members[idx].role.clone();
    let candidate = providers
        .get(member)
        .ok_or_else(|| VoError::UnknownMember(member.to_owned()))?;
    // Negotiate the renewal first; the old (expiring) record is only
    // retired once the new certificate is in hand.
    let record = join_member(
        vo,
        initiator,
        candidate,
        &role,
        mailboxes,
        reputation,
        clock,
        Some(strategy),
    )?;
    vo.members.remove(idx);
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{Contract, Role};
    use crate::formation::{create_vo, form_vo};
    use crate::registry::ResourceDescription;
    use trust_vo_credential::{CredentialAuthority, TimeRange};
    use trust_vo_negotiation::Party;
    use trust_vo_policy::{DisclosurePolicy, PolicySet, Resource, Term};
    use trust_vo_soa::simclock::{CostModel, SimDuration};

    fn clock() -> SimClock {
        SimClock::new(
            CostModel::paper_testbed(),
            Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0),
        )
    }

    struct World {
        vo: FormedVo,
        initiator: ServiceProvider,
        providers: BTreeMap<String, ServiceProvider>,
        registry: ServiceRegistry,
        mailboxes: MailboxSystem,
        reputation: ReputationLedger,
        clock: SimClock,
    }

    /// Two HPC candidates so replacement has somewhere to go.
    fn world() -> World {
        let mut ca = CredentialAuthority::new("SLACert");
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
        let mut initiator_party = Party::new("Aircraft");
        initiator_party.trust_root(ca.public_key());

        let mut providers = BTreeMap::new();
        for name in ["HPC-A", "HPC-B"] {
            let mut party = Party::new(name);
            let sla = ca
                .issue("HpcSla", name, party.keys.public, vec![], window)
                .unwrap();
            party.profile.add(sla);
            party.trust_root(ca.public_key());
            // Members expose a ControlFile service to each other, gated on
            // membership-ish credential — keep it simply deliverable.
            party.policies.add(DisclosurePolicy::deliv(
                format!("{name}-ctl"),
                Resource::service("ControlFile"),
            ));
            providers.insert(name.to_owned(), ServiceProvider::new(party));
        }

        let mut contract = Contract::new("AircraftOptimization", "low emissions")
            .with_role(Role::new("HPC", "hpc-compute", "SLA"));
        let mut policies = PolicySet::new();
        policies.add(DisclosurePolicy::rule(
            "p",
            Resource::service("VoMembership"),
            vec![Term::of_type("HpcSla")],
        ));
        contract.set_role_policies("HPC", policies);

        let mut registry = ServiceRegistry::new();
        registry.publish(ResourceDescription::new("HPC-A", "hpc-compute", "x", 0.95));
        registry.publish(ResourceDescription::new("HPC-B", "hpc-compute", "x", 0.90));

        let initiator = ServiceProvider::new(initiator_party);
        // The toolkit's provider map includes the initiator itself.
        providers.insert("Aircraft".to_owned(), initiator.clone());
        let clock = clock();
        let mut mailboxes = MailboxSystem::new();
        let mut reputation = ReputationLedger::new();
        let vo = form_vo(
            contract,
            &initiator,
            &providers,
            &registry,
            &mut mailboxes,
            &mut reputation,
            &clock,
            Strategy::Standard,
        )
        .unwrap();
        World {
            vo,
            initiator,
            providers,
            registry,
            mailboxes,
            reputation,
            clock,
        }
    }

    #[test]
    fn interactions_recorded_and_reputation_updates() {
        let mut w = world();
        let mut log = OperationLog::new();
        log.record(
            &w.vo,
            &mut w.reputation,
            "HPC-A",
            "Aircraft",
            "flow solution computed",
            false,
            w.clock.timestamp(),
        )
        .unwrap();
        log.record(
            &w.vo,
            &mut w.reputation,
            "HPC-A",
            "Aircraft",
            "SLA missed",
            true,
            w.clock.timestamp(),
        )
        .unwrap();
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.violations_by("HPC-A").count(), 1);
        // One success (+0.05) + formation success (+0.05) then one violation (-0.2).
        assert!(w.reputation.get("HPC-A") < 0.5);
    }

    #[test]
    fn unknown_member_interaction_rejected() {
        let mut w = world();
        let mut log = OperationLog::new();
        let err = log
            .record(
                &w.vo,
                &mut w.reputation,
                "Ghost",
                "Aircraft",
                "x",
                false,
                w.clock.timestamp(),
            )
            .unwrap_err();
        assert!(matches!(err, VoError::UnknownMember(_)));
    }

    #[test]
    fn authorize_operation_grants_and_charges() {
        let mut w = world();
        let before = w.clock.elapsed();
        let auth = authorize_operation(
            &w.vo,
            &w.providers,
            "Aircraft",
            "HPC-A",
            "ControlFile",
            &mut w.reputation,
            &w.clock,
            Strategy::Standard,
        );
        // Aircraft is the initiator (allowed actor).
        let auth = auth.unwrap();
        assert_eq!(auth.resource, "ControlFile");
        assert!(w.clock.elapsed() >= before);
    }

    #[test]
    fn authorization_requires_operation_phase() {
        let w = world();
        let mut fresh = create_vo(w.vo.contract.clone(), &w.initiator, &w.clock);
        fresh.members = w.vo.members.clone();
        let mut rep = ReputationLedger::new();
        let err = authorize_operation(
            &fresh,
            &w.providers,
            "Aircraft",
            "HPC-A",
            "ControlFile",
            &mut rep,
            &w.clock,
            Strategy::Standard,
        )
        .unwrap_err();
        assert!(matches!(err, VoError::WrongPhase { .. }));
    }

    #[test]
    fn membership_verification_and_revocation() {
        let w = world();
        let record = w.vo.member_for_role("HPC").unwrap();
        let crl = RevocationList::new();
        assert!(verify_membership(&w.vo, record, w.clock.timestamp(), &crl).is_ok());
        let mut crl = RevocationList::new();
        crl.revoke(record.certificate.revocation_id(), w.clock.timestamp());
        let err = verify_membership(&w.vo, record, w.clock.timestamp(), &crl).unwrap_err();
        assert!(matches!(err, VoError::InvalidMembership { .. }));
    }

    #[test]
    fn membership_expires_after_a_year() {
        let w = world();
        let record = w.vo.member_for_role("HPC").unwrap();
        let crl = RevocationList::new();
        // Advance the virtual calendar 2 years.
        w.clock
            .advance(SimDuration::from_millis(2 * 365 * 24 * 3600 * 1000));
        let err = verify_membership(&w.vo, record, w.clock.timestamp(), &crl).unwrap_err();
        assert!(matches!(err, VoError::InvalidMembership { .. }));
    }

    #[test]
    fn replacement_swaps_in_next_candidate() {
        let mut w = world();
        assert!(w.vo.is_member("HPC-A"));
        let mut crl = RevocationList::new();
        let record = replace_member(
            &mut w.vo,
            &w.initiator,
            &w.providers,
            &w.registry,
            "HPC",
            &mut crl,
            &mut w.mailboxes,
            &mut w.reputation,
            &w.clock,
            Strategy::Standard,
        )
        .unwrap();
        assert_eq!(record.provider, "HPC-B");
        assert!(w.vo.is_member("HPC-B"));
        assert!(!w.vo.is_member("HPC-A"));
        assert_eq!(crl.len(), 1);
    }

    #[test]
    fn renew_membership_reissues_certificate() {
        let mut w = world();
        let old_serial = w.vo.member_for_role("HPC").unwrap().certificate.serial;
        let record = renew_membership(
            &mut w.vo,
            &w.initiator,
            &w.providers,
            "HPC-A",
            &mut w.mailboxes,
            &mut w.reputation,
            &w.clock,
            Strategy::Standard,
        )
        .unwrap();
        assert_eq!(record.provider, "HPC-A");
        assert_ne!(record.certificate.serial, old_serial);
        assert_eq!(w.vo.members().len(), 1);
    }

    #[test]
    fn replacement_threshold_flow() {
        let mut w = world();
        let mut log = OperationLog::new();
        for _ in 0..2 {
            log.record(
                &w.vo,
                &mut w.reputation,
                "HPC-A",
                "Aircraft",
                "violation",
                true,
                w.clock.timestamp(),
            )
            .unwrap();
        }
        assert!(w
            .reputation
            .needs_replacement("HPC-A", REPLACEMENT_THRESHOLD));
        assert!(!w
            .reputation
            .needs_replacement("HPC-B", REPLACEMENT_THRESHOLD));
    }
}
