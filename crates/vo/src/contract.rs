//! Collaboration contracts.
//!
//! "A VO is typically initiated by one or more organizations, also in
//! charge of establishing collaboration policies through formally
//! specified collaboration contracts … The contract states the roles and
//! the requirements that each member has to fulfill in order to be part of
//! the VO. In addition, the contract specifies the collaboration rules the
//! VO members have to follow to reach the business goal." (§2)

use trust_vo_policy::PolicySet;

/// A role to be covered in the VO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Role {
    /// Role name, e.g. `DesignPartnerWebPortal`.
    pub name: String,
    /// The registry capability a provider must advertise to be a candidate.
    pub capability: String,
    /// Human-readable requirements from the contract.
    pub requirements: String,
}

impl Role {
    /// Construct a role.
    pub fn new(
        name: impl Into<String>,
        capability: impl Into<String>,
        requirements: impl Into<String>,
    ) -> Self {
        Role {
            name: name.into(),
            capability: capability.into(),
            requirements: requirements.into(),
        }
    }
}

/// A collaboration rule members must follow during the operation phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollaborationRule {
    /// Rule identifier.
    pub id: String,
    /// What the rule demands.
    pub description: String,
    /// The roles it applies to (empty = all members).
    pub applies_to: Vec<String>,
}

impl CollaborationRule {
    /// Construct a rule applying to all members.
    pub fn global(id: impl Into<String>, description: impl Into<String>) -> Self {
        CollaborationRule {
            id: id.into(),
            description: description.into(),
            applies_to: Vec::new(),
        }
    }

    /// Construct a rule scoped to specific roles.
    pub fn for_roles(
        id: impl Into<String>,
        description: impl Into<String>,
        roles: &[&str],
    ) -> Self {
        CollaborationRule {
            id: id.into(),
            description: description.into(),
            applies_to: roles.iter().map(|r| (*r).to_owned()).collect(),
        }
    }

    /// Does the rule bind a member playing `role`?
    pub fn binds(&self, role: &str) -> bool {
        self.applies_to.is_empty() || self.applies_to.iter().any(|r| r == role)
    }
}

/// The collaboration contract the VO Initiator authors in the
/// Identification phase. With TN integration, the Initiator also "locally
/// defines the disclosure policies to be used during the TN with potential
/// members … created for the specific VO and in particular for the roles"
/// (§5.1) — they are attached per role here.
#[derive(Debug, Clone, PartialEq)]
pub struct Contract {
    /// The VO name.
    pub vo_name: String,
    /// The business goal.
    pub goal: String,
    /// Roles to fill.
    pub roles: Vec<Role>,
    /// Collaboration rules for the operation phase.
    pub rules: Vec<CollaborationRule>,
    /// Per-role disclosure policies the Initiator will negotiate with
    /// (role name → policy set).
    pub role_policies: Vec<(String, PolicySet)>,
}

impl Contract {
    /// A contract with no roles or rules yet.
    pub fn new(vo_name: impl Into<String>, goal: impl Into<String>) -> Self {
        Contract {
            vo_name: vo_name.into(),
            goal: goal.into(),
            roles: Vec::new(),
            rules: Vec::new(),
            role_policies: Vec::new(),
        }
    }

    /// Builder: add a role.
    #[must_use]
    pub fn with_role(mut self, role: Role) -> Self {
        self.roles.push(role);
        self
    }

    /// Builder: add a collaboration rule.
    #[must_use]
    pub fn with_rule(mut self, rule: CollaborationRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Attach the Identification-phase disclosure policies for a role.
    pub fn set_role_policies(&mut self, role: &str, policies: PolicySet) {
        if let Some(slot) = self.role_policies.iter_mut().find(|(r, _)| r == role) {
            slot.1 = policies;
        } else {
            self.role_policies.push((role.to_owned(), policies));
        }
    }

    /// Look up a role by name.
    pub fn role(&self, name: &str) -> Option<&Role> {
        self.roles.iter().find(|r| r.name == name)
    }

    /// The disclosure policies for a role, if defined.
    pub fn policies_for(&self, role: &str) -> Option<&PolicySet> {
        self.role_policies
            .iter()
            .find(|(r, _)| r == role)
            .map(|(_, p)| p)
    }

    /// Rules binding a given role.
    pub fn rules_for<'a>(
        &'a self,
        role: &'a str,
    ) -> impl Iterator<Item = &'a CollaborationRule> + 'a {
        self.rules.iter().filter(move |rule| rule.binds(role))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trust_vo_policy::{DisclosurePolicy, Resource, Term};

    fn contract() -> Contract {
        Contract::new("AircraftOptimization", "low-emission wing design")
            .with_role(Role::new("DesignPortal", "design-db", "ISO 9000 compliant"))
            .with_role(Role::new("HPC", "hpc-compute", "SLA 99.9%"))
            .with_rule(CollaborationRule::global("r1", "log all accesses"))
            .with_rule(CollaborationRule::for_roles(
                "r2",
                "encrypt stored data",
                &["HPC"],
            ))
    }

    #[test]
    fn role_lookup() {
        let c = contract();
        assert!(c.role("HPC").is_some());
        assert!(c.role("Ghost").is_none());
        assert_eq!(c.role("DesignPortal").unwrap().capability, "design-db");
    }

    #[test]
    fn rules_bind_by_role() {
        let c = contract();
        let hpc_rules: Vec<_> = c.rules_for("HPC").map(|r| r.id.as_str()).collect();
        assert_eq!(hpc_rules, ["r1", "r2"]);
        let portal_rules: Vec<_> = c.rules_for("DesignPortal").map(|r| r.id.as_str()).collect();
        assert_eq!(portal_rules, ["r1"]);
    }

    #[test]
    fn role_policies_attach_and_replace() {
        let mut c = contract();
        assert!(c.policies_for("HPC").is_none());
        let mut set = PolicySet::new();
        set.add(DisclosurePolicy::rule(
            "p",
            Resource::service("VoMembership"),
            vec![Term::of_type("HpcSla")],
        ));
        c.set_role_policies("HPC", set.clone());
        assert_eq!(c.policies_for("HPC").unwrap().len(), 1);
        let mut set2 = PolicySet::new();
        set2.add(DisclosurePolicy::deliv(
            "d",
            Resource::service("VoMembership"),
        ));
        c.set_role_policies("HPC", set2);
        assert!(c
            .policies_for("HPC")
            .unwrap()
            .is_deliverable("VoMembership"));
    }
}
