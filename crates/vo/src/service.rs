//! The VO Management web service (paper Fig. 5 / §6.1).
//!
//! "The VO Management toolkit is a Web-based application … built over a
//! SOA combining several Web services for managing VOs" — and the TN
//! system "is integrated as part of the VO Management tool, and invoked as
//! a web service when needed" (§6). This endpoint exposes the toolkit's
//! edition operations over the same [`ServiceBus`] the TN service runs
//! on:
//!
//! [`ServiceBus`]: trust_vo_soa::bus::ServiceBus
//!
//! | operation        | edition   | §6.1 behaviour                         |
//! |------------------|-----------|----------------------------------------|
//! | `RegisterMember` | Host      | member registration + publication       |
//! | `ListServices`   | Host      | "the list of services that are available"|
//! | `ListActiveVos`  | Host      | "shows the active VO"                   |
//! | `CreateVo`       | Initiator | contract + per-role policies → formation|
//! | `MonitorVo`      | Host      | the VO monitoring snapshot              |
//! | `ReadMailbox`    | Member    | pending invitations                     |
//!
//! Contracts arrive as XML (`<contract>` with `<role>` children and
//! per-role `<policies>` holding X-TNL policy documents), so an external
//! tool can drive a full formation without linking against the library.

use crate::contract::{Contract, Role};
use crate::error::VoError;
use crate::formation::FormedVo;
use crate::member::ServiceProvider;
use crate::registry::ResourceDescription;
use crate::toolkit::VoToolkit;
use parking_lot::Mutex;
use trust_vo_credential::RevocationList;
use trust_vo_negotiation::{Party, Strategy};
use trust_vo_policy::xml::policy_from_xml;
use trust_vo_policy::PolicySet;
use trust_vo_soa::bus::ServiceEndpoint;
use trust_vo_soa::envelope::{Envelope, Fault};
use trust_vo_xmldoc::{Element, Node};

/// The VO Management service endpoint: a thread-safe facade over a
/// [`VoToolkit`] plus the VOs formed through it.
pub struct VoManagementService {
    state: Mutex<ServiceState>,
}

struct ServiceState {
    toolkit: VoToolkit,
    vos: Vec<FormedVo>,
}

impl VoManagementService {
    /// Wrap a toolkit.
    pub fn new(toolkit: VoToolkit) -> Self {
        VoManagementService {
            state: Mutex::new(ServiceState {
                toolkit,
                vos: Vec::new(),
            }),
        }
    }

    /// Run `f` with the underlying toolkit (test/setup access).
    pub fn with_toolkit<R>(&self, f: impl FnOnce(&mut VoToolkit) -> R) -> R {
        f(&mut self.state.lock().toolkit)
    }

    /// A snapshot of a formed VO by name.
    pub fn vo(&self, name: &str) -> Option<FormedVo> {
        self.state
            .lock()
            .vos
            .iter()
            .find(|v| v.name == name)
            .cloned()
    }

    fn register_member(&self, request: &Envelope) -> Result<Envelope, Fault> {
        let body = &request.body;
        let name = body
            .get_attr("name")
            .ok_or_else(|| Fault::new("BadRequest", "RegisterMember missing name attribute"))?
            .to_owned();
        let mut descriptions = Vec::new();
        for d in body.all("resource") {
            let capability = d
                .get_attr("capability")
                .ok_or_else(|| Fault::new("BadRequest", "<resource> missing capability"))?;
            let interaction = d.get_attr("interaction").unwrap_or("");
            let quality: f64 = d
                .get_attr("quality")
                .unwrap_or("0.5")
                .parse()
                .map_err(|_| Fault::new("BadRequest", "bad quality value"))?;
            descriptions.push(ResourceDescription::new(
                &name,
                capability,
                interaction,
                quality,
            ));
        }
        let mut state = self.state.lock();
        // An externally registered member starts with an empty profile;
        // richer parties are installed via `with_toolkit` (the GUI path).
        if !state.toolkit.providers.contains_key(&name) {
            let party = Party::new(name.clone());
            state
                .toolkit
                .host_register(ServiceProvider::new(party), descriptions);
        } else {
            for d in descriptions {
                state.toolkit.registry.publish(d);
            }
        }
        Ok(Envelope::request(
            "RegisterMemberResponse",
            Element::new("RegisterMemberResponse").attr("member", &name),
        ))
    }

    fn list_services(&self) -> Envelope {
        let state = self.state.lock();
        let mut body = Element::new("ListServicesResponse");
        for d in state.toolkit.host_available_services() {
            body.children.push(Node::Element(
                Element::new("service")
                    .attr("provider", &d.provider)
                    .attr("capability", &d.capability)
                    .attr("quality", format!("{:.2}", d.quality)),
            ));
        }
        Envelope::request("ListServicesResponse", body)
    }

    fn list_active_vos(&self) -> Envelope {
        let state = self.state.lock();
        let mut body = Element::new("ListActiveVosResponse");
        for name in state.toolkit.host_active_vos() {
            body.children
                .push(Node::Element(Element::new("vo").attr("name", name)));
        }
        Envelope::request("ListActiveVosResponse", body)
    }

    fn parse_contract(body: &Element) -> Result<Contract, Fault> {
        let contract_el = body
            .first("contract")
            .ok_or_else(|| Fault::new("BadRequest", "CreateVo missing <contract>"))?;
        let vo_name = contract_el
            .get_attr("name")
            .ok_or_else(|| Fault::new("BadRequest", "<contract> missing name"))?;
        let goal = contract_el.get_attr("goal").unwrap_or("");
        let mut contract = Contract::new(vo_name, goal);
        for role_el in contract_el.all("role") {
            let role_name = role_el
                .get_attr("name")
                .ok_or_else(|| Fault::new("BadRequest", "<role> missing name"))?;
            let capability = role_el
                .get_attr("capability")
                .ok_or_else(|| Fault::new("BadRequest", "<role> missing capability"))?;
            contract.roles.push(Role::new(
                role_name,
                capability,
                role_el.get_attr("requirements").unwrap_or(""),
            ));
            if let Some(policies_el) = role_el.first("policies") {
                let mut set = PolicySet::new();
                for policy_el in policies_el.all("policy") {
                    let policy = policy_from_xml(policy_el)
                        .map_err(|e| Fault::new("BadPolicy", e.to_string()))?;
                    set.add(policy);
                }
                contract.set_role_policies(role_name, set);
            }
        }
        Ok(contract)
    }

    fn create_vo(&self, request: &Envelope) -> Result<Envelope, Fault> {
        let body = &request.body;
        let initiator = body
            .get_attr("initiator")
            .ok_or_else(|| Fault::new("BadRequest", "CreateVo missing initiator"))?
            .to_owned();
        let strategy = body
            .get_attr("strategy")
            .and_then(Strategy::from_wire_name)
            .unwrap_or(Strategy::Standard);
        let contract = Self::parse_contract(body)?;
        let mut state = self.state.lock();
        match state
            .toolkit
            .initiator_form_vo(contract, &initiator, strategy)
        {
            Ok(vo) => {
                let mut resp = Element::new("CreateVoResponse")
                    .attr("vo", &vo.name)
                    .attr("members", vo.members().len().to_string());
                for m in vo.members() {
                    resp.children.push(Node::Element(
                        Element::new("member")
                            .attr("provider", &m.provider)
                            .attr("role", &m.role)
                            .attr("serial", m.certificate.serial.to_string()),
                    ));
                }
                state.vos.push(vo);
                Ok(Envelope::request("CreateVoResponse", resp))
            }
            Err(VoError::Negotiation(e)) => Err(Fault::new("NegotiationFailed", e.to_string())),
            Err(e) => Err(Fault::new("FormationFailed", e.to_string())),
        }
    }

    fn monitor_vo(&self, request: &Envelope) -> Result<Envelope, Fault> {
        let name = request
            .body
            .get_attr("vo")
            .ok_or_else(|| Fault::new("BadRequest", "MonitorVo missing vo attribute"))?;
        let state = self.state.lock();
        let vo = state
            .vos
            .iter()
            .find(|v| v.name == name)
            .ok_or_else(|| Fault::new("NoSuchVo", format!("VO '{name}' unknown")))?;
        let report = state.toolkit.host_monitor(
            vo,
            &RevocationList::new(),
            crate::operation::REPLACEMENT_THRESHOLD,
        );
        let mut body = Element::new("MonitorVoResponse")
            .attr("vo", &report.vo_name)
            .attr("phase", report.phase.to_string())
            .attr("members", report.members.to_string());
        for m in &report.invalid_memberships {
            body.children
                .push(Node::Element(Element::new("invalidMembership").text(m)));
        }
        for m in &report.below_threshold {
            body.children
                .push(Node::Element(Element::new("belowThreshold").text(m)));
        }
        Ok(Envelope::request("MonitorVoResponse", body))
    }

    fn read_mailbox(&self, request: &Envelope) -> Result<Envelope, Fault> {
        let member = request
            .body
            .get_attr("member")
            .ok_or_else(|| Fault::new("BadRequest", "ReadMailbox missing member attribute"))?;
        let state = self.state.lock();
        let mut body = Element::new("ReadMailboxResponse").attr("member", member);
        for invitation in state.toolkit.mailboxes.read(member) {
            body.children.push(Node::Element(
                Element::new("invitation")
                    .attr("vo", &invitation.vo_name)
                    .attr("role", &invitation.role)
                    .attr("from", &invitation.from)
                    .text(&invitation.text),
            ));
        }
        Ok(Envelope::request("ReadMailboxResponse", body))
    }
}

impl ServiceEndpoint for VoManagementService {
    fn handle(&self, request: &Envelope) -> Result<Envelope, Fault> {
        match request.operation.as_str() {
            "RegisterMember" => self.register_member(request),
            "ListServices" => Ok(self.list_services()),
            "ListActiveVos" => Ok(self.list_active_vos()),
            "CreateVo" => self.create_vo(request),
            "MonitorVo" => self.monitor_vo(request),
            "ReadMailbox" => self.read_mailbox(request),
            other => Err(Fault::new(
                "NoSuchOperation",
                format!("operation '{other}' not supported"),
            )),
        }
    }

    fn operations(&self) -> Vec<String> {
        [
            "RegisterMember",
            "ListServices",
            "ListActiveVos",
            "CreateVo",
            "MonitorVo",
            "ReadMailbox",
        ]
        .into_iter()
        .map(str::to_owned)
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trust_vo_credential::{CredentialAuthority, TimeRange, Timestamp};
    use trust_vo_policy::{xml::policy_to_xml, DisclosurePolicy, Resource, Term};
    use trust_vo_soa::bus::ServiceBus;
    use trust_vo_soa::simclock::{CostModel, SimClock};

    fn service() -> (ServiceBus, Arc<VoManagementService>) {
        let clock = SimClock::new(
            CostModel::paper_testbed(),
            Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0),
        );
        let toolkit = VoToolkit::new(clock.clone());
        let svc = Arc::new(VoManagementService::new(toolkit));
        // Install credentialed parties through the GUI path.
        svc.with_toolkit(|tk| {
            let mut ca = CredentialAuthority::new("CA");
            let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
            let mut initiator = Party::new("Aircraft");
            initiator.trust_root(ca.public_key());
            tk.host_register(ServiceProvider::new(initiator), vec![]);
            let mut member = Party::new("StoreCo");
            let sla = ca
                .issue("StorageSla", "StoreCo", member.keys.public, vec![], window)
                .unwrap();
            member.profile.add(sla);
            member.trust_root(ca.public_key());
            tk.host_register(
                ServiceProvider::new(member),
                vec![ResourceDescription::new(
                    "StoreCo",
                    "storage",
                    "soap://store",
                    0.9,
                )],
            );
        });
        let bus = ServiceBus::new(clock);
        bus.register("vo-mgmt", svc.clone());
        (bus, svc)
    }

    fn create_vo_request() -> Envelope {
        let policy = DisclosurePolicy::rule(
            "p",
            Resource::service("VoMembership"),
            vec![Term::of_type("StorageSla")],
        );
        let body = Element::new("CreateVoRequest")
            .attr("initiator", "Aircraft")
            .attr("strategy", "standard")
            .child(
                Element::new("contract")
                    .attr("name", "SvcVO")
                    .attr("goal", "store data")
                    .child(
                        Element::new("role")
                            .attr("name", "Storage")
                            .attr("capability", "storage")
                            .child(Element::new("policies").child(policy_to_xml(&policy))),
                    ),
            );
        Envelope::request("CreateVo", body)
    }

    #[test]
    fn full_service_driven_formation() {
        let (bus, svc) = service();
        let resp = bus.call("vo-mgmt", &create_vo_request()).unwrap();
        assert_eq!(resp.body.get_attr("vo"), Some("SvcVO"));
        assert_eq!(resp.body.get_attr("members"), Some("1"));
        let member = resp.body.first("member").unwrap();
        assert_eq!(member.get_attr("provider"), Some("StoreCo"));
        // The VO is queryable afterwards.
        let vo = svc.vo("SvcVO").unwrap();
        assert!(vo.is_member("StoreCo"));
    }

    #[test]
    fn list_and_monitor_operations() {
        let (bus, _svc) = service();
        let services = bus
            .call(
                "vo-mgmt",
                &Envelope::request("ListServices", Element::new("x")),
            )
            .unwrap();
        assert_eq!(services.body.all("service").count(), 1);
        bus.call("vo-mgmt", &create_vo_request()).unwrap();
        let vos = bus
            .call(
                "vo-mgmt",
                &Envelope::request("ListActiveVos", Element::new("x")),
            )
            .unwrap();
        assert_eq!(vos.body.all("vo").count(), 1);
        let monitor = bus
            .call(
                "vo-mgmt",
                &Envelope::request("MonitorVo", Element::new("m").attr("vo", "SvcVO")),
            )
            .unwrap();
        assert_eq!(monitor.body.get_attr("phase"), Some("operation"));
        assert_eq!(monitor.body.all("invalidMembership").count(), 0);
    }

    #[test]
    fn register_member_via_service() {
        let (bus, svc) = service();
        let resp = bus
            .call(
                "vo-mgmt",
                &Envelope::request(
                    "RegisterMember",
                    Element::new("r").attr("name", "NewCo").child(
                        Element::new("resource")
                            .attr("capability", "hpc-compute")
                            .attr("interaction", "soap://newco")
                            .attr("quality", "0.8"),
                    ),
                ),
            )
            .unwrap();
        assert_eq!(resp.body.get_attr("member"), Some("NewCo"));
        svc.with_toolkit(|tk| {
            assert!(tk.providers.contains_key("NewCo"));
            assert_eq!(tk.registry.find_by_capability("hpc-compute").len(), 1);
        });
    }

    #[test]
    fn faults_for_bad_requests() {
        let (bus, _svc) = service();
        let err = bus
            .call("vo-mgmt", &Envelope::request("CreateVo", Element::new("x")))
            .unwrap_err();
        assert_eq!(err.code, "BadRequest");
        let err = bus
            .call(
                "vo-mgmt",
                &Envelope::request("MonitorVo", Element::new("m").attr("vo", "Ghost")),
            )
            .unwrap_err();
        assert_eq!(err.code, "NoSuchVo");
        let err = bus
            .call(
                "vo-mgmt",
                &Envelope::request("Frobnicate", Element::new("x")),
            )
            .unwrap_err();
        assert_eq!(err.code, "NoSuchOperation");
        // Unfillable role → FormationFailed fault, not a panic.
        let body = Element::new("CreateVoRequest")
            .attr("initiator", "Aircraft")
            .child(
                Element::new("contract").attr("name", "BadVO").child(
                    Element::new("role")
                        .attr("name", "R")
                        .attr("capability", "quantum"),
                ),
            );
        let err = bus
            .call("vo-mgmt", &Envelope::request("CreateVo", body))
            .unwrap_err();
        assert_eq!(err.code, "FormationFailed");
    }

    #[test]
    fn mailbox_readable_over_the_service() {
        let (bus, svc) = service();
        svc.with_toolkit(|tk| {
            tk.mailboxes.deliver(
                "StoreCo",
                crate::mailbox::Invitation {
                    vo_name: "SvcVO".into(),
                    role: "Storage".into(),
                    from: "Aircraft".into(),
                    text: "join us".into(),
                },
            );
        });
        let resp = bus
            .call(
                "vo-mgmt",
                &Envelope::request("ReadMailbox", Element::new("m").attr("member", "StoreCo")),
            )
            .unwrap();
        assert_eq!(resp.body.all("invitation").count(), 1);
    }
}
