//! The VO lifecycle state machine (paper §2).
//!
//! Preparation → Identification → Formation → Operation → Dissolution.
//! The Operation phase may loop internally (member replacement, repeated
//! optimization steps), but phases only ever advance forward.

use crate::error::VoError;
use trust_vo_credential::Timestamp;

/// A lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// SPs publish their resources' functionalities in a public repository.
    Preparation,
    /// The VO Initiator defines the business goal, the contract, and (with
    /// TN integration) the per-role disclosure policies.
    Identification,
    /// Candidates are invited and mutually negotiated with; successful
    /// ones receive membership certificates.
    Formation,
    /// Members cooperate under the contract's collaboration rules.
    Operation,
    /// Final operations nullify all contractual bindings.
    Dissolution,
}

impl Phase {
    /// The phases in lifecycle order.
    pub const ORDER: [Phase; 5] = [
        Phase::Preparation,
        Phase::Identification,
        Phase::Formation,
        Phase::Operation,
        Phase::Dissolution,
    ];

    /// The next phase, if any.
    pub fn next(self) -> Option<Phase> {
        let idx = Phase::ORDER
            .iter()
            .position(|&p| p == self)
            .expect("phase in ORDER");
        Phase::ORDER.get(idx + 1).copied()
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Phase::Preparation => "preparation",
            Phase::Identification => "identification",
            Phase::Formation => "formation",
            Phase::Operation => "operation",
            Phase::Dissolution => "dissolution",
        })
    }
}

/// The lifecycle tracker of one VO: current phase plus a timestamped
/// transition history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoLifecycle {
    current: Phase,
    history: Vec<(Phase, Timestamp)>,
}

impl VoLifecycle {
    /// A lifecycle starting in Preparation at `at`.
    pub fn new(at: Timestamp) -> Self {
        VoLifecycle {
            current: Phase::Preparation,
            history: vec![(Phase::Preparation, at)],
        }
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        self.current
    }

    /// Advance to the next phase. Only single forward steps are legal.
    pub fn advance_to(&mut self, to: Phase, at: Timestamp) -> Result<(), VoError> {
        if self.current.next() == Some(to) {
            self.current = to;
            self.history.push((to, at));
            Ok(())
        } else {
            Err(VoError::BadTransition {
                from: self.current,
                to,
            })
        }
    }

    /// Require the lifecycle to be in `phase`.
    pub fn require(&self, phase: Phase) -> Result<(), VoError> {
        if self.current == phase {
            Ok(())
        } else {
            Err(VoError::WrongPhase {
                expected: phase,
                actual: self.current,
            })
        }
    }

    /// The transition history, oldest first.
    pub fn history(&self) -> &[(Phase, Timestamp)] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_forward_walk() {
        let mut lc = VoLifecycle::new(Timestamp(0));
        for (i, phase) in Phase::ORDER.iter().enumerate().skip(1) {
            lc.advance_to(*phase, Timestamp(i as i64)).unwrap();
        }
        assert_eq!(lc.phase(), Phase::Dissolution);
        assert_eq!(lc.history().len(), 5);
    }

    #[test]
    fn skipping_phases_rejected() {
        let mut lc = VoLifecycle::new(Timestamp(0));
        let err = lc.advance_to(Phase::Operation, Timestamp(1)).unwrap_err();
        assert!(matches!(err, VoError::BadTransition { .. }));
        assert_eq!(lc.phase(), Phase::Preparation);
    }

    #[test]
    fn going_backwards_rejected() {
        let mut lc = VoLifecycle::new(Timestamp(0));
        lc.advance_to(Phase::Identification, Timestamp(1)).unwrap();
        assert!(lc.advance_to(Phase::Preparation, Timestamp(2)).is_err());
        // Self-transition also rejected.
        assert!(lc.advance_to(Phase::Identification, Timestamp(2)).is_err());
    }

    #[test]
    fn dissolution_is_terminal() {
        let mut lc = VoLifecycle::new(Timestamp(0));
        for phase in Phase::ORDER.iter().skip(1) {
            lc.advance_to(*phase, Timestamp(1)).unwrap();
        }
        assert_eq!(Phase::Dissolution.next(), None);
        assert!(lc.advance_to(Phase::Operation, Timestamp(2)).is_err());
    }

    #[test]
    fn require_checks_phase() {
        let lc = VoLifecycle::new(Timestamp(0));
        assert!(lc.require(Phase::Preparation).is_ok());
        let err = lc.require(Phase::Operation).unwrap_err();
        assert!(matches!(err, VoError::WrongPhase { .. }));
    }
}
