//! XACML policy import (paper §8, planned extension).
//!
//! "A second extension is the support of XACML policies, which would make
//! our integrated toolkit portable and interoperable with a number of
//! other VO Management tools."
//!
//! This module implements the *import* direction: a pragmatic subset of
//! XACML 2.0 policies is translated into X-TNL disclosure policies so the
//! negotiation engine can consume policies authored by XACML-based VO
//! tools. Supported XACML constructs:
//!
//! ```text
//! <Policy PolicyId=".." RuleCombiningAlgId="..permit-overrides">
//!   <Target>
//!     <Resources><Resource>
//!       <ResourceMatch MatchId="..string-equal">
//!         <AttributeValue>VoMembership</AttributeValue>
//!         <ResourceAttributeDesignator AttributeId="resource-id"/>
//!       </ResourceMatch>
//!     </Resource></Resources>
//!   </Target>
//!   <Rule RuleId=".." Effect="Permit">
//!     <Condition>
//!       <Apply FunctionId="..string-equal">
//!         <SubjectAttributeDesignator AttributeId="ISO9000Certified/QualityRegulation"/>
//!         <AttributeValue>UNI EN ISO 9000</AttributeValue>
//!       </Apply>
//!       ... (nested ..and Apply for conjunctions)
//!     </Condition>
//!   </Rule>
//!   <Rule RuleId="deny-all" Effect="Deny"/>
//! </Policy>
//! ```
//!
//! Mapping: the `Target` resource-id names the protected resource; each
//! `Permit` rule becomes one X-TNL alternative; each subject-attribute
//! comparison becomes a term on the credential type named by the
//! designator's `CredType/Attribute` id (a bare `CredType` id yields a
//! possession-only term). `Deny` rules and unknown functions are ignored
//! (X-TNL is deny-by-default).

use crate::policy::{DisclosurePolicy, PolicySet};
use crate::rterm::Resource;
use crate::term::Term;
use crate::xml::PolicyParseError;
use trust_vo_xmldoc::Element;

const FN_STRING_EQUAL: &str = "urn:oasis:names:tc:xacml:1.0:function:string-equal";
const FN_INT_GE: &str = "urn:oasis:names:tc:xacml:1.0:function:integer-greater-than-or-equal";
const FN_AND: &str = "urn:oasis:names:tc:xacml:1.0:function:and";

/// Translate one XACML `<Policy>` element into X-TNL alternatives.
pub fn import_policy(root: &Element) -> Result<Vec<DisclosurePolicy>, PolicyParseError> {
    if root.name != "Policy" {
        return Err(PolicyParseError(format!(
            "expected <Policy>, found <{}>",
            root.name
        )));
    }
    let policy_id = root
        .get_attr("PolicyId")
        .ok_or_else(|| PolicyParseError("missing PolicyId".into()))?;
    let resource = target_resource(root)?;
    let mut out = Vec::new();
    for (i, rule) in root.all("Rule").enumerate() {
        if rule.get_attr("Effect") != Some("Permit") {
            continue; // Deny rules are implicit in X-TNL.
        }
        let rule_id = rule.get_attr("RuleId").unwrap_or("rule");
        let terms = match rule.first("Condition") {
            None => {
                // An unconditioned Permit is a delivery rule.
                out.push(DisclosurePolicy::deliv(
                    format!("{policy_id}/{rule_id}#{i}"),
                    resource.clone(),
                ));
                continue;
            }
            Some(condition) => {
                let apply = condition.first("Apply").ok_or_else(|| {
                    PolicyParseError(format!("rule '{rule_id}': empty <Condition>"))
                })?;
                collect_terms(apply)?
            }
        };
        if terms.is_empty() {
            return Err(PolicyParseError(format!(
                "rule '{rule_id}': no usable terms"
            )));
        }
        out.push(DisclosurePolicy::rule(
            format!("{policy_id}/{rule_id}#{i}"),
            resource.clone(),
            terms,
        ));
    }
    if out.is_empty() {
        return Err(PolicyParseError(format!(
            "policy '{policy_id}' has no Permit rules"
        )));
    }
    Ok(out)
}

/// Translate a whole `<PolicySet>`-like document (or a single `<Policy>`)
/// into an X-TNL [`PolicySet`].
pub fn import_policy_set(root: &Element) -> Result<PolicySet, PolicyParseError> {
    let mut set = PolicySet::new();
    if root.name == "Policy" {
        for p in import_policy(root)? {
            set.add(p);
        }
        return Ok(set);
    }
    if root.name != "PolicySet" {
        return Err(PolicyParseError(format!(
            "expected <PolicySet> or <Policy>, found <{}>",
            root.name
        )));
    }
    for policy in root.all("Policy") {
        for p in import_policy(policy)? {
            set.add(p);
        }
    }
    Ok(set)
}

fn target_resource(policy: &Element) -> Result<Resource, PolicyParseError> {
    let matcher = policy
        .first("Target")
        .and_then(|t| t.first("Resources"))
        .and_then(|r| r.first("Resource"))
        .and_then(|r| r.first("ResourceMatch"))
        .ok_or_else(|| {
            PolicyParseError("missing Target/Resources/Resource/ResourceMatch".into())
        })?;
    let name = matcher
        .child_text("AttributeValue")
        .ok_or_else(|| PolicyParseError("ResourceMatch missing <AttributeValue>".into()))?;
    Ok(Resource::service(name))
}

/// Recursively collect terms from an `<Apply>` tree (conjunctions via the
/// `and` function).
fn collect_terms(apply: &Element) -> Result<Vec<Term>, PolicyParseError> {
    let function = apply
        .get_attr("FunctionId")
        .ok_or_else(|| PolicyParseError("<Apply> missing FunctionId".into()))?;
    if function == FN_AND {
        let mut terms = Vec::new();
        for child in apply.all("Apply") {
            terms.extend(collect_terms(child)?);
        }
        return Ok(terms);
    }
    let designator = apply
        .first("SubjectAttributeDesignator")
        .ok_or_else(|| PolicyParseError(format!("Apply[{function}] has no subject designator")))?;
    let attribute_id = designator
        .get_attr("AttributeId")
        .ok_or_else(|| PolicyParseError("designator missing AttributeId".into()))?;
    let (cred_type, attr) = match attribute_id.split_once('/') {
        Some((ty, attr)) => (ty, Some(attr)),
        None => (attribute_id, None),
    };
    let mut term = Term::of_type(cred_type);
    if let Some(attr) = attr {
        let value = apply
            .child_text("AttributeValue")
            .ok_or_else(|| PolicyParseError("comparison missing <AttributeValue>".into()))?;
        let expr = match function {
            FN_STRING_EQUAL => format!("//content/{attr} = '{value}'"),
            FN_INT_GE => format!("//content/{attr} >= {value}"),
            other => {
                return Err(PolicyParseError(format!(
                    "unsupported XACML function '{other}'"
                )))
            }
        };
        let condition = crate::condition::Condition::parse(&expr)
            .map_err(|e| PolicyParseError(format!("generated condition invalid: {e}")))?;
        term = term.with_condition(condition);
    }
    Ok(vec![term])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xacml_doc() -> Element {
        let text = r#"
<Policy PolicyId="vo-portal-xacml" RuleCombiningAlgId="urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:permit-overrides">
  <Target>
    <Resources><Resource>
      <ResourceMatch MatchId="urn:oasis:names:tc:xacml:1.0:function:string-equal">
        <AttributeValue>VoMembership</AttributeValue>
        <ResourceAttributeDesignator AttributeId="urn:oasis:names:tc:xacml:1.0:resource:resource-id"/>
      </ResourceMatch>
    </Resource></Resources>
  </Target>
  <Rule RuleId="iso-route" Effect="Permit">
    <Condition>
      <Apply FunctionId="urn:oasis:names:tc:xacml:1.0:function:and">
        <Apply FunctionId="urn:oasis:names:tc:xacml:1.0:function:string-equal">
          <SubjectAttributeDesignator AttributeId="ISO9000Certified/QualityRegulation"/>
          <AttributeValue>UNI EN ISO 9000</AttributeValue>
        </Apply>
        <Apply FunctionId="urn:oasis:names:tc:xacml:1.0:function:integer-greater-than-or-equal">
          <SubjectAttributeDesignator AttributeId="HpcSla/Availability"/>
          <AttributeValue>99</AttributeValue>
        </Apply>
      </Apply>
    </Condition>
  </Rule>
  <Rule RuleId="accreditation-route" Effect="Permit">
    <Condition>
      <Apply FunctionId="urn:oasis:names:tc:xacml:1.0:function:string-equal">
        <SubjectAttributeDesignator AttributeId="AAAccreditation"/>
      </Apply>
    </Condition>
  </Rule>
  <Rule RuleId="deny-all" Effect="Deny"/>
</Policy>"#;
        trust_vo_xmldoc::parse(text).unwrap()
    }

    #[test]
    fn imports_permit_rules_as_alternatives() {
        let policies = import_policy(&xacml_doc()).unwrap();
        assert_eq!(policies.len(), 2, "two Permit rules, Deny ignored");
        for p in &policies {
            assert_eq!(p.target.name, "VoMembership");
        }
        // First alternative: conjunction of two conditioned terms.
        assert_eq!(policies[0].terms().len(), 2);
        assert_eq!(policies[0].terms()[0].key(), "ISO9000Certified");
        assert_eq!(policies[0].terms()[0].conditions.len(), 1);
        assert_eq!(policies[0].terms()[1].key(), "HpcSla");
        // Second alternative: possession-only term.
        assert_eq!(policies[1].terms().len(), 1);
        assert_eq!(policies[1].terms()[0].key(), "AAAccreditation");
        assert!(policies[1].terms()[0].conditions.is_empty());
    }

    #[test]
    fn imported_conditions_evaluate_against_credentials() {
        use trust_vo_credential::{Attribute, CredentialAuthority, TimeRange, Timestamp};
        let policies = import_policy(&xacml_doc()).unwrap();
        let mut ca = CredentialAuthority::new("INFN");
        let keys = trust_vo_crypto::KeyPair::from_seed(b"h");
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
        let good = ca
            .issue(
                "ISO9000Certified",
                "h",
                keys.public,
                vec![Attribute::new("QualityRegulation", "UNI EN ISO 9000")],
                window,
            )
            .unwrap();
        let bad = ca
            .issue(
                "ISO9000Certified",
                "h",
                keys.public,
                vec![Attribute::new("QualityRegulation", "ISO 14000")],
                window,
            )
            .unwrap();
        let term = &policies[0].terms()[0];
        assert!(term.matches_credential(&good));
        assert!(!term.matches_credential(&bad));
    }

    #[test]
    fn unconditioned_permit_becomes_deliv() {
        let text = r#"
<Policy PolicyId="open">
  <Target><Resources><Resource><ResourceMatch>
    <AttributeValue>PublicInfo</AttributeValue>
  </ResourceMatch></Resource></Resources></Target>
  <Rule RuleId="allow" Effect="Permit"/>
</Policy>"#;
        let policies = import_policy(&trust_vo_xmldoc::parse(text).unwrap()).unwrap();
        assert_eq!(policies.len(), 1);
        assert!(policies[0].is_deliv());
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in [
            "<NotPolicy/>",
            r#"<Policy/>"#,
            r#"<Policy PolicyId="x"/>"#,
            // Only a Deny rule.
            r#"<Policy PolicyId="x"><Target><Resources><Resource><ResourceMatch><AttributeValue>R</AttributeValue></ResourceMatch></Resource></Resources></Target><Rule RuleId="d" Effect="Deny"/></Policy>"#,
        ] {
            let doc = trust_vo_xmldoc::parse(text).unwrap();
            assert!(import_policy(&doc).is_err(), "{text}");
        }
    }

    #[test]
    fn unsupported_function_reported() {
        let text = r#"
<Policy PolicyId="x">
  <Target><Resources><Resource><ResourceMatch>
    <AttributeValue>R</AttributeValue>
  </ResourceMatch></Resource></Resources></Target>
  <Rule RuleId="r" Effect="Permit"><Condition>
    <Apply FunctionId="urn:oasis:names:tc:xacml:1.0:function:regexp-string-match">
      <SubjectAttributeDesignator AttributeId="T/a"/>
      <AttributeValue>v</AttributeValue>
    </Apply>
  </Condition></Rule>
</Policy>"#;
        let err = import_policy(&trust_vo_xmldoc::parse(text).unwrap()).unwrap_err();
        assert!(err.to_string().contains("unsupported XACML function"));
    }

    #[test]
    fn policy_set_import_merges() {
        let text = format!(
            "<PolicySet>{}{}</PolicySet>",
            trust_vo_xmldoc::to_string(&xacml_doc()),
            r#"<Policy PolicyId="open"><Target><Resources><Resource><ResourceMatch><AttributeValue>PublicInfo</AttributeValue></ResourceMatch></Resource></Resources></Target><Rule RuleId="allow" Effect="Permit"/></Policy>"#
        );
        let set = import_policy_set(&trust_vo_xmldoc::parse(&text).unwrap()).unwrap();
        assert_eq!(set.len(), 3);
        assert!(set.governs("VoMembership"));
        assert!(set.is_deliverable("PublicInfo"));
    }

    #[test]
    fn imported_terms_check_against_profiles() {
        // The policy crate cannot depend on the negotiation engine; the
        // full negotiation over imported policies is exercised in the
        // workspace-level `tests/xacml_negotiation.rs`. Here: compliance.
        use trust_vo_credential::{Attribute, CredentialAuthority, TimeRange, Timestamp};
        let policies = import_policy(&xacml_doc()).unwrap();
        let mut ca = CredentialAuthority::new("AAA");
        let keys = trust_vo_crypto::KeyPair::from_seed(b"h");
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
        let mut profile = trust_vo_credential::XProfile::new("h");
        profile.add(
            ca.issue(
                "AAAccreditation",
                "h",
                keys.public,
                vec![Attribute::new("MemberSince", 1998i64)],
                window,
            )
            .unwrap(),
        );
        // The accreditation route is satisfiable from the profile.
        assert!(crate::compliance::term_satisfied(
            &policies[1].terms()[0],
            &profile,
            None
        ));
        // The ISO route is not (no ISO credential held).
        assert!(!crate::compliance::term_satisfied(
            &policies[0].terms()[0],
            &profile,
            None
        ));
    }
}
