//! Attribute conditions on counterpart credentials.
//!
//! "Additional conditions to be evaluated on the credential attributes are
//! specified in the subelements `<certCond>`. Such element stores an Xpath
//! expression on the credential denoted by targetCertType." (§6.2)
//!
//! A [`Condition`] wraps an [`XPathExpr`] evaluated against the canonical
//! XML form of a credential. Conditions written against `content/...`
//! paths work for both absolute (`/credential/content/X`) and relative
//! (`content/X`) spellings.

use trust_vo_credential::Credential;
use trust_vo_xmldoc::{XPathExpr, XmlError};

/// A single condition over a credential document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    expr: XPathExpr,
}

impl Condition {
    /// Parse a condition from its XPath text.
    pub fn parse(text: &str) -> Result<Self, XmlError> {
        Ok(Condition {
            expr: XPathExpr::parse(text)?,
        })
    }

    /// Shorthand: equality on a content attribute
    /// (`//content/<attr> = '<value>'`).
    pub fn attr_equals(attr: &str, value: &str) -> Self {
        Self::parse(&format!("//content/{attr} = '{value}'")).expect("generated condition is valid")
    }

    /// Evaluate against a credential.
    pub fn holds_for(&self, cred: &Credential) -> bool {
        self.expr.evaluate(&cred.to_xml())
    }

    /// The source text.
    pub fn source(&self) -> &str {
        self.expr.source()
    }
}

impl std::fmt::Display for Condition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.source())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trust_vo_credential::{Attribute, CredentialAuthority, TimeRange, Timestamp};
    use trust_vo_crypto::KeyPair;

    fn cred() -> Credential {
        let mut ca = CredentialAuthority::new("INFN");
        ca.issue(
            "ISO9000Certified",
            "Aerospace",
            KeyPair::from_seed(b"aero").public,
            vec![
                Attribute::new("QualityRegulation", "UNI EN ISO 9000"),
                Attribute::new("AuditScore", 97i64),
            ],
            TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0)),
        )
        .unwrap()
    }

    #[test]
    fn equality_condition() {
        let c = Condition::attr_equals("QualityRegulation", "UNI EN ISO 9000");
        assert!(c.holds_for(&cred()));
        let c = Condition::attr_equals("QualityRegulation", "ISO 14000");
        assert!(!c.holds_for(&cred()));
    }

    #[test]
    fn numeric_condition() {
        let c = Condition::parse("//content/AuditScore >= 90").unwrap();
        assert!(c.holds_for(&cred()));
        let c = Condition::parse("//content/AuditScore > 97").unwrap();
        assert!(!c.holds_for(&cred()));
    }

    #[test]
    fn header_paths_work() {
        let c = Condition::parse("/credential/header/issuer = 'INFN'").unwrap();
        assert!(c.holds_for(&cred()));
        let c = Condition::parse("//credType = 'ISO9000Certified'").unwrap();
        assert!(c.holds_for(&cred()));
    }

    #[test]
    fn existence_condition() {
        assert!(Condition::parse("//content/AuditScore")
            .unwrap()
            .holds_for(&cred()));
        assert!(!Condition::parse("//content/Nothing")
            .unwrap()
            .holds_for(&cred()));
    }

    #[test]
    fn parse_error_propagates() {
        assert!(Condition::parse("///").is_err());
    }

    #[test]
    fn display_echoes_source() {
        let c = Condition::parse("//content/AuditScore >= 90").unwrap();
        assert_eq!(c.to_string(), "//content/AuditScore >= 90");
    }
}
