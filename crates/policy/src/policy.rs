//! Disclosure policies and policy sets.
//!
//! "Disclosure policies can assume one of the following forms:
//!
//! 1. `R ← T₁, T₂, …, Tₙ, n ≥ 1` … terms and R an R-Term identifying the
//!    name of the target resource.
//! 2. `R ← DELIV`. A rule of this form is called delivery rule, meaning
//!    that R can be delivered as is." (§4.1)
//!
//! "Each party adopts its own Trust-X set of disclosure policies to
//! regulate release of local information … and access to services."
//! Multiple policies for the same resource are *alternatives*: satisfying
//! any one of them releases the resource (this is what multiedges in the
//! negotiation tree branch over).

use crate::rterm::Resource;
use crate::term::Term;

/// A policy identifier, unique within a party's policy set.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PolicyId(pub String);

impl std::fmt::Display for PolicyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The right-hand side of a policy rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyBody {
    /// `R ← DELIV`: the resource is freely released.
    Deliv,
    /// `R ← T₁, …, Tₙ`: all terms must be satisfied (a conjunction).
    Terms(Vec<Term>),
}

/// A disclosure policy rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisclosurePolicy {
    /// The policy id.
    pub id: PolicyId,
    /// The protected resource (the rule head `R`).
    pub target: Resource,
    /// The rule body.
    pub body: PolicyBody,
}

impl DisclosurePolicy {
    /// A delivery rule for `target`.
    pub fn deliv(id: impl Into<String>, target: Resource) -> Self {
        DisclosurePolicy {
            id: PolicyId(id.into()),
            target,
            body: PolicyBody::Deliv,
        }
    }

    /// A conjunctive rule `target ← terms`.
    ///
    /// # Panics
    /// Panics when `terms` is empty (the paper requires `n ≥ 1`; an empty
    /// conjunction must be written as a delivery rule instead).
    pub fn rule(id: impl Into<String>, target: Resource, terms: Vec<Term>) -> Self {
        assert!(
            !terms.is_empty(),
            "a policy rule requires n >= 1 terms; use a delivery rule"
        );
        DisclosurePolicy {
            id: PolicyId(id.into()),
            target,
            body: PolicyBody::Terms(terms),
        }
    }

    /// Is this a delivery rule?
    pub fn is_deliv(&self) -> bool {
        matches!(self.body, PolicyBody::Deliv)
    }

    /// The terms of a conjunctive rule (empty for delivery rules).
    pub fn terms(&self) -> &[Term] {
        match &self.body {
            PolicyBody::Deliv => &[],
            PolicyBody::Terms(terms) => terms,
        }
    }
}

impl std::fmt::Display for DisclosurePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} <- ", self.target)?;
        match &self.body {
            PolicyBody::Deliv => f.write_str("DELIV"),
            PolicyBody::Terms(terms) => {
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
        }
    }
}

/// A party's set of disclosure policies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicySet {
    policies: Vec<DisclosurePolicy>,
}

impl PolicySet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a policy. Ids must be unique; duplicates replace.
    pub fn add(&mut self, policy: DisclosurePolicy) {
        if let Some(slot) = self.policies.iter_mut().find(|p| p.id == policy.id) {
            *slot = policy;
        } else {
            self.policies.push(policy);
        }
    }

    /// All policies protecting a resource name, in insertion order — the
    /// *alternatives* for that resource.
    pub fn alternatives_for<'a>(
        &'a self,
        resource: &'a str,
    ) -> impl Iterator<Item = &'a DisclosurePolicy> + 'a {
        self.policies
            .iter()
            .filter(move |p| p.target.name == resource)
    }

    /// Is there any policy (including DELIV) governing this resource?
    pub fn governs(&self, resource: &str) -> bool {
        self.alternatives_for(resource).next().is_some()
    }

    /// Is the resource freely deliverable (has a DELIV rule)?
    pub fn is_deliverable(&self, resource: &str) -> bool {
        self.alternatives_for(resource)
            .any(DisclosurePolicy::is_deliv)
    }

    /// Look up a policy by id.
    pub fn get(&self, id: &PolicyId) -> Option<&DisclosurePolicy> {
        self.policies.iter().find(|p| &p.id == id)
    }

    /// Iterate over all policies.
    pub fn iter(&self) -> impl Iterator<Item = &DisclosurePolicy> {
        self.policies.iter()
    }

    /// Number of policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// True when no policies are present.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Example 1 policies from §4.1.
    fn example_1() -> PolicySet {
        let mut set = PolicySet::new();
        set.add(DisclosurePolicy::rule(
            "p1",
            Resource::service("VoMembership"),
            vec![Term::of_type("WebDesignerQuality")],
        ));
        set.add(DisclosurePolicy::rule(
            "p2",
            Resource::credential("QualityCertification"),
            vec![Term::of_type("AAACreditation")],
        ));
        set
    }

    #[test]
    fn example_1_policies_display_like_the_paper() {
        let set = example_1();
        let p1 = set.get(&PolicyId("p1".into())).unwrap();
        assert_eq!(p1.to_string(), "VoMembership() <- WebDesignerQuality()");
        let p2 = set.get(&PolicyId("p2".into())).unwrap();
        assert_eq!(p2.to_string(), "QualityCertification() <- AAACreditation()");
    }

    #[test]
    fn deliv_rule() {
        let p = DisclosurePolicy::deliv("d1", Resource::credential("PublicCert"));
        assert!(p.is_deliv());
        assert!(p.terms().is_empty());
        assert_eq!(p.to_string(), "PublicCert() <- DELIV");
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn empty_rule_panics() {
        DisclosurePolicy::rule("bad", Resource::credential("X"), vec![]);
    }

    #[test]
    fn alternatives_are_ordered() {
        let mut set = example_1();
        // A second alternative for QualityCertification (the paper's
        // Fig. 2 shows AAACreditation OR BalanceSheet).
        set.add(DisclosurePolicy::rule(
            "p3",
            Resource::credential("QualityCertification"),
            vec![Term::of_type("BalanceSheet")],
        ));
        let alts: Vec<_> = set.alternatives_for("QualityCertification").collect();
        assert_eq!(alts.len(), 2);
        assert_eq!(alts[0].id.0, "p2");
        assert_eq!(alts[1].id.0, "p3");
    }

    #[test]
    fn governance_and_deliverability() {
        let mut set = example_1();
        assert!(set.governs("VoMembership"));
        assert!(!set.governs("Unprotected"));
        assert!(!set.is_deliverable("VoMembership"));
        set.add(DisclosurePolicy::deliv(
            "d",
            Resource::service("VoMembership"),
        ));
        assert!(set.is_deliverable("VoMembership"));
    }

    #[test]
    fn duplicate_id_replaces() {
        let mut set = example_1();
        set.add(DisclosurePolicy::deliv(
            "p1",
            Resource::service("VoMembership"),
        ));
        assert_eq!(set.len(), 2);
        assert!(set.get(&PolicyId("p1".into())).unwrap().is_deliv());
    }
}
