//! R-Terms: resources protected by disclosure policies.
//!
//! "R-Terms are expressions of the form ResName(attrset) where ResName
//! denotes a resource name whereas attrset denotes a set of attributes,
//! specifying relevant characteristics of the resource. Examples of
//! resources are a credential, a file or a Web service." (§4.1)

/// What kind of thing a resource is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// A credential the party may disclose.
    Credential,
    /// A service the party offers (e.g. VO membership, the design portal).
    Service,
    /// A file / data item.
    File,
}

impl ResourceKind {
    /// The XML tag value.
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::Credential => "credential",
            ResourceKind::Service => "service",
            ResourceKind::File => "file",
        }
    }

    /// Parse the XML tag value.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "credential" => Some(ResourceKind::Credential),
            "service" => Some(ResourceKind::Service),
            "file" => Some(ResourceKind::File),
            _ => None,
        }
    }
}

/// An R-Term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Resource {
    /// The resource name (a credential type name, service name, or path).
    pub name: String,
    /// The resource kind.
    pub kind: ResourceKind,
    /// Characteristic attributes, e.g. `("vo", "AircraftOptimization")`.
    pub attrs: Vec<(String, String)>,
}

impl Resource {
    /// A credential resource.
    pub fn credential(name: impl Into<String>) -> Self {
        Resource {
            name: name.into(),
            kind: ResourceKind::Credential,
            attrs: Vec::new(),
        }
    }

    /// A service resource.
    pub fn service(name: impl Into<String>) -> Self {
        Resource {
            name: name.into(),
            kind: ResourceKind::Service,
            attrs: Vec::new(),
        }
    }

    /// A file resource.
    pub fn file(name: impl Into<String>) -> Self {
        Resource {
            name: name.into(),
            kind: ResourceKind::File,
            attrs: Vec::new(),
        }
    }

    /// Builder: attach a characteristic attribute.
    #[must_use]
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Look up a characteristic attribute.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_lookup() {
        let r = Resource::service("VoMembership")
            .with_attr("vo", "AircraftOptimization")
            .with_attr("role", "DesignPartnerWebPortal");
        assert_eq!(r.kind, ResourceKind::Service);
        assert_eq!(r.attr("vo"), Some("AircraftOptimization"));
        assert_eq!(r.attr("nope"), None);
        assert_eq!(
            r.to_string(),
            "VoMembership(vo=AircraftOptimization, role=DesignPartnerWebPortal)"
        );
    }

    #[test]
    fn kind_labels_roundtrip() {
        for k in [
            ResourceKind::Credential,
            ResourceKind::Service,
            ResourceKind::File,
        ] {
            assert_eq!(ResourceKind::parse(k.label()), Some(k));
        }
        assert_eq!(ResourceKind::parse("other"), None);
    }

    #[test]
    fn display_without_attrs() {
        assert_eq!(
            Resource::credential("BalanceSheet").to_string(),
            "BalanceSheet()"
        );
    }
}
