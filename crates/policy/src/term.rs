//! Terms: the left-hand-side building blocks of disclosure policies.
//!
//! "A term is an expression of form P(C) where P is a credential type and C
//! is a (possibly empty) list of conditions on the attributes encoded in
//! credentials of type P. The credential type P can be unspecified (and
//! denoted by a variable), so to express constraints on the counterpart
//! properties without specifying from which types of credential such
//! properties should be obtained from." (§4.1)
//!
//! The ontology extension (§4.3) adds a third spec form: a **concept**
//! name, to be resolved by the receiver's reasoning engine via Algorithm 1.

use crate::condition::Condition;
use trust_vo_credential::Credential;

/// How a term designates the credential(s) that can satisfy it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CredentialSpec {
    /// A named credential type `P`.
    Type(String),
    /// An unspecified type (a variable) — any credential whose attributes
    /// satisfy the conditions counts, giving the receiver "the flexibility
    /// of choosing which credentials to send".
    Variable,
    /// An ontology concept, resolved by the receiver (§4.3.1).
    Concept(String),
}

/// A term `P(C)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Term {
    /// The credential designation.
    pub spec: CredentialSpec,
    /// Conditions on the credential's attributes (possibly empty).
    pub conditions: Vec<Condition>,
}

impl Term {
    /// A term naming a credential type with no conditions.
    pub fn of_type(name: impl Into<String>) -> Self {
        Term {
            spec: CredentialSpec::Type(name.into()),
            conditions: Vec::new(),
        }
    }

    /// A variable-type term.
    pub fn variable() -> Self {
        Term {
            spec: CredentialSpec::Variable,
            conditions: Vec::new(),
        }
    }

    /// A concept-level term.
    pub fn of_concept(name: impl Into<String>) -> Self {
        Term {
            spec: CredentialSpec::Concept(name.into()),
            conditions: Vec::new(),
        }
    }

    /// Builder: add a condition.
    #[must_use]
    pub fn with_condition(mut self, condition: Condition) -> Self {
        self.conditions.push(condition);
        self
    }

    /// Builder: add an attribute-equality condition.
    #[must_use]
    pub fn where_attr(self, attr: &str, value: &str) -> Self {
        self.with_condition(Condition::attr_equals(attr, value))
    }

    /// Does this specific credential satisfy the term, *ignoring* concept
    /// resolution (concept terms never match directly — the receiver maps
    /// them first)?
    pub fn matches_credential(&self, cred: &Credential) -> bool {
        let type_ok = match &self.spec {
            CredentialSpec::Type(name) => cred.cred_type() == name,
            CredentialSpec::Variable => true,
            CredentialSpec::Concept(_) => false,
        };
        type_ok && self.conditions.iter().all(|c| c.holds_for(cred))
    }

    /// A display key for tree nodes / diagnostics: the type, `?` for a
    /// variable, or `concept:<name>`.
    pub fn key(&self) -> String {
        match &self.spec {
            CredentialSpec::Type(name) => name.clone(),
            CredentialSpec::Variable => "?".into(),
            CredentialSpec::Concept(name) => format!("concept:{name}"),
        }
    }
}

impl std::fmt::Display for Term {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.key())?;
        f.write_str("(")?;
        for (i, c) in self.conditions.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trust_vo_credential::{Attribute, CredentialAuthority, TimeRange, Timestamp};
    use trust_vo_crypto::KeyPair;

    fn cred(ty: &str, attrs: Vec<Attribute>) -> Credential {
        let mut ca = CredentialAuthority::new("CA");
        ca.issue(
            ty,
            "S",
            KeyPair::from_seed(b"s").public,
            attrs,
            TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0)),
        )
        .unwrap()
    }

    #[test]
    fn typed_term_matches_same_type_only() {
        let t = Term::of_type("ISO9000Certified");
        assert!(t.matches_credential(&cred("ISO9000Certified", vec![])));
        assert!(!t.matches_credential(&cred("BalanceSheet", vec![])));
    }

    #[test]
    fn conditions_must_all_hold() {
        let t = Term::of_type("BalanceSheet")
            .where_attr("Issuer", "BBB")
            .with_condition(Condition::parse("//content/Year >= 2008").unwrap());
        let good = cred(
            "BalanceSheet",
            vec![
                Attribute::new("Issuer", "BBB"),
                Attribute::new("Year", 2009i64),
            ],
        );
        assert!(t.matches_credential(&good));
        let stale = cred(
            "BalanceSheet",
            vec![
                Attribute::new("Issuer", "BBB"),
                Attribute::new("Year", 2005i64),
            ],
        );
        assert!(!t.matches_credential(&stale));
    }

    #[test]
    fn variable_term_matches_any_type_with_conditions() {
        // The paper: an unspecified type "gives the receiver … the
        // flexibility of choosing which credentials to send".
        let t = Term::variable().where_attr("Issuer", "BBB");
        assert!(t.matches_credential(&cred("Anything", vec![Attribute::new("Issuer", "BBB")])));
        assert!(!t.matches_credential(&cred("Anything", vec![Attribute::new("Issuer", "X")])));
    }

    #[test]
    fn concept_terms_never_match_directly() {
        let t = Term::of_concept("QualityCertification");
        assert!(!t.matches_credential(&cred("ISO9000Certified", vec![])));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::of_type("VoMembership").to_string(), "VoMembership()");
        assert_eq!(Term::variable().to_string(), "?()");
        assert_eq!(
            Term::of_concept("BusinessProof").to_string(),
            "concept:BusinessProof()"
        );
        let t = Term::of_type("BalanceSheet").where_attr("Issuer", "BBB");
        assert!(t.to_string().contains("Issuer"));
    }
}
