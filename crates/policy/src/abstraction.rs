//! Policy abstraction over the ontology (paper §4.3.1).
//!
//! "The disclosure policies' can be abstracted by executing a substitution
//! operation of sensitive credentials names into the associated concepts
//! names, which are more generic and disclose less information. The process
//! can be iterated so as to hide even more information, if the ancestor
//! concept is used."
//!
//! Abstraction serves the privacy goal of §4.3: "By expressing the policy
//! through concepts, the VO party can avoid having to request a specific Id
//! type … it can ask for a generic business list, rather than naming
//! exactly the type of document needed."

use crate::policy::{DisclosurePolicy, PolicyBody};
use crate::term::{CredentialSpec, Term};
use trust_vo_ontology::Ontology;

/// Substitute a typed term's credential name by the concept that the
/// ontology binds it to. Conditions are preserved. Terms that are already
/// concept-level, variable, or whose type has no owning concept are
/// returned unchanged.
pub fn abstract_term(term: &Term, ontology: &Ontology) -> Term {
    let CredentialSpec::Type(cred_type) = &term.spec else {
        return term.clone();
    };
    let owning = ontology
        .concepts()
        .find(|c| c.credential_types().contains(cred_type.as_str()));
    match owning {
        Some(concept) => Term {
            spec: CredentialSpec::Concept(concept.name.clone()),
            conditions: term.conditions.clone(),
        },
        None => term.clone(),
    }
}

/// Iterate the abstraction `levels` more times by climbing the `is_a`
/// hierarchy: each level replaces a concept by its nearest ancestor (if
/// any). `levels == 0` performs only the name→concept substitution.
pub fn lift_term(term: &Term, ontology: &Ontology, levels: usize) -> Term {
    let mut current = abstract_term(term, ontology);
    for _ in 0..levels {
        let CredentialSpec::Concept(name) = &current.spec else {
            break;
        };
        match ontology.ancestors(name).first() {
            Some(&parent) => {
                current.spec = CredentialSpec::Concept(parent.to_owned());
            }
            None => break,
        }
    }
    current
}

/// Abstract every term of a policy (delivery rules are unchanged).
pub fn abstract_policy(
    policy: &DisclosurePolicy,
    ontology: &Ontology,
    levels: usize,
) -> DisclosurePolicy {
    let body = match &policy.body {
        PolicyBody::Deliv => PolicyBody::Deliv,
        PolicyBody::Terms(terms) => PolicyBody::Terms(
            terms
                .iter()
                .map(|t| lift_term(t, ontology, levels))
                .collect(),
        ),
    };
    DisclosurePolicy {
        id: policy.id.clone(),
        target: policy.target.clone(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rterm::Resource;
    use trust_vo_ontology::Concept;

    fn ontology() -> Ontology {
        let mut o = Ontology::new();
        o.add(Concept::new("IntelBadge").implemented_by("IntelEmployeeCard"));
        o.add(Concept::new("EmployeeId"));
        o.add(Concept::new("Identity"));
        assert!(o.add_is_a("IntelBadge", "EmployeeId"));
        assert!(o.add_is_a("EmployeeId", "Identity"));
        o
    }

    #[test]
    fn typed_term_abstracts_to_owning_concept() {
        // The §4.3 example: "verify that the counterpart has an Intel
        // issued card at run time without revealing that this is the one
        // kind needed".
        let t = Term::of_type("IntelEmployeeCard");
        let a = abstract_term(&t, &ontology());
        assert_eq!(a.spec, CredentialSpec::Concept("IntelBadge".into()));
    }

    #[test]
    fn conditions_survive_abstraction() {
        let t = Term::of_type("IntelEmployeeCard").where_attr("Division", "Fab");
        let a = abstract_term(&t, &ontology());
        assert_eq!(a.conditions.len(), 1);
    }

    #[test]
    fn unbound_type_unchanged() {
        let t = Term::of_type("MysteryCredential");
        assert_eq!(abstract_term(&t, &ontology()), t);
    }

    #[test]
    fn lifting_climbs_ancestors() {
        let t = Term::of_type("IntelEmployeeCard");
        let o = ontology();
        assert_eq!(
            lift_term(&t, &o, 0).spec,
            CredentialSpec::Concept("IntelBadge".into())
        );
        assert_eq!(
            lift_term(&t, &o, 1).spec,
            CredentialSpec::Concept("EmployeeId".into())
        );
        assert_eq!(
            lift_term(&t, &o, 2).spec,
            CredentialSpec::Concept("Identity".into())
        );
        // Lifting past the root saturates.
        assert_eq!(
            lift_term(&t, &o, 9).spec,
            CredentialSpec::Concept("Identity".into())
        );
    }

    #[test]
    fn variable_terms_unchanged() {
        let t = Term::variable();
        assert_eq!(lift_term(&t, &ontology(), 3), t);
    }

    #[test]
    fn policy_abstraction_covers_all_terms() {
        let p = DisclosurePolicy::rule(
            "p",
            Resource::service("VoMembership"),
            vec![
                Term::of_type("IntelEmployeeCard"),
                Term::of_type("MysteryCredential"),
            ],
        );
        let a = abstract_policy(&p, &ontology(), 1);
        let terms = a.terms();
        assert_eq!(terms[0].spec, CredentialSpec::Concept("EmployeeId".into()));
        assert_eq!(
            terms[1].spec,
            CredentialSpec::Type("MysteryCredential".into())
        );
        // Delivery rules pass through.
        let d = DisclosurePolicy::deliv("d", Resource::credential("X"));
        assert_eq!(abstract_policy(&d, &ontology(), 1), d);
    }
}
