//! X-TNL disclosure policies (paper §4.1).
//!
//! "The disclosure policies state the conditions under which a resource or
//! a credential can be released during a negotiation." Policies are logic
//! rules built from **terms** `P(C)` (credential type + conditions) and
//! **R-Terms** `ResName(attrset)` (resource name + attributes):
//!
//! ```text
//! R ← T₁, T₂, …, Tₙ     (n ≥ 1)      — release R if all terms satisfied
//! R ← DELIV                           — delivery rule: R is freely released
//! ```
//!
//! A policy "is satisfied if the stated credentials are disclosed to the
//! policy sender and the policy conditions (if any) evaluated as true".
//! Several policies may protect the same resource — they are
//! *alternatives*, which is what gives negotiation trees their multiedges.
//!
//! Modules:
//!
//! * [`term`] — terms, with typed or unspecified credential types (the
//!   paper allows a variable type "to express constraints on the
//!   counterpart properties without specifying from which types of
//!   credential such properties should be obtained"), and concept-level
//!   terms for the ontology extension (§4.3.1),
//! * [`rterm`] — resources (credentials, services, files),
//! * [`condition`] — attribute conditions, stored as XPath expressions
//!   exactly as the prototype's `<certCond>` elements do,
//! * [`policy`] — the disclosure-policy rule and policy sets,
//! * [`compliance`] — checking a term against an X-Profile,
//! * [`xml`] — the proprietary XML format of Figs. 6–7,
//! * [`abstraction`] — §4.3.1's substitution of credential names by
//!   concept names (policy abstraction over the ontology).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abstraction;
pub mod compliance;
pub mod condition;
pub mod group;
pub mod policy;
pub mod rterm;
pub mod term;
pub mod xacml;
pub mod xml;

pub use compliance::{satisfying_credentials, term_satisfied};
pub use condition::Condition;
pub use group::{vo_property_term, GroupCondition};
pub use policy::{DisclosurePolicy, PolicyBody, PolicyId, PolicySet};
pub use rterm::{Resource, ResourceKind};
pub use term::{CredentialSpec, Term};
pub use xacml::{import_policy, import_policy_set};
