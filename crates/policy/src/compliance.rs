//! Compliance checking: does an X-Profile satisfy a term?
//!
//! During the policy evaluation phase "the receiving party verifies whether
//! its χ-Profile satisfies the conditions stated by the policies" (§4.2).
//! For plain typed/variable terms this is direct matching; for concept
//! terms the receiver first resolves the concept through its ontology
//! (Algorithm 1) and then checks the mapped credential against the term's
//! conditions.

use crate::term::{CredentialSpec, Term};
use trust_vo_credential::{Credential, XProfile};
use trust_vo_ontology::Ontology;

/// Default similarity threshold for concept resolution, matching the
/// confidence floor used throughout the workspace.
pub const DEFAULT_SIMILARITY_THRESHOLD: f64 = 0.25;

/// All credentials in `profile` that satisfy `term`.
///
/// For concept terms, resolution goes through `ontology` (when provided):
/// the mapped credential is checked against the term's conditions; per
/// Algorithm 1 a single best credential is selected, so the result has at
/// most one element in that case.
pub fn satisfying_credentials<'a>(
    term: &Term,
    profile: &'a XProfile,
    ontology: Option<&Ontology>,
) -> Vec<&'a Credential> {
    match &term.spec {
        CredentialSpec::Type(_) | CredentialSpec::Variable => profile
            .credentials()
            .iter()
            .filter(|c| term.matches_credential(c))
            .collect(),
        CredentialSpec::Concept(name) => {
            let Some(ontology) = ontology else {
                return Vec::new();
            };
            // Resolve the concept as Algorithm 1 does (direct lookup, then
            // one indexed similarity scan — the ontology's inverted token
            // index makes this O(candidates), not O(concepts)). The
            // mapping memo is not consulted here: the result depends on
            // the term's conditions, which are not part of the memo key …
            let resolved = if ontology.contains(name) {
                name.clone()
            } else {
                match trust_vo_ontology::match_concept(name, ontology, DEFAULT_SIMILARITY_THRESHOLD)
                {
                    Some(m) => m.target,
                    None => return Vec::new(),
                }
            };
            // … then select among the bound credentials, but filter by the
            // term's conditions *before* the sensitivity clustering, so a
            // conditioned concept term is satisfied by the least-sensitive
            // credential that actually meets the conditions.
            let types = ontology.credential_types_for(&resolved);
            let mut candidates: Vec<&Credential> = profile
                .credentials()
                .iter()
                .filter(|c| types.contains(c.cred_type()))
                .filter(|c| term.conditions.iter().all(|cond| cond.holds_for(c)))
                .collect();
            candidates.sort_by_key(|c| (profile.sensitivity_of(c.id()), c.id().clone()));
            candidates
        }
    }
}

/// Is the term satisfiable from `profile` at all?
pub fn term_satisfied(term: &Term, profile: &XProfile, ontology: Option<&Ontology>) -> bool {
    !satisfying_credentials(term, profile, ontology).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trust_vo_credential::{Attribute, CredentialAuthority, Sensitivity, TimeRange, Timestamp};
    use trust_vo_crypto::KeyPair;
    use trust_vo_ontology::Concept;

    fn window() -> TimeRange {
        TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0))
    }

    fn profile() -> XProfile {
        let mut ca = CredentialAuthority::new("INFN");
        let keys = KeyPair::from_seed(b"aero");
        let mut p = XProfile::new("Aerospace");
        p.add(
            ca.issue(
                "ISO9000Certified",
                "Aerospace",
                keys.public,
                vec![Attribute::new("QualityRegulation", "UNI EN ISO 9000")],
                window(),
            )
            .unwrap(),
        );
        p.add_with_sensitivity(
            ca.issue(
                "CertificationAuthorityCompany",
                "Aerospace",
                keys.public,
                vec![Attribute::new("Issuer", "BBB")],
                window(),
            )
            .unwrap(),
            Sensitivity::Medium,
        );
        p
    }

    fn ontology() -> Ontology {
        let mut o = Ontology::new();
        o.add(
            Concept::new("QualityCertification")
                .keyword("ISO")
                .implemented_by("ISO9000Certified"),
        );
        o.add(Concept::new("BalanceSheet").implemented_by("CertificationAuthorityCompany"));
        o
    }

    #[test]
    fn typed_term_finds_credential() {
        let t = Term::of_type("ISO9000Certified");
        assert!(term_satisfied(&t, &profile(), None));
        assert_eq!(satisfying_credentials(&t, &profile(), None).len(), 1);
    }

    #[test]
    fn typed_term_with_failing_condition() {
        let t = Term::of_type("ISO9000Certified").where_attr("QualityRegulation", "ISO 14000");
        assert!(!term_satisfied(&t, &profile(), None));
    }

    #[test]
    fn variable_term_scans_all_credentials() {
        let t = Term::variable().where_attr("Issuer", "BBB");
        let profile = profile();
        let found = satisfying_credentials(&t, &profile, None);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].cred_type(), "CertificationAuthorityCompany");
    }

    #[test]
    fn concept_term_requires_ontology() {
        let t = Term::of_concept("QualityCertification");
        assert!(!term_satisfied(&t, &profile(), None));
        assert!(term_satisfied(&t, &profile(), Some(&ontology())));
    }

    #[test]
    fn concept_term_resolves_via_mapping() {
        // The paper's §5 example: the policy `VoMembership <-
        // WebDesignerQuality {UNI EN ISO 9000}` is mapped by the receiver
        // onto its local ISO credential.
        let t = Term::of_concept("Quality_Certification_ISO")
            .where_attr("QualityRegulation", "UNI EN ISO 9000");
        let profile = profile();
        let ontology = ontology();
        let found = satisfying_credentials(&t, &profile, Some(&ontology));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].cred_type(), "ISO9000Certified");
    }

    #[test]
    fn concept_term_conditions_still_enforced() {
        let t = Term::of_concept("QualityCertification").where_attr("QualityRegulation", "WRONG");
        assert!(!term_satisfied(&t, &profile(), Some(&ontology())));
    }

    #[test]
    fn unknown_concept_unsatisfied() {
        let t = Term::of_concept("Xylophone");
        assert!(!term_satisfied(&t, &profile(), Some(&ontology())));
    }
}
