//! The proprietary XML policy format (paper Fig. 7).
//!
//! "A policy is defined essentially by three components: `<resource>`,
//! `<properties>` and type. The `<resource>` element simply specifies the
//! credential protected by the disclosure policy (target attribute). The
//! `<properties>` element specifies the conditions that the credential of
//! the other party should satisfy … as many subelements, named
//! `<certificate>`, as the number of conditions. The element
//! `<certificate>` has an attribute named targetCertType … Additional
//! conditions … are specified in the subelements `<certCond>`." (§6.2)

use crate::condition::Condition;
use crate::policy::{DisclosurePolicy, PolicyBody, PolicyId};
use crate::rterm::{Resource, ResourceKind};
use crate::term::{CredentialSpec, Term};
use trust_vo_xmldoc::{Element, Node};

/// Error produced when an XML document is not a valid policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyParseError(pub String);

impl std::fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed policy document: {}", self.0)
    }
}

impl std::error::Error for PolicyParseError {}

/// Serialize a policy to its XML form.
pub fn policy_to_xml(policy: &DisclosurePolicy) -> Element {
    let mut resource = Element::new("resource")
        .attr("target", &policy.target.name)
        .attr("kind", policy.target.kind.label());
    for (name, value) in &policy.target.attrs {
        resource.children.push(Node::Element(
            Element::new("attr").attr("name", name).attr("value", value),
        ));
    }
    let form = if policy.is_deliv() { "deliv" } else { "rule" };
    let mut root = Element::new("policy")
        .attr("id", &policy.id.0)
        .attr("form", form)
        .child(resource);
    if let PolicyBody::Terms(terms) = &policy.body {
        let mut properties = Element::new("properties");
        for term in terms {
            let mut cert = Element::new("certificate");
            match &term.spec {
                CredentialSpec::Type(name) => cert.set_attr("targetCertType", name),
                CredentialSpec::Variable => cert.set_attr("targetCertType", "*"),
                CredentialSpec::Concept(name) => cert.set_attr("targetConcept", name),
            }
            for cond in &term.conditions {
                cert.children
                    .push(Node::Element(Element::new("certCond").text(cond.source())));
            }
            properties.children.push(Node::Element(cert));
        }
        root.children.push(Node::Element(properties));
    }
    root
}

/// Parse a policy from its XML form.
pub fn policy_from_xml(root: &Element) -> Result<DisclosurePolicy, PolicyParseError> {
    if root.name != "policy" {
        return Err(PolicyParseError(format!(
            "expected <policy>, found <{}>",
            root.name
        )));
    }
    let id = root
        .get_attr("id")
        .ok_or_else(|| PolicyParseError("missing id attribute".into()))?;
    let form = root.get_attr("form").unwrap_or("rule");
    let resource_el = root
        .first("resource")
        .ok_or_else(|| PolicyParseError("missing <resource>".into()))?;
    let target_name = resource_el
        .get_attr("target")
        .ok_or_else(|| PolicyParseError("<resource> missing target".into()))?;
    let kind = resource_el
        .get_attr("kind")
        .and_then(ResourceKind::parse)
        .unwrap_or(ResourceKind::Credential);
    let mut target = Resource {
        name: target_name.to_owned(),
        kind,
        attrs: Vec::new(),
    };
    for attr_el in resource_el.all("attr") {
        let name = attr_el
            .get_attr("name")
            .ok_or_else(|| PolicyParseError("<attr> missing name".into()))?;
        let value = attr_el
            .get_attr("value")
            .ok_or_else(|| PolicyParseError("<attr> missing value".into()))?;
        target.attrs.push((name.to_owned(), value.to_owned()));
    }
    match form {
        "deliv" => Ok(DisclosurePolicy {
            id: PolicyId(id.to_owned()),
            target,
            body: PolicyBody::Deliv,
        }),
        "rule" => {
            let properties = root
                .first("properties")
                .ok_or_else(|| PolicyParseError("rule policy missing <properties>".into()))?;
            let mut terms = Vec::new();
            for cert in properties.all("certificate") {
                let spec = if let Some(concept) = cert.get_attr("targetConcept") {
                    CredentialSpec::Concept(concept.to_owned())
                } else {
                    match cert.get_attr("targetCertType") {
                        Some("*") => CredentialSpec::Variable,
                        Some(name) => CredentialSpec::Type(name.to_owned()),
                        None => {
                            return Err(PolicyParseError(
                                "<certificate> needs targetCertType or targetConcept".into(),
                            ))
                        }
                    }
                };
                let mut conditions = Vec::new();
                for cond_el in cert.all("certCond") {
                    let text = cond_el.text_content();
                    let cond = Condition::parse(&text)
                        .map_err(|e| PolicyParseError(format!("bad certCond '{text}': {e}")))?;
                    conditions.push(cond);
                }
                terms.push(Term { spec, conditions });
            }
            if terms.is_empty() {
                return Err(PolicyParseError(
                    "rule policy has no <certificate> terms".into(),
                ));
            }
            Ok(DisclosurePolicy {
                id: PolicyId(id.to_owned()),
                target,
                body: PolicyBody::Terms(terms),
            })
        }
        other => Err(PolicyParseError(format!("unknown policy form '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 7 policy: disclosing "ISO 9000 Certified" requires an
    /// Aircraft-association accreditation credential.
    fn fig7_policy() -> DisclosurePolicy {
        DisclosurePolicy::rule(
            "pol-iso-9000",
            Resource::credential("ISO9000Certified"),
            vec![Term::of_type("AAAccreditation").with_condition(
                Condition::parse("//header/issuer = 'American Aircraft Association'").unwrap(),
            )],
        )
    }

    #[test]
    fn fig7_shape() {
        let xml = policy_to_xml(&fig7_policy());
        let text = trust_vo_xmldoc::to_string_pretty(&xml);
        assert!(text.contains("<resource target=\"ISO9000Certified\" kind=\"credential\"/>"));
        assert!(text.contains("<certificate targetCertType=\"AAAccreditation\">"));
        assert!(text.contains("<certCond>"));
    }

    #[test]
    fn roundtrip_rule() {
        let p = fig7_policy();
        let text = trust_vo_xmldoc::to_string(&policy_to_xml(&p));
        let back = policy_from_xml(&trust_vo_xmldoc::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn roundtrip_deliv() {
        let p = DisclosurePolicy::deliv("d1", Resource::file("/designs/wing-7.cad"));
        let text = trust_vo_xmldoc::to_string(&policy_to_xml(&p));
        let back = policy_from_xml(&trust_vo_xmldoc::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn roundtrip_variable_and_concept_terms() {
        let p = DisclosurePolicy::rule(
            "p",
            Resource::service("VoMembership").with_attr("vo", "AircraftOptimization"),
            vec![
                Term::variable().where_attr("Issuer", "BBB"),
                Term::of_concept("BusinessProof"),
            ],
        );
        let text = trust_vo_xmldoc::to_string(&policy_to_xml(&p));
        let back = policy_from_xml(&trust_vo_xmldoc::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn rejects_malformed() {
        let cases = [
            "<notpolicy/>",
            "<policy/>",
            r#"<policy id="x"/>"#,
            r#"<policy id="x" form="rule"><resource target="R"/></policy>"#,
            r#"<policy id="x" form="rule"><resource target="R"/><properties/></policy>"#,
            r#"<policy id="x" form="weird"><resource target="R"/></policy>"#,
            r#"<policy id="x"><resource target="R"/><properties><certificate/></properties></policy>"#,
        ];
        for doc in cases {
            let el = trust_vo_xmldoc::parse(doc).unwrap();
            assert!(policy_from_xml(&el).is_err(), "{doc}");
        }
    }

    #[test]
    fn bad_cert_cond_reported() {
        let doc = r#"<policy id="x"><resource target="R"/><properties><certificate targetCertType="T"><certCond>///bad</certCond></certificate></properties></policy>"#;
        let el = trust_vo_xmldoc::parse(doc).unwrap();
        let err = policy_from_xml(&el).unwrap_err();
        assert!(err.to_string().contains("bad certCond"));
    }
}
