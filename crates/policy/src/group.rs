//! Group conditions (paper §8, planned extension).
//!
//! "A first extension is related to enhancing the Trust-X language to
//! support the specification of policies with group conditions and
//! requesting credentials that describe VO properties."
//!
//! A **group condition** requires any `k` of `n` terms to be satisfied
//! (e.g. "two of: ISO 9000 certification, AAA accreditation, a recent
//! balance sheet"). X-TNL rules are pure conjunctions with per-resource
//! alternatives providing disjunction, so a k-of-n group compiles exactly
//! onto that machinery: one alternative rule per k-subset. This module
//! performs the compilation, keeping the negotiation engine unchanged.
//!
//! **VO-property terms** are the second half of the extension: terms over
//! the VO membership certificate itself (`VoProperty`), compiled into
//! conditions on the `vo` / `role` / `voPublicKey` attributes of the
//! X.509v2 membership token, re-encoded as an X-TNL credential type
//! `VoMembershipToken`.

use crate::condition::Condition;
use crate::policy::DisclosurePolicy;
use crate::rterm::Resource;
use crate::term::Term;

/// A k-of-n group condition over terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupCondition {
    /// How many of the terms must be satisfied.
    pub k: usize,
    /// The candidate terms.
    pub terms: Vec<Term>,
}

impl GroupCondition {
    /// Build a group; panics if `k` is zero or exceeds the term count
    /// (scenario-construction errors).
    pub fn new(k: usize, terms: Vec<Term>) -> Self {
        assert!(k >= 1, "a group condition requires k >= 1");
        assert!(k <= terms.len(), "k = {k} exceeds {} terms", terms.len());
        GroupCondition { k, terms }
    }

    /// All k-subsets of the term list, in lexicographic index order.
    fn subsets(&self) -> Vec<Vec<Term>> {
        let n = self.terms.len();
        let mut out = Vec::new();
        let mut idx: Vec<usize> = (0..self.k).collect();
        loop {
            out.push(idx.iter().map(|&i| self.terms[i].clone()).collect());
            // Advance the combination.
            let mut i = self.k;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if idx[i] != i + n - self.k {
                    break;
                }
            }
            if idx[self.k - 1] == n - 1 && idx[0] == n - self.k {
                return out;
            }
            idx[i] += 1;
            for j in i + 1..self.k {
                idx[j] = idx[j - 1] + 1;
            }
        }
    }

    /// Compile into ordinary X-TNL alternatives: one conjunctive rule per
    /// k-subset, all protecting `target`. Ids are `prefix#0`, `prefix#1`, …
    pub fn compile(&self, prefix: &str, target: Resource) -> Vec<DisclosurePolicy> {
        self.subsets()
            .into_iter()
            .enumerate()
            .map(|(i, terms)| {
                DisclosurePolicy::rule(format!("{prefix}#{i}"), target.clone(), terms)
            })
            .collect()
    }

    /// Number of compiled alternatives: `C(n, k)`.
    pub fn alternative_count(&self) -> usize {
        let n = self.terms.len();
        let k = self.k.min(n - self.k); // symmetry
        let mut result: usize = 1;
        for i in 0..k {
            result = result * (n - i) / (i + 1);
        }
        result
    }
}

/// A term requiring the counterpart's VO membership token to carry given
/// properties — the "credentials that describe VO properties" half of the
/// extension. Compiles into a typed term over `VoMembershipToken`.
pub fn vo_property_term(vo_name: Option<&str>, role: Option<&str>) -> Term {
    let mut term = Term::of_type("VoMembershipToken");
    if let Some(vo) = vo_name {
        term = term.with_condition(Condition::attr_equals("vo", vo));
    }
    if let Some(role) = role {
        term = term.with_condition(Condition::attr_equals("role", role));
    }
    term
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(n: usize) -> Vec<Term> {
        (0..n).map(|i| Term::of_type(format!("T{i}"))).collect()
    }

    #[test]
    fn one_of_n_compiles_to_n_alternatives() {
        let g = GroupCondition::new(1, terms(3));
        let policies = g.compile("grp", Resource::service("Svc"));
        assert_eq!(policies.len(), 3);
        assert_eq!(g.alternative_count(), 3);
        for (i, p) in policies.iter().enumerate() {
            assert_eq!(p.terms().len(), 1);
            assert_eq!(p.id.0, format!("grp#{i}"));
            assert_eq!(p.target.name, "Svc");
        }
    }

    #[test]
    fn two_of_three_compiles_to_three_pairs() {
        let g = GroupCondition::new(2, terms(3));
        let policies = g.compile("grp", Resource::service("Svc"));
        assert_eq!(policies.len(), 3);
        let pairs: Vec<Vec<String>> = policies
            .iter()
            .map(|p| p.terms().iter().map(Term::key).collect())
            .collect();
        assert_eq!(
            pairs,
            vec![
                vec!["T0".to_owned(), "T1".to_owned()],
                vec!["T0".to_owned(), "T2".to_owned()],
                vec!["T1".to_owned(), "T2".to_owned()],
            ]
        );
    }

    #[test]
    fn n_of_n_is_plain_conjunction() {
        let g = GroupCondition::new(4, terms(4));
        let policies = g.compile("grp", Resource::credential("C"));
        assert_eq!(policies.len(), 1);
        assert_eq!(policies[0].terms().len(), 4);
    }

    #[test]
    fn alternative_count_is_binomial() {
        assert_eq!(GroupCondition::new(2, terms(5)).alternative_count(), 10);
        assert_eq!(GroupCondition::new(3, terms(6)).alternative_count(), 20);
        assert_eq!(GroupCondition::new(1, terms(1)).alternative_count(), 1);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        GroupCondition::new(0, terms(2));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_k_panics() {
        GroupCondition::new(3, terms(2));
    }

    #[test]
    fn compiled_subsets_cover_binomial_count() {
        for (k, n) in [(1, 4), (2, 4), (3, 4), (2, 6)] {
            let g = GroupCondition::new(k, terms(n));
            assert_eq!(
                g.compile("x", Resource::service("S")).len(),
                g.alternative_count(),
                "k={k} n={n}"
            );
        }
    }

    #[test]
    fn vo_property_term_shapes() {
        let t = vo_property_term(Some("AircraftOptimization"), Some("HpcPartnerService"));
        assert_eq!(t.key(), "VoMembershipToken");
        assert_eq!(t.conditions.len(), 2);
        let t = vo_property_term(None, None);
        assert!(t.conditions.is_empty());
    }
}
