//! Modular arithmetic in a fixed 62-bit safe-prime group.
//!
//! The group parameters are hard-coded and were verified offline with
//! Miller–Rabin: `P = 2Q + 1` with both `P` and `Q` prime, and `G = 4`
//! generates the order-`Q` quadratic-residue subgroup.
//!
//! All products of two values `< P < 2^63` fit in `u128`, so the arithmetic
//! here is exact without any multi-precision machinery. The small size is a
//! deliberate simulation-grade substitution (see crate docs).

/// The safe prime modulus `P = 2Q + 1`.
pub const P: u64 = 4_611_686_018_427_394_499; // 0x40000000000019c3
/// The prime subgroup order `Q = (P - 1) / 2`.
pub const Q: u64 = 2_305_843_009_213_697_249; // 0x2000000000000ce1
/// Generator of the order-`Q` subgroup (a quadratic residue).
pub const G: u64 = 4;

/// `(a * b) mod m` without overflow (inputs must be `< 2^64`).
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64
}

/// `(a + b) mod m` without overflow.
#[inline]
pub fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    ((u128::from(a) + u128::from(b)) % u128::from(m)) as u64
}

/// `(a - b) mod m`, always in `[0, m)`.
#[inline]
pub fn sub_mod(a: u64, b: u64, m: u64) -> u64 {
    let (a, b) = (a % m, b % m);
    if a >= b {
        a - b
    } else {
        m - (b - a)
    }
}

/// `base^exp mod m` by square-and-multiply.
pub fn pow_mod(base: u64, mut exp: u64, m: u64) -> u64 {
    debug_assert!(m > 1);
    let mut base = base % m;
    let mut acc: u64 = 1;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Multiplicative inverse modulo a prime `m` (via Fermat's little theorem).
pub fn inv_mod(a: u64, m: u64) -> u64 {
    debug_assert!(!a.is_multiple_of(m), "zero has no inverse");
    pow_mod(a, m - 2, m)
}

/// `G^exp mod P` — the group exponentiation every key/signature uses.
/// Served from the precomputed fixed-base window table
/// ([`crate::fastexp`]); bit-identical to `pow_mod(G, exp, P)` on the
/// full `u64` exponent range.
#[inline]
pub fn g_pow(exp: u64) -> u64 {
    crate::fastexp::g_pow_windowed(exp)
}

/// The Jacobi symbol `(a/n)` for odd `n`, by the binary shift-and-subtract
/// algorithm (quadratic reciprocity): `1` if `a` is a quadratic residue
/// mod an odd prime `n`, `-1` if a non-residue, `0` when `gcd(a, n) != 1`.
///
/// Runs in `O(log² n)` word operations with no modular exponentiation at
/// all — for the safe prime `P` it replaces the `x^Q mod P` Euler-criterion
/// membership check (~93 128-bit modular multiplications) with ~60 shifts
/// and subtractions.
pub fn jacobi(mut a: u64, mut n: u64) -> i32 {
    debug_assert!(n % 2 == 1, "Jacobi symbol requires odd n");
    a %= n;
    if a == 0 {
        return i32::from(n == 1);
    }
    let mut t = 1i32;
    loop {
        // Strip all factors of two at once; (2/n)^k = -1 iff k is odd and
        // n ≡ 3, 5 (mod 8). Subtraction keeps every step at latency ~1
        // cycle — a division-based Euclid spends ~36 division latencies on
        // random 62-bit inputs, an order of magnitude slower.
        let k = a.trailing_zeros();
        a >>= k;
        if k & 1 == 1 && matches!(n & 7, 3 | 5) {
            t = -t;
        }
        if a == 1 {
            return t;
        }
        if a < n {
            // Reciprocity for odd a < n: flip sign iff both ≡ 3 (mod 4).
            if a & n & 2 != 0 {
                t = -t;
            }
            std::mem::swap(&mut a, &mut n);
        }
        a -= n;
        if a == 0 {
            // a == n before the subtraction: gcd = n > 1 (both odd, n > 1).
            return 0;
        }
    }
}

/// True iff `x` is a member of the order-`Q` subgroup (excluding 0).
///
/// Because `P = 2Q + 1` is a safe prime, the order-`Q` subgroup is exactly
/// the quadratic residues, so membership is Euler's criterion
/// `x^Q ≡ 1 (mod P)` — equivalently `(x/P) = 1`, evaluated here with the
/// exponentiation-free [`jacobi`] symbol.
pub fn in_subgroup(x: u64) -> bool {
    x != 0 && x < P && jacobi(x, P) == 1
}

/// Reduce a 32-byte digest into a nonzero scalar modulo `Q`.
///
/// Takes the digest as a little pile of big-endian words folded together;
/// the result is mapped into `[1, Q)` so it is always usable as an exponent
/// or challenge.
pub fn scalar_from_digest(digest: &[u8; 32]) -> u64 {
    let mut acc: u64 = 0;
    for chunk in digest.chunks_exact(8) {
        let w = u64::from_be_bytes([
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
        ]);
        // Fold with a multiplier to mix all four words.
        acc = add_mod(mul_mod(acc, 0x9e3779b97f4a7c15 % Q, Q), w % Q, Q);
    }
    acc % (Q - 1) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generator_is_in_subgroup() {
        assert!(in_subgroup(G));
        assert_eq!(pow_mod(G, Q, P), 1);
        assert_ne!(pow_mod(G, 1, P), 1);
    }

    #[test]
    fn parameters_relate() {
        assert_eq!(P, 2 * Q + 1);
    }

    #[test]
    fn pow_mod_edges() {
        assert_eq!(pow_mod(0, 0, P), 1); // 0^0 == 1 by convention here
        assert_eq!(pow_mod(5, 0, P), 1);
        assert_eq!(pow_mod(5, 1, P), 5);
        assert_eq!(
            pow_mod(2, 62, P),
            (1u128 << 62).rem_euclid(u128::from(P)) as u64
        );
    }

    #[test]
    fn sub_mod_wraps() {
        assert_eq!(sub_mod(1, 2, 7), 6);
        assert_eq!(sub_mod(2, 2, 7), 0);
        assert_eq!(sub_mod(9, 1, 7), 1);
    }

    proptest! {
        #[test]
        fn inverse_is_inverse(a in 1u64..Q) {
            let inv = inv_mod(a, Q);
            prop_assert_eq!(mul_mod(a, inv, Q), 1);
        }

        #[test]
        fn exponent_laws(a in 0u64..Q, b in 0u64..Q) {
            // g^(a+b) == g^a * g^b
            let lhs = g_pow(add_mod(a, b, Q));
            let rhs = mul_mod(g_pow(a), g_pow(b), P);
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn subgroup_closure(a in 1u64..Q) {
            prop_assert!(in_subgroup(g_pow(a)));
        }

        #[test]
        fn scalar_from_digest_in_range(bytes in proptest::array::uniform32(any::<u8>())) {
            let s = scalar_from_digest(&bytes);
            prop_assert!((1..Q).contains(&s));
        }

        #[test]
        fn jacobi_matches_euler_criterion(x in 1u64..P) {
            // Euler: x^Q ≡ (x/P) mod P for the safe prime P = 2Q + 1.
            let euler = pow_mod(x, Q, P);
            let expect = if euler == 1 { 1 } else { -1 };
            prop_assert_eq!(jacobi(x, P), expect);
            // And the membership predicate agrees with the seed definition.
            prop_assert_eq!(in_subgroup(x), euler == 1);
        }

        #[test]
        fn jacobi_is_multiplicative(a in 1u64..P, b in 1u64..P) {
            prop_assert_eq!(jacobi(mul_mod(a, b, P), P), jacobi(a, P) * jacobi(b, P));
        }
    }

    #[test]
    fn jacobi_edges() {
        assert_eq!(jacobi(0, P), 0);
        assert_eq!(jacobi(1, P), 1);
        assert_eq!(jacobi(G, P), 1); // the generator is a QR by construction
        assert_eq!(jacobi(P, P), 0);
        // Small odd composite: (2/9) = 1, (2/15) = 1, (7/15) = ...
        assert_eq!(jacobi(2, 9), 1);
        assert_eq!(jacobi(5, 9), 1);
    }

    /// Pins `scalar_from_digest`'s exact outputs. The multiplier-fold is
    /// part of every signature (nonces and challenges go through it): if
    /// the fast-path work ever changed these values, every existing
    /// signature in tests and persisted fixtures would silently break.
    #[test]
    fn scalar_from_digest_outputs_pinned() {
        let cases: [([u8; 32], u64); 4] = [
            ([0u8; 32], SCALAR_ZEROES),
            ([0xff; 32], SCALAR_ONES),
            (crate::sha256(b"trust-vo"), SCALAR_TRUST_VO),
            (crate::sha256(b"issuer:INFN"), SCALAR_INFN),
        ];
        for (digest, expect) in cases {
            assert_eq!(scalar_from_digest(&digest), expect);
        }
    }

    // Pinned constants (computed from the seed implementation; must never
    // change).
    const SCALAR_ZEROES: u64 = 1;
    const SCALAR_ONES: u64 = 422_263_791_353_639_107;
    const SCALAR_TRUST_VO: u64 = 69_054_003_334_880_024;
    const SCALAR_INFN: u64 = 2_213_343_226_070_911_204;
}
