//! Simulation-grade cryptographic substrate for the `trust-vo` workspace.
//!
//! The paper's prototype relies on a conventional PKI (X.509 certificates
//! signed by commercial credential authorities) purely for *sign / verify /
//! revoke* semantics: the trust-negotiation logic never inspects the inside
//! of a signature, it only needs issuance and verification to behave like a
//! digital-signature scheme and to have a realistic, constant per-operation
//! cost.
//!
//! Because no cryptography crates are available in this reproduction, the
//! primitives are implemented from scratch:
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256 (test-vector checked).
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104).
//! * [`base64`] — the standard alphabet with padding, used for the
//!   `<signature>` element of X-TNL credentials.
//! * [`hex`] — lowercase hex encoding for digests and identifiers.
//! * [`group`] — modular arithmetic in a 62-bit safe-prime group, with
//!   subgroup membership via the exponentiation-free Jacobi symbol.
//! * [`fastexp`] — precomputed fixed-base window tables (generator +
//!   cached issuer keys) and Straus multi-exponentiation.
//! * [`schnorr`] — Schnorr signatures over the order-`q` subgroup, with
//!   fast single verification and random-linear-combination batch
//!   verification ([`verify_batch`]).
//! * [`stats`] — process-wide `crypto.*` operation counters.
//!
//! # Security disclaimer
//!
//! The group is only 62 bits wide so that all arithmetic fits in `u128`
//! intermediates. That is **orders of magnitude below any acceptable
//! security level** — this module simulates the *behaviour* of a PKI for a
//! systems-research reproduction; it must never be used to protect real
//! data. See `DESIGN.md` §4 for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base64;
pub mod fastexp;
pub mod group;
pub mod hex;
pub mod hmac;
pub mod schnorr;
pub mod sha256;
pub mod stats;

pub use schnorr::{verify_batch, KeyPair, PrecomputedKey, PublicKey, SecretKey, Signature};
pub use sha256::{sha256, Digest};

/// Convenience: digest arbitrary bytes and return the lowercase hex form.
pub fn digest_hex(data: &[u8]) -> String {
    hex::encode(&sha256(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_hex_matches_known_vector() {
        // SHA-256("abc")
        assert_eq!(
            digest_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }
}
