//! Standard base64 (RFC 4648, with `=` padding), implemented from scratch.
//!
//! X-TNL credentials carry the issuer signature "encoded in base64" in the
//! `<signature>` element (paper §6.2, Example 1); this module provides that
//! encoding.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input length is not a multiple of four.
    BadLength(usize),
    /// A byte outside the alphabet (and not padding) was found.
    BadByte {
        /// Offset of the offending byte.
        index: usize,
        /// The offending byte value.
        byte: u8,
    },
    /// Padding appeared somewhere other than the final one or two positions.
    BadPadding,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadLength(n) => write!(f, "base64 length {n} is not a multiple of 4"),
            Self::BadByte { index, byte } => {
                write!(f, "invalid base64 byte 0x{byte:02x} at offset {index}")
            }
            Self::BadPadding => write!(f, "misplaced base64 padding"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode `data` as base64 with padding.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    let mut chunks = data.chunks_exact(3);
    for c in &mut chunks {
        let n = (u32::from(c[0]) << 16) | (u32::from(c[1]) << 8) | u32::from(c[2]);
        out.push(ALPHABET[(n >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(n >> 12) as usize & 0x3f] as char);
        out.push(ALPHABET[(n >> 6) as usize & 0x3f] as char);
        out.push(ALPHABET[n as usize & 0x3f] as char);
    }
    match chunks.remainder() {
        [] => {}
        [a] => {
            let n = u32::from(*a) << 16;
            out.push(ALPHABET[(n >> 18) as usize & 0x3f] as char);
            out.push(ALPHABET[(n >> 12) as usize & 0x3f] as char);
            out.push_str("==");
        }
        [a, b] => {
            let n = (u32::from(*a) << 16) | (u32::from(*b) << 8);
            out.push(ALPHABET[(n >> 18) as usize & 0x3f] as char);
            out.push(ALPHABET[(n >> 12) as usize & 0x3f] as char);
            out.push(ALPHABET[(n >> 6) as usize & 0x3f] as char);
            out.push('=');
        }
        _ => unreachable!("chunks_exact(3) remainder is < 3"),
    }
    out
}

fn value_of(byte: u8) -> Option<u8> {
    match byte {
        b'A'..=b'Z' => Some(byte - b'A'),
        b'a'..=b'z' => Some(byte - b'a' + 26),
        b'0'..=b'9' => Some(byte - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decode padded base64.
pub fn decode(text: &str) -> Result<Vec<u8>, DecodeError> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(DecodeError::BadLength(bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (group_idx, group) in bytes.chunks_exact(4).enumerate() {
        let is_last = (group_idx + 1) * 4 == bytes.len();
        let pad = group.iter().filter(|&&b| b == b'=').count();
        if pad > 0 && (!is_last || pad > 2 || group[..4 - pad].contains(&b'=')) {
            return Err(DecodeError::BadPadding);
        }
        let mut n: u32 = 0;
        for (i, &b) in group[..4 - pad].iter().enumerate() {
            let v = value_of(b).ok_or(DecodeError::BadByte {
                index: group_idx * 4 + i,
                byte: b,
            })?;
            n |= u32::from(v) << (18 - 6 * i);
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // RFC 4648 §10 vectors.
    #[test]
    fn rfc4648_vectors() {
        let cases = [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ];
        for (plain, enc) in cases {
            assert_eq!(encode(plain.as_bytes()), enc);
            assert_eq!(decode(enc).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn rejects_bad_length() {
        assert_eq!(decode("abc"), Err(DecodeError::BadLength(3)));
    }

    #[test]
    fn rejects_bad_byte() {
        assert!(matches!(
            decode("ab!d"),
            Err(DecodeError::BadByte {
                index: 2,
                byte: b'!'
            })
        ));
    }

    #[test]
    fn rejects_interior_padding() {
        assert_eq!(decode("Zg==Zg=="), Err(DecodeError::BadPadding));
        assert_eq!(decode("Z==g"), Err(DecodeError::BadPadding));
        assert_eq!(decode("===="), Err(DecodeError::BadPadding));
    }

    proptest! {
        #[test]
        fn roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let enc = encode(&data);
            prop_assert_eq!(decode(&enc).unwrap(), data);
        }

        #[test]
        fn encoded_length_is_ceil(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            prop_assert_eq!(encode(&data).len(), data.len().div_ceil(3) * 4);
        }
    }
}
