//! Process-wide `crypto.*` operation counters.
//!
//! The counters are [`trust_vo_obs::Counter`]s (sharded atomics, always
//! active regardless of the obs crate's `enabled` feature) held in
//! statics: the crypto layer has no per-call context to thread a registry
//! through, and the benches want one authoritative count of how much
//! signature work a whole run performed. Bench binaries export a
//! [`snapshot`] into their collector as `crypto.*` counters at dump time.

use std::sync::LazyLock;
use trust_vo_obs::Counter;

/// Single-signature verifications through the fast path.
pub(crate) static VERIFY: LazyLock<Counter> = LazyLock::new(Counter::new);
/// Single-signature verifications through the reference path.
pub(crate) static VERIFY_REFERENCE: LazyLock<Counter> = LazyLock::new(Counter::new);
/// Batch verification calls.
pub(crate) static VERIFY_BATCH: LazyLock<Counter> = LazyLock::new(Counter::new);
/// Signatures covered by batch verification calls.
pub(crate) static VERIFY_BATCH_SIGS: LazyLock<Counter> = LazyLock::new(Counter::new);
/// Signing operations.
pub(crate) static SIGN: LazyLock<Counter> = LazyLock::new(Counter::new);
/// Fixed-base window tables built (generator + issuer keys).
pub(crate) static TABLE_BUILDS: LazyLock<Counter> = LazyLock::new(Counter::new);
/// Per-key window-table cache hits.
pub(crate) static TABLE_HITS: LazyLock<Counter> = LazyLock::new(Counter::new);

/// A point-in-time copy of every `crypto.*` counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CryptoStats {
    /// Fast-path single verifications.
    pub verify: u64,
    /// Reference-path single verifications.
    pub verify_reference: u64,
    /// Batch verification calls.
    pub verify_batch: u64,
    /// Signatures covered by batch calls.
    pub verify_batch_sigs: u64,
    /// Signing operations.
    pub sign: u64,
    /// Window tables built.
    pub table_builds: u64,
    /// Per-key table cache hits.
    pub table_hits: u64,
}

/// Read the current totals.
pub fn snapshot() -> CryptoStats {
    CryptoStats {
        verify: VERIFY.get(),
        verify_reference: VERIFY_REFERENCE.get(),
        verify_batch: VERIFY_BATCH.get(),
        verify_batch_sigs: VERIFY_BATCH_SIGS.get(),
        sign: SIGN.get(),
        table_builds: TABLE_BUILDS.get(),
        table_hits: TABLE_HITS.get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let before = snapshot();
        VERIFY.inc();
        SIGN.add(2);
        let after = snapshot();
        assert!(after.verify > before.verify);
        assert!(after.sign >= before.sign + 2);
    }
}
