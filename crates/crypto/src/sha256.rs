//! FIPS 180-4 SHA-256, implemented from scratch.
//!
//! Used to hash canonical credential encodings before signing, to derive
//! selective-disclosure commitments, and as the PRF core of [`crate::hmac`].
//!
//! Besides the incremental [`Sha256`] hasher there are two fast paths for
//! the signature hot loop, where almost every input fits in one block:
//!
//! * [`single_block`] + [`digest_block`] — hash a ≤55-byte message without
//!   the incremental hasher's buffering;
//! * [`digest_blocks4`] — four independent single-block digests computed in
//!   lockstep, so the compiler can vectorize the round function across
//!   lanes (multi-buffer hashing; no lane ever mixes with another).

/// A 32-byte SHA-256 digest.
pub type Digest = [u8; 32];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use trust_vo_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), trust_vo_crypto::sha256(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far (for the length suffix).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a hasher in the initial state.
    pub fn new() -> Self {
        Self {
            state: H0,
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorb `data` into the hash state.
    #[inline]
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finish and return the digest.
    #[inline]
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length — written
        // straight into the block buffer (a byte-at-a-time `update` loop
        // here costs more than the compression itself on short inputs).
        let n = self.buf_len;
        self.buf[n] = 0x80;
        self.buf[n + 1..].fill(0);
        if n + 1 > 56 {
            // No room for the length suffix: the padding spills into a
            // second block.
            let block = self.buf;
            self.compress(&block);
            self.buf = [0u8; 64];
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        compress_block(&mut self.state, block);
    }
}

fn compress_block(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    // One round with the working variables already rotated into place;
    // unrolling eight at a time removes the seven register moves the
    // naive `h = g; g = f; …` rotation costs per round.
    macro_rules! round {
        ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $i:expr) => {
            let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
            let ch = ($e & $f) ^ (!$e & $g);
            let t1 = $h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[$i])
                .wrapping_add(w[$i]);
            let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
            let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
            $d = $d.wrapping_add(t1);
            $h = t1.wrapping_add(s0.wrapping_add(maj));
        };
    }
    let mut i = 0;
    while i < 64 {
        round!(a, b, c, d, e, f, g, h, i);
        round!(h, a, b, c, d, e, f, g, i + 1);
        round!(g, h, a, b, c, d, e, f, i + 2);
        round!(f, g, h, a, b, c, d, e, i + 3);
        round!(e, f, g, h, a, b, c, d, i + 4);
        round!(d, e, f, g, h, a, b, c, i + 5);
        round!(c, d, e, f, g, h, a, b, i + 6);
        round!(b, c, d, e, f, g, h, a, i + 7);
        i += 8;
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Pad a ≤55-byte message into its final (single) SHA-256 block: message,
/// `0x80`, zeros, 8-byte big-endian bit length. Returns `None` when the
/// message does not fit (padding needs at least 9 trailing bytes).
#[inline]
pub fn single_block(data: &[u8]) -> Option<[u8; 64]> {
    if data.len() > 55 {
        return None;
    }
    let mut block = [0u8; 64];
    block[..data.len()].copy_from_slice(data);
    block[data.len()] = 0x80;
    block[56..64].copy_from_slice(&((data.len() as u64) * 8).to_be_bytes());
    Some(block)
}

/// SHA-256 of one pre-padded block (see [`single_block`]): the whole hash
/// without the incremental hasher's buffer bookkeeping.
#[inline]
pub fn digest_block(block: &[u8; 64]) -> Digest {
    let mut state = H0;
    compress_block(&mut state, block);
    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// `L` independent single-block SHA-256 digests computed in lockstep
/// (multi-buffer hashing). Lane `l` of the result is exactly
/// `digest_block(blocks[l])` — the lanes never mix.
///
/// The working variables live in a circular array indexed modulo 8 with a
/// per-round offset instead of eight named locals. That keeps the state in
/// memory, so every round is a small load→compute→store tree over
/// `[u32; L]` values that the compiler's SLP vectorizer turns into vector
/// loads, rotates, and adds across the lanes — eight scalar chains would
/// defeat it (the full 64-round dependency tree is too large to match).
fn digest_blocks_multi<const L: usize>(blocks: [&[u8; 64]; L]) -> [Digest; L] {
    type V<const L: usize> = [u32; L];
    #[inline(always)]
    fn vadd<const L: usize>(a: V<L>, b: V<L>) -> V<L> {
        let mut o = [0u32; L];
        for i in 0..L {
            o[i] = a[i].wrapping_add(b[i]);
        }
        o
    }
    #[inline(always)]
    fn vxor<const L: usize>(a: V<L>, b: V<L>) -> V<L> {
        let mut o = [0u32; L];
        for i in 0..L {
            o[i] = a[i] ^ b[i];
        }
        o
    }
    #[inline(always)]
    fn vand<const L: usize>(a: V<L>, b: V<L>) -> V<L> {
        let mut o = [0u32; L];
        for i in 0..L {
            o[i] = a[i] & b[i];
        }
        o
    }
    #[inline(always)]
    fn vandnot<const L: usize>(a: V<L>, b: V<L>) -> V<L> {
        let mut o = [0u32; L];
        for i in 0..L {
            o[i] = !a[i] & b[i];
        }
        o
    }
    #[inline(always)]
    fn vrot<const L: usize>(a: V<L>, n: u32) -> V<L> {
        let mut o = [0u32; L];
        for i in 0..L {
            o[i] = a[i].rotate_right(n);
        }
        o
    }
    #[inline(always)]
    fn vshr<const L: usize>(a: V<L>, n: u32) -> V<L> {
        let mut o = [0u32; L];
        for i in 0..L {
            o[i] = a[i] >> n;
        }
        o
    }

    // Transposed message schedule: w[i] holds word i of every block.
    let mut w = [[0u32; L]; 64];
    for (l, block) in blocks.iter().enumerate() {
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i][l] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
    }
    for i in 16..64 {
        let s0 = vxor(
            vxor(vrot(w[i - 15], 7), vrot(w[i - 15], 18)),
            vshr(w[i - 15], 3),
        );
        let s1 = vxor(
            vxor(vrot(w[i - 2], 17), vrot(w[i - 2], 19)),
            vshr(w[i - 2], 10),
        );
        w[i] = vadd(vadd(w[i - 16], s0), vadd(w[i - 7], s1));
    }

    // s[(j + 8 - r) & 7] is working variable j (a=0 … h=7) in round r.
    let mut s: [[u32; L]; 8] = std::array::from_fn(|j| [H0[j]; L]);
    for r in 0..64 {
        let at = |j: usize| (j + 8 - (r & 7)) & 7;
        let (a, b, c) = (s[at(0)], s[at(1)], s[at(2)]);
        let (e, f, g) = (s[at(4)], s[at(5)], s[at(6)]);
        let h = s[at(7)];
        let s1 = vxor(vxor(vrot(e, 6), vrot(e, 11)), vrot(e, 25));
        let ch = vxor(vand(e, f), vandnot(e, g));
        let t1 = vadd(vadd(h, s1), vadd(vadd(ch, [K[r]; L]), w[r]));
        let s0 = vxor(vxor(vrot(a, 2), vrot(a, 13)), vrot(a, 22));
        let maj = vxor(vxor(vand(a, b), vand(a, c)), vand(b, c));
        s[at(3)] = vadd(s[at(3)], t1);
        s[at(7)] = vadd(t1, vadd(s0, maj));
    }
    std::array::from_fn(|l| {
        let mut out = [0u8; 32];
        for j in 0..8 {
            // After 64 rounds the offset is back at zero: s[j] is variable j.
            let v = H0[j].wrapping_add(s[j][l]);
            out[j * 4..j * 4 + 4].copy_from_slice(&v.to_be_bytes());
        }
        out
    })
}

/// Four-lane `digest_blocks_multi`.
pub fn digest_blocks4(blocks: [&[u8; 64]; 4]) -> [Digest; 4] {
    digest_blocks_multi(blocks)
}

/// Eight-lane `digest_blocks_multi`.
pub fn digest_blocks8(blocks: [&[u8; 64]; 8]) -> [Digest; 8] {
    digest_blocks_multi(blocks)
}

/// Sixteen-lane `digest_blocks_multi` — fills a full 512-bit vector of
/// 32-bit lanes on AVX-512 targets.
pub fn digest_blocks16(blocks: [&[u8; 64]; 16]) -> [Digest; 16] {
    digest_blocks_multi(blocks)
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn hx(data: &[u8]) -> String {
        hex::encode(&sha256(data))
    }

    #[test]
    fn empty_string() {
        assert_eq!(
            hx(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hx(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hx(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hx(&data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot_at_every_split() {
        let data: Vec<u8> = (0u32..300).map(|i| (i * 7 % 251) as u8).collect();
        let whole = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn exactly_block_sized_inputs() {
        // 55/56/63/64/65 bytes straddle the padding boundaries.
        for n in [55usize, 56, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0xabu8; n];
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), sha256(&data), "len {n}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha256(b"a"), sha256(b"b"));
        assert_ne!(sha256(b""), sha256(b"\0"));
    }

    #[test]
    fn single_block_path_matches_incremental() {
        for n in 0..=55usize {
            let data: Vec<u8> = (0..n).map(|i| (i * 13 + n) as u8).collect();
            let block = single_block(&data).expect("fits");
            assert_eq!(digest_block(&block), sha256(&data), "len {n}");
        }
        assert!(single_block(&[0u8; 56]).is_none());
    }

    #[test]
    fn four_lane_digests_match_serial() {
        let msgs: Vec<Vec<u8>> = (0..4)
            .map(|l| (0..(7 + l * 11)).map(|i| (i * 31 + l) as u8).collect())
            .collect();
        let blocks: Vec<[u8; 64]> = msgs.iter().map(|m| single_block(m).unwrap()).collect();
        let out = digest_blocks4([&blocks[0], &blocks[1], &blocks[2], &blocks[3]]);
        for l in 0..4 {
            assert_eq!(out[l], sha256(&msgs[l]), "lane {l}");
        }
    }

    #[test]
    fn wide_lane_digests_match_serial() {
        let msgs: Vec<Vec<u8>> = (0..16)
            .map(|l| (0..(3 + l * 3)).map(|i| (i * 29 + l) as u8).collect())
            .collect();
        let blocks: Vec<[u8; 64]> = msgs.iter().map(|m| single_block(m).unwrap()).collect();
        let out8 = digest_blocks8(std::array::from_fn(|l| &blocks[l]));
        let out16 = digest_blocks16(std::array::from_fn(|l| &blocks[l]));
        for l in 0..16 {
            assert_eq!(out16[l], sha256(&msgs[l]), "lane {l}");
            if l < 8 {
                assert_eq!(out8[l], out16[l], "lane {l}");
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn four_lane_digests_match_serial_prop(
            lanes in proptest::collection::vec(proptest::collection::vec(proptest::prelude::any::<u8>(), 0..=55), 4)
        ) {
            let blocks: Vec<[u8; 64]> =
                lanes.iter().map(|m| single_block(m).unwrap()).collect();
            let out = digest_blocks4([&blocks[0], &blocks[1], &blocks[2], &blocks[3]]);
            for l in 0..4 {
                proptest::prop_assert_eq!(out[l], sha256(&lanes[l]));
            }
        }
    }
}
