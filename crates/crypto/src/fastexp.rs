//! Precomputed fixed-base exponentiation and multi-exponentiation.
//!
//! The workspace's hot loop is credential signature checking (the paper's
//! Fig. 9 join-with-TN overhead is dominated by it), and every check costs
//! full square-and-multiply exponentiations in [`crate::group`]. Three
//! classic accelerations live here:
//!
//! * **Fixed-base window tables** ([`FixedBaseTable`]): for a base that
//!   never changes (the generator `G`, or an issuer public key seen over
//!   and over), precompute `base^(d·16^w)` for every 4-bit window `w` and
//!   digit `d`. An exponentiation then costs at most 16 modular
//!   multiplications — no squarings at all — instead of ~93 for a 62-bit
//!   square-and-multiply.
//! * **A global generator table** (used transparently by
//!   [`crate::group::g_pow`]) built once per process in a `LazyLock`.
//! * **A bounded per-key table cache** ([`key_table`]): verifiers see the
//!   same issuer keys repeatedly, so the `y^e` term of Schnorr
//!   verification is served from a sharded map of precomputed tables.
//! * **Straus/Shamir multi-exponentiation** ([`multiexp`]): evaluate
//!   `Π baseᵢ^expᵢ mod P` sharing one squaring chain across all terms —
//!   the engine under Schnorr batch verification
//!   ([`crate::schnorr::verify_batch`]).
//!
//! All arithmetic is modulo the fixed group prime [`crate::group::P`].

use crate::group::{mul_mod, G, P};
use std::collections::HashMap;
use std::sync::{Arc, LazyLock, Mutex};

/// Window width in bits. Four bits × sixteen windows covers any `u64`
/// exponent; the tables stay small (16×16 u64 = 2 KiB per base).
const WINDOW_BITS: u32 = 4;
/// Number of windows needed to cover a full 64-bit exponent.
const NUM_WINDOWS: usize = (u64::BITS / WINDOW_BITS) as usize;
/// Digits representable per window.
const RADIX: usize = 1 << WINDOW_BITS;

/// A fixed-base exponentiation table: `table[w][d] = base^(d · 16^w) mod P`.
///
/// Building one costs ~300 modular multiplications; every subsequent
/// [`FixedBaseTable::pow`] costs at most `NUM_WINDOWS` multiplications.
#[derive(Debug, Clone)]
pub struct FixedBaseTable {
    base: u64,
    in_group: bool,
    table: Box<[[u64; RADIX]; NUM_WINDOWS]>,
}

impl FixedBaseTable {
    /// Precompute the window table for `base` (reduced mod `P`).
    pub fn new(base: u64) -> Self {
        crate::stats::TABLE_BUILDS.inc();
        let base = base % P;
        let mut table = Box::new([[1u64; RADIX]; NUM_WINDOWS]);
        let mut window_base = base;
        for w in 0..NUM_WINDOWS {
            let mut acc = 1u64;
            for d in 1..RADIX {
                acc = mul_mod(acc, window_base, P);
                table[w][d] = acc;
            }
            // The next window's unit is this window's unit raised 2^WINDOW_BITS.
            for _ in 0..WINDOW_BITS {
                window_base = mul_mod(window_base, window_base, P);
            }
        }
        let in_group = crate::group::in_subgroup(base);
        FixedBaseTable {
            base,
            in_group,
            table,
        }
    }

    /// The (reduced) base this table was built for.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Whether the (reduced) base is a member of the order-`Q` subgroup.
    ///
    /// Memoized at build time so verifiers that cache a table per public
    /// key ([`key_table`]) pay the Jacobi-symbol check once per key rather
    /// than once per signature. The reduction in [`FixedBaseTable::new`]
    /// means callers that must distinguish `base >= P` from its residue
    /// (Schnorr verification rejects out-of-range encodings) still need
    /// their own range check.
    pub fn in_group(&self) -> bool {
        self.in_group
    }

    /// `base^exp mod P`, for any `u64` exponent. Agrees with
    /// [`crate::group::pow_mod`] on the full exponent range.
    ///
    /// Branchless over the significant windows: `table[w][0] == 1`, so a
    /// zero digit multiplies by one rather than taking a data-dependent
    /// branch — random exponents would mispredict such a branch roughly
    /// half the time, which costs more than the spared multiplication.
    /// The windows land in four independent accumulators folded at the
    /// end: in Schnorr verification this call sits on the critical path
    /// (the exponent is the challenge hash output), and one shared
    /// accumulator would chain all sixteen multiplications serially.
    pub fn pow(&self, exp: u64) -> u64 {
        let windows = ((u64::BITS - exp.leading_zeros()).div_ceil(WINDOW_BITS)) as usize;
        let mut accs = [1u64; 4];
        for w in 0..windows {
            let d = ((exp >> (w as u32 * WINDOW_BITS)) & (RADIX as u64 - 1)) as usize;
            accs[w & 3] = mul_mod(accs[w & 3], self.table[w][d], P);
        }
        mul_mod(
            mul_mod(accs[0], accs[1], P),
            mul_mod(accs[2], accs[3], P),
            P,
        )
    }
}

/// The process-wide generator table backing [`crate::group::g_pow`].
static G_TABLE: LazyLock<FixedBaseTable> = LazyLock::new(|| FixedBaseTable::new(G));

/// `G^exp mod P` through the precomputed generator table.
#[inline]
pub(crate) fn g_pow_windowed(exp: u64) -> u64 {
    G_TABLE.pow(exp)
}

/// Shards in the per-key table cache.
const KEY_CACHE_SHARDS: usize = 8;
/// Per-shard capacity; 8 × 128 keys ≈ 2 MiB of tables at most.
const KEY_CACHE_PER_SHARD: usize = 128;

/// One shard of the shared per-key table cache.
type KeyTableShard = Mutex<HashMap<u64, Arc<FixedBaseTable>>>;

/// Sharded bounded map `public key → Arc<FixedBaseTable>`. A full shard is
/// cleared wholesale: eviction precision is irrelevant (tables are pure
/// caches), cheapness and boundedness are what matter.
static KEY_TABLES: LazyLock<[KeyTableShard; KEY_CACHE_SHARDS]> =
    LazyLock::new(|| std::array::from_fn(|_| Mutex::new(HashMap::new())));

/// Slots in the per-thread direct-mapped table cache fronting [`KEY_TABLES`].
const TLS_SLOTS: usize = 16;

/// One slot of the per-thread table cache: the unreduced key and its table.
type TlsSlot = Option<(u64, Arc<FixedBaseTable>)>;

thread_local! {
    /// Direct-mapped recently-used tables. A verifier loop over a handful
    /// of issuer keys hits here without touching the shard mutex or its
    /// `Arc` refcount traffic; collisions simply fall through to the
    /// shared map.
    static TLS_TABLES: std::cell::RefCell<[TlsSlot; TLS_SLOTS]> =
        const { std::cell::RefCell::new([const { None }; TLS_SLOTS]) };
}

/// The cached window table for a repeatedly-seen base (an issuer public
/// key), building and memoizing it on first use.
pub fn key_table(key: u64) -> Arc<FixedBaseTable> {
    TLS_TABLES.with(|slots| {
        let slot = (key % TLS_SLOTS as u64) as usize;
        let mut slots = slots.borrow_mut();
        if let Some((k, t)) = &slots[slot] {
            if *k == key {
                crate::stats::TABLE_HITS.inc();
                return Arc::clone(t);
            }
        }
        let t = shared_key_table(key);
        slots[slot] = Some((key, Arc::clone(&t)));
        t
    })
}

/// The shared-map path behind [`key_table`]'s thread-local front.
fn shared_key_table(key: u64) -> Arc<FixedBaseTable> {
    let shard = &KEY_TABLES[(key % KEY_CACHE_SHARDS as u64) as usize];
    if let Some(t) = shard.lock().expect("key-table lock").get(&key) {
        crate::stats::TABLE_HITS.inc();
        return Arc::clone(t);
    }
    // Build outside the lock; a racing builder just does redundant work.
    let table = Arc::new(FixedBaseTable::new(key));
    let mut guard = shard.lock().expect("key-table lock");
    if guard.len() >= KEY_CACHE_PER_SHARD {
        guard.clear();
    }
    Arc::clone(guard.entry(key).or_insert(table))
}

/// `Π baseᵢ^expᵢ mod P` by Straus's interleaved window method: one shared
/// squaring chain over the longest exponent, a 16-entry odd-powers-free
/// digit table per term.
pub fn multiexp(terms: &[(u64, u64)]) -> u64 {
    if terms.is_empty() {
        return 1;
    }
    // One digit table per term. The window loop below runs only over the
    // significant windows of the *longest* exponent, and within a window
    // every term is multiplied unconditionally: `t[0] == 1`, so a term
    // whose exponent has no digit there multiplies by one. A per-term
    // skip branch is mispredicted often enough (terms with 32-bit batch
    // coefficients interleave with full-width ones) that the spare
    // multiplications are cheaper.
    let tables: Vec<[u64; RADIX]> = terms
        .iter()
        .map(|&(base, _)| {
            let base = base % P;
            let mut t = [1u64; RADIX];
            for d in 1..RADIX {
                t[d] = mul_mod(t[d - 1], base, P);
            }
            t
        })
        .collect();
    let windows = terms
        .iter()
        .map(|&(_, e)| (u64::BITS - e.leading_zeros()).div_ceil(WINDOW_BITS))
        .max()
        .unwrap_or(0);
    let mut acc: u64 = 1;
    for w in (0..windows).rev() {
        if acc != 1 {
            for _ in 0..WINDOW_BITS {
                acc = mul_mod(acc, acc, P);
            }
        }
        let shift = w * WINDOW_BITS;
        for (t, &(_, e)) in tables.iter().zip(terms) {
            let d = ((e >> shift) & (RADIX as u64 - 1)) as usize;
            acc = mul_mod(acc, t[d], P);
        }
    }
    acc
}

/// `Π baseᵢ^expᵢ mod P` for **32-bit** exponents: the workhorse under the
/// commitment side of Schnorr batch verification, whose random-linear-
/// combination coefficients are 32 bits wide.
///
/// Three structural differences from [`multiexp`] make it markedly faster:
/// 3-bit windows (for 32-bit exponents the total work `n·(2³−1)` table
/// mults + `n·⌈32/3⌉` digit mults beats any other width), a squaring chain
/// that covers only those eleven windows, and within a window the per-term
/// multiplications land in four independent partial accumulators. The
/// single-accumulator form is a pure latency chain — one dependent modular
/// multiplication per term per window — which is what dominated profiles;
/// four lanes let the out-of-order core overlap them, leaving only the
/// short squaring chain serial.
pub fn multiexp_short(terms: &[(u64, u32)]) -> u64 {
    const SHORT_WINDOW_BITS: u32 = 3;
    const SHORT_RADIX: usize = 1 << SHORT_WINDOW_BITS;
    const SHORT_WINDOWS: u32 = u32::BITS.div_ceil(SHORT_WINDOW_BITS);
    thread_local! {
        /// Reusable digit-table scratch: a fresh ~1 KiB allocation per
        /// batch call is measurable at small batch sizes.
        static SHORT_TABLES: std::cell::RefCell<Vec<[u64; SHORT_RADIX]>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    if terms.is_empty() {
        return 1;
    }
    SHORT_TABLES.with(|scratch| {
        let tables = &mut *scratch.borrow_mut();
        tables.clear();
        tables.extend(terms.iter().map(|&(base, _)| {
            let base = base % P;
            let mut t = [1u64; SHORT_RADIX];
            for d in 1..SHORT_RADIX {
                t[d] = mul_mod(t[d - 1], base, P);
            }
            t
        }));
        // Four full accumulator chains, each carrying its own squarings: a
        // single shared accumulator would serialize every squaring *and*
        // every per-window combine on one dependency chain. Four chains
        // cost three extra squaring streams but run at multiplier
        // throughput; they are only folded together once, at the very end.
        let mut accs = [1u64; 4];
        for (step, w) in (0..SHORT_WINDOWS).rev().enumerate() {
            if step > 0 {
                for a in &mut accs {
                    for _ in 0..SHORT_WINDOW_BITS {
                        *a = mul_mod(*a, *a, P);
                    }
                }
            }
            let shift = w * SHORT_WINDOW_BITS;
            for (j, (t, &(_, e))) in tables.iter().zip(terms).enumerate() {
                let d = ((e >> shift) & (SHORT_RADIX as u32 - 1)) as usize;
                accs[j & 3] = mul_mod(accs[j & 3], t[d], P);
            }
        }
        mul_mod(
            mul_mod(accs[0], accs[1], P),
            mul_mod(accs[2], accs[3], P),
            P,
        )
    })
}

/// `Π tableᵢ.base^expᵢ mod P` over precomputed fixed-base tables, with the
/// per-table window loops interleaved: the k accumulator chains are
/// mutually independent, so the out-of-order core runs them at multiplier
/// throughput, where k sequential [`FixedBaseTable::pow`] calls would each
/// serialize on their own accumulator. Used for the merged per-key terms
/// of Schnorr batch verification.
pub fn pow_interleaved(pairs: &[(&FixedBaseTable, u64)]) -> u64 {
    // Small pair counts (distinct issuer keys in a batch) stay on the
    // stack; the heap path only exists for generality.
    let mut accs_buf = [1u64; 16];
    let mut accs_vec = Vec::new();
    let accs: &mut [u64] = if pairs.len() <= accs_buf.len() {
        &mut accs_buf[..pairs.len()]
    } else {
        accs_vec.resize(pairs.len(), 1u64);
        &mut accs_vec
    };
    for w in 0..NUM_WINDOWS {
        let shift = w as u32 * WINDOW_BITS;
        for (acc, (t, e)) in accs.iter_mut().zip(pairs) {
            let d = ((e >> shift) & (RADIX as u64 - 1)) as usize;
            *acc = mul_mod(*acc, t.table[w][d], P);
        }
    }
    accs.iter().fold(1, |a, &x| mul_mod(a, x, P))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{pow_mod, Q};
    use proptest::prelude::*;

    #[test]
    fn table_matches_pow_mod_on_edges() {
        let t = FixedBaseTable::new(G);
        for e in [0u64, 1, 2, 15, 16, 17, Q - 1, Q, u64::MAX] {
            assert_eq!(t.pow(e), pow_mod(G, e, P), "exp {e}");
        }
    }

    #[test]
    fn zero_base_behaves_like_pow_mod() {
        let t = FixedBaseTable::new(0);
        assert_eq!(t.pow(0), 1);
        assert_eq!(t.pow(5), 0);
        let t = FixedBaseTable::new(P); // reduces to zero
        assert_eq!(t.pow(0), 1);
        assert_eq!(t.pow(7), 0);
    }

    #[test]
    fn key_table_is_memoized() {
        let a = key_table(123_456);
        let b = key_table(123_456);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.pow(77), pow_mod(123_456, 77, P));
    }

    #[test]
    fn multiexp_empty_is_one() {
        assert_eq!(multiexp(&[]), 1);
    }

    proptest! {
        #[test]
        fn windowed_pow_matches_pow_mod_full_range(base in any::<u64>(), exp in any::<u64>()) {
            let t = FixedBaseTable::new(base);
            prop_assert_eq!(t.pow(exp), pow_mod(base, exp, P));
        }

        #[test]
        fn generator_table_matches_pow_mod(exp in any::<u64>()) {
            prop_assert_eq!(g_pow_windowed(exp), pow_mod(G, exp, P));
        }

        #[test]
        fn multiexp_matches_product_of_pow_mod(
            terms in proptest::collection::vec((1u64..P, any::<u64>()), 0..6)
        ) {
            let expect = terms
                .iter()
                .fold(1u64, |acc, &(b, e)| mul_mod(acc, pow_mod(b, e, P), P));
            prop_assert_eq!(multiexp(&terms), expect);
        }

        #[test]
        fn multiexp_short_matches_product_of_pow_mod(
            terms in proptest::collection::vec((1u64..P, any::<u32>()), 0..9)
        ) {
            let expect = terms
                .iter()
                .fold(1u64, |acc, &(b, e)| mul_mod(acc, pow_mod(b, e as u64, P), P));
            prop_assert_eq!(multiexp_short(&terms), expect);
        }

        #[test]
        fn pow_interleaved_matches_product_of_pow_mod(
            pairs in proptest::collection::vec((1u64..P, any::<u64>()), 0..5)
        ) {
            let tables: Vec<FixedBaseTable> =
                pairs.iter().map(|&(b, _)| FixedBaseTable::new(b)).collect();
            let refs: Vec<(&FixedBaseTable, u64)> =
                tables.iter().zip(&pairs).map(|(t, &(_, e))| (t, e)).collect();
            let expect = pairs
                .iter()
                .fold(1u64, |acc, &(b, e)| mul_mod(acc, pow_mod(b, e, P), P));
            prop_assert_eq!(pow_interleaved(&refs), expect);
        }
    }
}
