//! Schnorr signatures over the [`crate::group`] subgroup.
//!
//! Keys are `(x, y = g^x)`. Signing a message `m`:
//!
//! 1. derive a per-message nonce `k = HMAC(x, m) mod Q` (deterministic, in
//!    the spirit of RFC 6979 — no RNG failure can leak the key),
//! 2. `r = g^k`,
//! 3. challenge `e = H(r ‖ y ‖ m) mod Q`,
//! 4. `s = k + e·x mod Q`.
//!
//! Verification recomputes `e` from the transmitted `r` and accepts iff
//! `g^s == r · y^e (mod P)`.

use crate::group::{self, P, Q};
use crate::hmac::hmac_sha256;
use crate::sha256::Sha256;

/// A signing (secret) key: a scalar in `[1, Q)`.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey(pub(crate) u64);

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the scalar.
        f.write_str("SecretKey(<redacted>)")
    }
}

/// A verifying (public) key: `y = g^x mod P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(pub u64);

/// A detached Schnorr signature `(r, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// The commitment `g^k mod P`.
    pub r: u64,
    /// The response `k + e·x mod Q`.
    pub s: u64,
}

/// A signing key pair.
#[derive(Debug, Clone)]
pub struct KeyPair {
    /// The secret scalar.
    pub secret: SecretKey,
    /// The corresponding public key.
    pub public: PublicKey,
}

impl KeyPair {
    /// Derive a key pair from a seed. The same seed always yields the same
    /// pair, which keeps scenario construction and tests reproducible.
    pub fn from_seed(seed: &[u8]) -> Self {
        let digest = crate::sha256(seed);
        let x = group::scalar_from_digest(&digest);
        Self::from_scalar(x)
    }

    /// Build a key pair from an explicit scalar (clamped into `[1, Q)`).
    pub fn from_scalar(x: u64) -> Self {
        let x = x % (Q - 1) + 1;
        KeyPair {
            secret: SecretKey(x),
            public: PublicKey(group::g_pow(x)),
        }
    }

    /// Generate a key pair from an RNG.
    pub fn generate<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        Self::from_scalar(rng.gen_range(1..Q))
    }

    /// Sign `message` with the secret key.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let x = self.secret.0;
        // Deterministic nonce: HMAC over the message keyed by the secret.
        let k_tag = hmac_sha256(&x.to_be_bytes(), message);
        let k = group::scalar_from_digest(&k_tag);
        let r = group::g_pow(k);
        let e = challenge(r, self.public, message);
        let s = group::add_mod(k, group::mul_mod(e, x, Q), Q);
        Signature { r, s }
    }
}

fn challenge(r: u64, public: PublicKey, message: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(&r.to_be_bytes());
    h.update(&public.0.to_be_bytes());
    h.update(message);
    group::scalar_from_digest(&h.finalize())
}

impl PublicKey {
    /// Verify `sig` over `message`.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        if !group::in_subgroup(sig.r) || !group::in_subgroup(self.0) || sig.s >= Q {
            return false;
        }
        let e = challenge(sig.r, *self, message);
        let lhs = group::g_pow(sig.s);
        let rhs = group::mul_mod(sig.r, group::pow_mod(self.0, e, P), P);
        lhs == rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::from_seed(b"issuer:INFN");
        let sig = kp.sign(b"ISO 9000 Certified");
        assert!(kp.public.verify(b"ISO 9000 Certified", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let kp = KeyPair::from_seed(b"issuer");
        let sig = kp.sign(b"message A");
        assert!(!kp.public.verify(b"message B", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = KeyPair::from_seed(b"issuer-1");
        let kp2 = KeyPair::from_seed(b"issuer-2");
        let sig = kp1.sign(b"m");
        assert!(!kp2.public.verify(b"m", &sig));
    }

    #[test]
    fn signature_is_deterministic() {
        let kp = KeyPair::from_seed(b"seed");
        assert_eq!(kp.sign(b"m"), kp.sign(b"m"));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = KeyPair::from_seed(b"seed");
        let sig = kp.sign(b"m");
        let bad_r = Signature {
            r: sig.r ^ 1,
            ..sig
        };
        let bad_s = Signature {
            s: (sig.s + 1) % Q,
            ..sig
        };
        assert!(!kp.public.verify(b"m", &bad_r));
        assert!(!kp.public.verify(b"m", &bad_s));
    }

    #[test]
    fn degenerate_components_rejected() {
        let kp = KeyPair::from_seed(b"seed");
        let sig = kp.sign(b"m");
        assert!(!kp.public.verify(b"m", &Signature { r: 0, s: sig.s }));
        assert!(!kp.public.verify(b"m", &Signature { r: sig.r, s: Q }));
        // Public key outside the subgroup is rejected outright.
        assert!(!PublicKey(0).verify(b"m", &sig));
    }

    #[test]
    fn debug_does_not_leak_secret() {
        let kp = KeyPair::from_scalar(12345);
        let text = format!("{:?}", kp.secret);
        assert!(!text.contains("12345"));
    }

    proptest! {
        #[test]
        fn any_seed_signs_and_verifies(seed in proptest::collection::vec(any::<u8>(), 1..32),
                                       msg in proptest::collection::vec(any::<u8>(), 0..128)) {
            let kp = KeyPair::from_seed(&seed);
            let sig = kp.sign(&msg);
            prop_assert!(kp.public.verify(&msg, &sig));
        }

        #[test]
        fn bitflip_in_message_rejected(scalar in 1u64..Q,
                                       mut msg in proptest::collection::vec(any::<u8>(), 1..64),
                                       idx in any::<prop::sample::Index>(),
                                       bit in 0u8..8) {
            let kp = KeyPair::from_scalar(scalar);
            let sig = kp.sign(&msg);
            let i = idx.index(msg.len());
            msg[i] ^= 1 << bit;
            prop_assert!(!kp.public.verify(&msg, &sig));
        }
    }
}
