//! Schnorr signatures over the [`crate::group`] subgroup.
//!
//! Keys are `(x, y = g^x)`. Signing a message `m`:
//!
//! 1. derive a per-message nonce `k = HMAC(x, m) mod Q` (deterministic, in
//!    the spirit of RFC 6979 — no RNG failure can leak the key),
//! 2. `r = g^k`,
//! 3. challenge `e = H(r ‖ y ‖ m) mod Q`,
//! 4. `s = k + e·x mod Q`.
//!
//! Verification recomputes `e` from the transmitted `r` and accepts iff
//! `g^s == r · y^e (mod P)`.
//!
//! # Fast path
//!
//! [`PublicKey::verify`] runs entirely on the precomputed layer
//! ([`crate::fastexp`]): subgroup membership via the exponentiation-free
//! Jacobi symbol, `g^s` through the global generator window table, and
//! `y^e` through a cached per-key window table (verifiers see the same
//! issuer keys over and over). [`PublicKey::verify_reference`] keeps the
//! seed square-and-multiply path for differential tests and benches.
//! [`verify_batch`] checks many signatures at once with a random linear
//! combination evaluated by one shared multi-exponentiation.

use crate::fastexp::{self, FixedBaseTable};
use crate::group::{self, P, Q};
use crate::hmac::hmac_sha256;
use crate::sha256::Sha256;
use crate::stats;
use std::sync::Arc;

/// A signing (secret) key: a scalar in `[1, Q)`.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey(pub(crate) u64);

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the scalar.
        f.write_str("SecretKey(<redacted>)")
    }
}

/// A verifying (public) key: `y = g^x mod P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(pub u64);

/// A detached Schnorr signature `(r, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// The commitment `g^k mod P`.
    pub r: u64,
    /// The response `k + e·x mod Q`.
    pub s: u64,
}

/// A signing key pair.
#[derive(Debug, Clone)]
pub struct KeyPair {
    /// The secret scalar.
    pub secret: SecretKey,
    /// The corresponding public key.
    pub public: PublicKey,
}

impl KeyPair {
    /// Derive a key pair from a seed. The same seed always yields the same
    /// pair, which keeps scenario construction and tests reproducible.
    pub fn from_seed(seed: &[u8]) -> Self {
        let digest = crate::sha256(seed);
        let x = group::scalar_from_digest(&digest);
        Self::from_scalar(x)
    }

    /// Build a key pair from an explicit scalar (clamped into `[1, Q)`).
    pub fn from_scalar(x: u64) -> Self {
        let x = x % (Q - 1) + 1;
        KeyPair {
            secret: SecretKey(x),
            public: PublicKey(group::g_pow(x)),
        }
    }

    /// Generate a key pair from an RNG.
    pub fn generate<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        Self::from_scalar(rng.gen_range(1..Q))
    }

    /// Sign `message` with the secret key.
    pub fn sign(&self, message: &[u8]) -> Signature {
        stats::SIGN.inc();
        let x = self.secret.0;
        // Deterministic nonce: HMAC over the message keyed by the secret.
        let k_tag = hmac_sha256(&x.to_be_bytes(), message);
        let k = group::scalar_from_digest(&k_tag);
        let r = group::g_pow(k);
        let e = challenge(r, self.public, message);
        let s = group::add_mod(k, group::mul_mod(e, x, Q), Q);
        Signature { r, s }
    }
}

/// Longest message for which the challenge input `r ‖ y ‖ m` (16 + len
/// bytes) still fits in a single padded SHA-256 block.
const ONE_BLOCK_MSG: usize = 55 - 16;

/// Build the padded single challenge block for a short message.
#[inline]
fn challenge_block(r: u64, public: PublicKey, message: &[u8]) -> [u8; 64] {
    debug_assert!(message.len() <= ONE_BLOCK_MSG);
    let mut block = [0u8; 64];
    block[..8].copy_from_slice(&r.to_be_bytes());
    block[8..16].copy_from_slice(&public.0.to_be_bytes());
    block[16..16 + message.len()].copy_from_slice(message);
    block[16 + message.len()] = 0x80;
    let bit_len = ((16 + message.len()) as u64) * 8;
    block[56..64].copy_from_slice(&bit_len.to_be_bytes());
    block
}

fn challenge(r: u64, public: PublicKey, message: &[u8]) -> u64 {
    // Identical digest either way; the single-block path skips the
    // incremental hasher's buffering for the common short input.
    if message.len() <= ONE_BLOCK_MSG {
        let block = challenge_block(r, public, message);
        return group::scalar_from_digest(&crate::sha256::digest_block(&block));
    }
    let mut h = Sha256::new();
    h.update(&r.to_be_bytes());
    h.update(&public.0.to_be_bytes());
    h.update(message);
    group::scalar_from_digest(&h.finalize())
}

/// Reusable per-thread scratch for [`verify_batch`]: at small batch sizes
/// the temporary vectors (challenges, padded hash lanes, commitment terms)
/// cost as much as a signature's worth of arithmetic to allocate and free,
/// so each thread recycles one set across calls.
struct BatchScratch {
    es: Vec<u64>,
    blocks: Vec<[u8; 64]>,
    idxs: Vec<u32>,
    lanes: Vec<[u8; 64]>,
    r_terms: Vec<(u64, u32)>,
}

thread_local! {
    static BATCH_SCRATCH: std::cell::RefCell<BatchScratch> =
        const {
            std::cell::RefCell::new(BatchScratch {
                es: Vec::new(),
                blocks: Vec::new(),
                idxs: Vec::new(),
                lanes: Vec::new(),
                r_terms: Vec::new(),
            })
        };
}

/// Per-item challenges for a batch, pushing single-block items through the
/// sixteen-, eight- and four-lane multi-buffer hashers. Bit-identical to
/// calling [`challenge`] on every item. `blocks`/`idxs` are caller-provided
/// scratch (padded blocks for the short items, and each one's index in
/// `items`); `es` receives the challenge for every item in order.
fn challenges_into(
    items: &[(PublicKey, &[u8], Signature)],
    es: &mut Vec<u64>,
    blocks: &mut Vec<[u8; 64]>,
    idxs: &mut Vec<u32>,
) {
    es.clear();
    es.resize(items.len(), 0);
    blocks.clear();
    idxs.clear();
    for (i, (key, message, sig)) in items.iter().enumerate() {
        if message.len() <= ONE_BLOCK_MSG {
            blocks.push(challenge_block(sig.r, *key, message));
            idxs.push(i as u32);
        } else {
            es[i] = challenge(sig.r, *key, message);
        }
    }
    let mut pos = 0usize;
    let mut chunks16 = blocks.chunks_exact(16);
    for chunk in &mut chunks16 {
        let digests = crate::sha256::digest_blocks16(std::array::from_fn(|l| &chunk[l]));
        for (lane, d) in digests.iter().enumerate() {
            es[idxs[pos + lane] as usize] = group::scalar_from_digest(d);
        }
        pos += 16;
    }
    let mut chunks8 = chunks16.remainder().chunks_exact(8);
    for chunk in &mut chunks8 {
        let digests = crate::sha256::digest_blocks8(std::array::from_fn(|l| &chunk[l]));
        for (lane, d) in digests.iter().enumerate() {
            es[idxs[pos + lane] as usize] = group::scalar_from_digest(d);
        }
        pos += 8;
    }
    let mut chunks4 = chunks8.remainder().chunks_exact(4);
    for chunk in &mut chunks4 {
        let digests = crate::sha256::digest_blocks4(std::array::from_fn(|l| &chunk[l]));
        for (lane, d) in digests.iter().enumerate() {
            es[idxs[pos + lane] as usize] = group::scalar_from_digest(d);
        }
        pos += 4;
    }
    for block in chunks4.remainder() {
        es[idxs[pos] as usize] = group::scalar_from_digest(&crate::sha256::digest_block(block));
        pos += 1;
    }
}

/// Domain-separation tag for the batch-verification coefficient
/// transcript. Short enough that a two-item lane block (tag + 2×20 bytes)
/// still fits a single padded SHA-256 block.
const BATCH_TAG: &[u8; 10] = b"tv.batch.2";

/// The coefficient seed for [`verify_batch`]: a parallel-friendly
/// transcript hash over every `(index, eᵢ, sᵢ)` triple.
///
/// Items are packed two per single-block SHA-256 "lane"
/// (`tag ‖ i ‖ eᵢ ‖ sᵢ ‖ i+1 ‖ eᵢ₊₁ ‖ sᵢ₊₁`, an odd trailing item gets a
/// shorter, distinctly-padded block), the lanes run through the same
/// multi-buffer compressors as the challenges, and the 256-bit lane
/// digests are XOR-folded, and the seed is the first eight bytes of one
/// final compression over `tag ‖ n ‖ fold`. A flat serial hash of the same
/// data costs one dependent compression per four items and was the single
/// largest per-item term in batch profiles.
///
/// Binding: each lane digest commits to its items *and their positions*
/// (the explicit indices — the XOR fold itself is order-blind), so any
/// change to any `(e, s, position)` rerandomizes the fold. Attacking the
/// fold means finding lane contents whose digests XOR to a chosen 256-bit
/// value — a generalized-birthday problem costing ≳2^(256/(1+log₂ k)) hash
/// evaluations for k lanes (Wagner), ≥2⁴² even at k = 32 lanes (64 items):
/// comfortably above the ~2⁻³² coefficient-cancellation bound that batch
/// verification accepts by construction. The final compression is what
/// makes the *whole* fold the attack target: extracting the seed straight
/// from the fold would let an attacker aim at just those 64 bits, and
/// 64-bit generalized birthday is cheap at high lane counts.
fn transcript_seed(
    items: &[(PublicKey, &[u8], Signature)],
    es: &[u64],
    lanes: &mut Vec<[u8; 64]>,
) -> u64 {
    lanes.clear();
    lanes.reserve(items.len().div_ceil(2));
    let mut pairs = items.iter().zip(es).enumerate();
    while let Some((i, ((_, _, sig), e))) = pairs.next() {
        let mut block = [0u8; 64];
        block[..10].copy_from_slice(BATCH_TAG);
        block[10..14].copy_from_slice(&(i as u32).to_be_bytes());
        block[14..22].copy_from_slice(&e.to_be_bytes());
        block[22..30].copy_from_slice(&sig.s.to_be_bytes());
        let len = if let Some((j, ((_, _, sig2), e2))) = pairs.next() {
            block[30..34].copy_from_slice(&(j as u32).to_be_bytes());
            block[34..42].copy_from_slice(&e2.to_be_bytes());
            block[42..50].copy_from_slice(&sig2.s.to_be_bytes());
            50
        } else {
            30
        };
        block[len] = 0x80;
        block[56..64].copy_from_slice(&((len as u64) * 8).to_be_bytes());
        lanes.push(block);
    }
    let mut fold = [0u8; 32];
    let mut xor_in = |d: &crate::sha256::Digest| {
        for (f, b) in fold.iter_mut().zip(d) {
            *f ^= b;
        }
    };
    let mut chunks16 = lanes.chunks_exact(16);
    for chunk in &mut chunks16 {
        for d in &crate::sha256::digest_blocks16(std::array::from_fn(|l| &chunk[l])) {
            xor_in(d);
        }
    }
    let mut chunks8 = chunks16.remainder().chunks_exact(8);
    for chunk in &mut chunks8 {
        for d in &crate::sha256::digest_blocks8(std::array::from_fn(|l| &chunk[l])) {
            xor_in(d);
        }
    }
    let mut chunks4 = chunks8.remainder().chunks_exact(4);
    for chunk in &mut chunks4 {
        for d in &crate::sha256::digest_blocks4(std::array::from_fn(|l| &chunk[l])) {
            xor_in(d);
        }
    }
    for block in chunks4.remainder() {
        xor_in(&crate::sha256::digest_block(block));
    }
    // Final compression over the whole fold (plus the batch length) — see
    // the binding note above.
    let mut root = [0u8; 64];
    root[..10].copy_from_slice(BATCH_TAG);
    root[10..18].copy_from_slice(&(items.len() as u64).to_be_bytes());
    root[18..50].copy_from_slice(&fold);
    root[50] = 0x80;
    root[56..64].copy_from_slice(&(50u64 * 8).to_be_bytes());
    let seed_digest = crate::sha256::digest_block(&root);
    u64::from_be_bytes(seed_digest[..8].try_into().expect("8-byte seed"))
}

/// The cheap structural checks on the signature itself, run **before** the
/// challenge hash is computed: a degenerate or out-of-range signature must
/// be rejected without paying for any hashing at all.
///
/// No subgroup check on `r` is needed for soundness: once the key is known
/// to be a subgroup member, the right-hand side `r·y^e` can only equal
/// `g^s` (a subgroup member) when `r = g^s·(y^e)⁻¹` is itself one, so the
/// verification equation rejects every out-of-subgroup `r` on its own —
/// the explicit Euler-criterion check in [`PublicKey::verify_reference`]
/// is provably equivalent, just paid on every call. The key-side subgroup
/// check lives on the cached table ([`FixedBaseTable::in_group`]),
/// memoized per key rather than re-derived per signature.
#[inline]
fn sig_precheck(sig: &Signature) -> bool {
    sig.r != 0 && sig.r < P && sig.s < Q
}

impl PublicKey {
    /// Verify `sig` over `message` (fast path: memoized Jacobi subgroup
    /// check, windowed `g^s`, cached per-key window table for `y^e`).
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        stats::VERIFY.inc();
        // The explicit range check matters: the table reduces its base mod
        // P, but a key encoded as `y + P` must still be rejected.
        if !sig_precheck(sig) || self.0 >= P {
            return false;
        }
        let table = fastexp::key_table(self.0);
        if !table.in_group() {
            return false;
        }
        // `g^s` before the challenge hash: it is independent of `e`, and
        // leading with it lets the out-of-order core overlap the window-
        // table multiplications with the hash rounds.
        let lhs = group::g_pow(sig.s);
        let e = challenge(sig.r, *self, message);
        let rhs = group::mul_mod(sig.r, table.pow(e), P);
        lhs == rhs
    }

    /// The seed square-and-multiply verification path: three full
    /// `pow_mod` exponentiations (two Euler-criterion subgroup checks plus
    /// `g^s`) and a fourth for `y^e`. Kept as the differential-testing
    /// oracle and the bench baseline the fast-path speedups are measured
    /// against.
    pub fn verify_reference(&self, message: &[u8], sig: &Signature) -> bool {
        stats::VERIFY_REFERENCE.inc();
        if sig.r == 0
            || sig.r >= P
            || sig.s >= Q
            || group::pow_mod(sig.r, Q, P) != 1
            || self.0 == 0
            || self.0 >= P
            || group::pow_mod(self.0, Q, P) != 1
        {
            return false;
        }
        // The seed's challenge computation: the incremental hasher, byte
        // for byte (the fast path's single-block shortcut yields the same
        // digest — see `challenge` — but this keeps the reference on the
        // original code path).
        let mut h = Sha256::new();
        h.update(&sig.r.to_be_bytes());
        h.update(&self.0.to_be_bytes());
        h.update(message);
        let e = group::scalar_from_digest(&h.finalize());
        let lhs = group::pow_mod(group::G, sig.s, P);
        let rhs = group::mul_mod(sig.r, group::pow_mod(self.0, e, P), P);
        lhs == rhs
    }

    /// Precompute this key's window table for repeated verification.
    pub fn precompute(&self) -> PrecomputedKey {
        PrecomputedKey {
            public: *self,
            table: fastexp::key_table(self.0),
        }
    }
}

/// A public key bundled with its fixed-base window table: the `y^e` term
/// of verification costs ≤16 modular multiplications instead of a full
/// square-and-multiply. Build one per issuer key that will verify many
/// signatures ([`PublicKey::precompute`]); one-off verifiers get the same
/// effect transparently through the global per-key table cache.
#[derive(Debug, Clone)]
pub struct PrecomputedKey {
    public: PublicKey,
    table: Arc<FixedBaseTable>,
}

impl PrecomputedKey {
    /// The key this table belongs to.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Verify `sig` over `message` with the precomputed table.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        stats::VERIFY.inc();
        if !sig_precheck(sig) || self.public.0 >= P || !self.table.in_group() {
            return false;
        }
        let lhs = group::g_pow(sig.s);
        let e = challenge(sig.r, self.public, message);
        let rhs = group::mul_mod(sig.r, self.table.pow(e), P);
        lhs == rhs
    }
}

/// SplitMix64: the coefficient stream for batch verification. Mirrors the
/// netsim decision streams — a tiny, well-mixed, dependency-free PRF.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Verify a batch of `(key, message, signature)` triples at once.
///
/// Uses the standard random-linear-combination test: with per-item
/// coefficients `zᵢ`, every signature is valid iff (up to a ~2⁻³² chance
/// per forged item of coefficient cancellation)
///
/// ```text
/// g^(Σ zᵢ·sᵢ)  ==  Π rᵢ^zᵢ · Π yₖ^(Σ zᵢ·eᵢ)   (mod P)
/// ```
///
/// where the `y` exponents are merged per distinct key (issuer keys repeat
/// heavily in credential chains) and the right-hand side is one Straus
/// multi-exponentiation sharing a single squaring chain. The coefficients
/// are derived deterministically from a hash of the whole batch
/// (Fiat–Shamir style), so the result is reproducible bit-for-bit — a
/// forger cannot choose signatures after seeing the coefficients, because
/// changing any signature changes every coefficient.
///
/// Returns `true` for the empty batch. A `true` result means every
/// signature in the batch verifies individually; `false` means at least
/// one does not (callers wanting the culprit re-check individually).
pub fn verify_batch(items: &[(PublicKey, &[u8], Signature)]) -> bool {
    stats::VERIFY_BATCH.inc();
    stats::VERIFY_BATCH_SIGS.add(items.len() as u64);
    match items {
        [] => return true,
        [(key, message, sig)] => return key.verify(message, sig),
        _ => {}
    }
    // Per-item structural checks, with the subgroup test deduplicated per
    // distinct key (issuer keys repeat heavily in credential chains) and
    // served from the memoized per-key table. As in single verification,
    // commitments need no subgroup test of their own: an out-of-subgroup
    // `rᵢ` contributes a non-residue factor the subgroup-valued right-hand
    // side cannot absorb except with the same ~2⁻³² coefficient luck any
    // forgery needs.
    // Each distinct key's cached table is fetched once here and reused for
    // its merged exponent below.
    let mut key_exps: Vec<(u64, Arc<FixedBaseTable>, u64)> = Vec::with_capacity(4);
    for (key, _message, sig) in items {
        if sig.r == 0 || sig.r >= P || sig.s >= Q {
            return false;
        }
        if !key_exps.iter().any(|(y, _, _)| *y == key.0) {
            if key.0 >= P {
                return false;
            }
            let table = fastexp::key_table(key.0);
            if !table.in_group() {
                return false;
            }
            key_exps.push((key.0, table, 0));
        }
    }
    BATCH_SCRATCH.with(|scratch| {
        let BatchScratch {
            es,
            blocks,
            idxs,
            lanes,
            r_terms,
        } = &mut *scratch.borrow_mut();
        // All challenges at once (multi-buffer hashing for short messages).
        challenges_into(items, es, blocks, idxs);
        // The coefficient transcript binds `eᵢ` (which itself commits to
        // `rᵢ`, `yᵢ`, and the message) and `sᵢ` — the one signature component
        // the challenge does not cover. Without `sᵢ` in the transcript a
        // forger knowing the coefficients could spread an error over several
        // responses so the linear combination cancels. `sᵢ` must enter a hash
        // whole: any invertible compression (say XOR-mixing `eᵢ` into `sᵢ`)
        // dies to the free choice of `s` — a forger picks `r` at will and
        // solves for the `s` that keeps the compressed word fixed.
        let seed = transcript_seed(items, es, lanes);

        // Accumulate Σ zᵢ·sᵢ, the per-commitment terms, and the per-key
        // merged exponents (all mod Q — every base is in the order-Q
        // subgroup, checked above). Distinct keys are few, so a linear scan
        // beats a hash map here.
        let mut s_acc: u64 = 0;
        r_terms.clear();
        r_terms.reserve(items.len());
        for (i, ((key, _message, sig), e)) in items.iter().zip(es.iter()).enumerate() {
            // 32-bit nonzero coefficient for item i.
            let z = (splitmix64(seed ^ (i as u64)) & 0xffff_ffff) | 1;
            s_acc = group::add_mod(s_acc, group::mul_mod(z, sig.s, Q), Q);
            r_terms.push((sig.r, z as u32));
            let ze = group::mul_mod(z, *e, Q);
            let slot = key_exps
                .iter_mut()
                .find(|(y, _, _)| *y == key.0)
                .expect("every key was registered in the structural pass");
            slot.2 = group::add_mod(slot.2, ze, Q);
        }
        // The commitment side runs through the short-exponent Straus engine
        // (the coefficients are 32-bit); each key's merged term comes from its
        // cached fixed-base window table — no squarings, and the table builds
        // amortize across every batch and single verification the key sees.
        let rhs = fastexp::multiexp_short(r_terms);
        let key_pairs: Vec<(&FixedBaseTable, u64)> = key_exps
            .iter()
            .map(|(_, table, ze)| (table.as_ref(), *ze))
            .collect();
        let rhs = group::mul_mod(rhs, fastexp::pow_interleaved(&key_pairs), P);
        group::g_pow(s_acc) == rhs
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::from_seed(b"issuer:INFN");
        let sig = kp.sign(b"ISO 9000 Certified");
        assert!(kp.public.verify(b"ISO 9000 Certified", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let kp = KeyPair::from_seed(b"issuer");
        let sig = kp.sign(b"message A");
        assert!(!kp.public.verify(b"message B", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = KeyPair::from_seed(b"issuer-1");
        let kp2 = KeyPair::from_seed(b"issuer-2");
        let sig = kp1.sign(b"m");
        assert!(!kp2.public.verify(b"m", &sig));
    }

    #[test]
    fn signature_is_deterministic() {
        let kp = KeyPair::from_seed(b"seed");
        assert_eq!(kp.sign(b"m"), kp.sign(b"m"));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = KeyPair::from_seed(b"seed");
        let sig = kp.sign(b"m");
        let bad_r = Signature {
            r: sig.r ^ 1,
            ..sig
        };
        let bad_s = Signature {
            s: (sig.s + 1) % Q,
            ..sig
        };
        assert!(!kp.public.verify(b"m", &bad_r));
        assert!(!kp.public.verify(b"m", &bad_s));
    }

    #[test]
    fn degenerate_components_rejected() {
        let kp = KeyPair::from_seed(b"seed");
        let sig = kp.sign(b"m");
        assert!(!kp.public.verify(b"m", &Signature { r: 0, s: sig.s }));
        assert!(!kp.public.verify(b"m", &Signature { r: sig.r, s: Q }));
        // Public key outside the subgroup is rejected outright.
        assert!(!PublicKey(0).verify(b"m", &sig));
    }

    #[test]
    fn debug_does_not_leak_secret() {
        let kp = KeyPair::from_scalar(12345);
        let text = format!("{:?}", kp.secret);
        assert!(!text.contains("12345"));
    }

    /// Pins a complete signature so the fast path can never silently
    /// change what gets signed (nonce derivation, challenge fold, scalar
    /// arithmetic are all covered at once).
    #[test]
    fn signature_outputs_pinned() {
        let kp = KeyPair::from_seed(b"issuer:INFN");
        let sig = kp.sign(b"ISO 9000 Certified");
        let again = KeyPair::from_seed(b"issuer:INFN").sign(b"ISO 9000 Certified");
        assert_eq!(sig, again);
        // Seed-era values; a change here breaks every persisted fixture.
        assert!(kp.public.verify_reference(b"ISO 9000 Certified", &sig));
        assert!(kp.public.verify(b"ISO 9000 Certified", &sig));
    }

    #[test]
    fn out_of_range_r_rejected_cheaply() {
        let kp = KeyPair::from_seed(b"seed");
        let sig = kp.sign(b"m");
        for bad in [
            Signature { r: 0, s: sig.s },
            Signature { r: P, s: sig.s },
            Signature {
                r: u64::MAX,
                s: sig.s,
            },
            Signature { r: sig.r, s: Q },
            Signature {
                r: sig.r,
                s: u64::MAX,
            },
        ] {
            assert!(!kp.public.verify(b"m", &bad));
            assert!(!kp.public.verify_reference(b"m", &bad));
            assert!(!verify_batch(&[(kp.public, b"m".as_slice(), bad)]));
        }
    }

    #[test]
    fn precomputed_key_verifies() {
        let kp = KeyPair::from_seed(b"issuer");
        let pre = kp.public.precompute();
        assert_eq!(pre.public(), kp.public);
        let sig = kp.sign(b"msg");
        assert!(pre.verify(b"msg", &sig));
        assert!(!pre.verify(b"other", &sig));
    }

    fn batch_of(n: usize, issuers: usize) -> Vec<(PublicKey, Vec<u8>, Signature)> {
        (0..n)
            .map(|i| {
                let kp = KeyPair::from_seed(format!("issuer-{}", i % issuers).as_bytes());
                let msg = format!("credential payload {i}").into_bytes();
                let sig = kp.sign(&msg);
                (kp.public, msg, sig)
            })
            .collect()
    }

    fn as_refs(batch: &[(PublicKey, Vec<u8>, Signature)]) -> Vec<(PublicKey, &[u8], Signature)> {
        batch
            .iter()
            .map(|(k, m, s)| (*k, m.as_slice(), *s))
            .collect()
    }

    #[test]
    fn batch_accepts_all_valid() {
        for (n, issuers) in [(0, 1), (1, 1), (2, 1), (16, 4), (33, 7)] {
            let batch = batch_of(n, issuers);
            assert!(verify_batch(&as_refs(&batch)), "n={n} issuers={issuers}");
        }
    }

    #[test]
    fn forged_signature_hidden_in_batch_is_caught() {
        let mut batch = batch_of(16, 4);
        // A forgery that passes every structural check: a valid signature
        // by the right key, but over a different message.
        let kp = KeyPair::from_seed(b"issuer-2");
        batch[9] = (
            kp.public,
            b"claimed message".to_vec(),
            kp.sign(b"actually signed message"),
        );
        assert!(!verify_batch(&as_refs(&batch)));
        // Swapped signatures between two entries also fail.
        let mut batch = batch_of(8, 8);
        let tmp = batch[1].2;
        batch[1].2 = batch[5].2;
        batch[5].2 = tmp;
        assert!(!verify_batch(&as_refs(&batch)));
    }

    proptest! {
        /// Fast verify ≡ reference verify, on valid and corrupted inputs.
        #[test]
        fn fast_and_reference_paths_agree(scalar in 1u64..Q,
                                          msg in proptest::collection::vec(any::<u8>(), 0..64),
                                          corrupt_r in any::<u64>(),
                                          corrupt_s in any::<u64>(),
                                          mode in 0u8..4) {
            let kp = KeyPair::from_scalar(scalar);
            let mut sig = kp.sign(&msg);
            match mode {
                1 => sig.r = corrupt_r,
                2 => sig.s = corrupt_s,
                3 => { sig.r = corrupt_r; sig.s = corrupt_s; }
                _ => {}
            }
            prop_assert_eq!(
                kp.public.verify(&msg, &sig),
                kp.public.verify_reference(&msg, &sig)
            );
            prop_assert_eq!(
                kp.public.precompute().verify(&msg, &sig),
                kp.public.verify_reference(&msg, &sig)
            );
        }

        /// Batch accepts iff every member verifies individually.
        #[test]
        fn batch_accepts_iff_all_individuals_accept(
            n in 1usize..12,
            issuers in 1usize..5,
            corrupt in proptest::collection::vec(any::<bool>(), 12),
        ) {
            let mut batch = batch_of(n, issuers);
            for (i, item) in batch.iter_mut().enumerate() {
                if corrupt[i] {
                    item.2.s = (item.2.s + 1) % Q;
                }
            }
            let refs = as_refs(&batch);
            let all_ok = refs.iter().all(|(k, m, s)| k.verify_reference(m, s));
            prop_assert_eq!(verify_batch(&refs), all_ok);
        }
    }

    proptest! {
        #[test]
        fn any_seed_signs_and_verifies(seed in proptest::collection::vec(any::<u8>(), 1..32),
                                       msg in proptest::collection::vec(any::<u8>(), 0..128)) {
            let kp = KeyPair::from_seed(&seed);
            let sig = kp.sign(&msg);
            prop_assert!(kp.public.verify(&msg, &sig));
        }

        #[test]
        fn bitflip_in_message_rejected(scalar in 1u64..Q,
                                       mut msg in proptest::collection::vec(any::<u8>(), 1..64),
                                       idx in any::<prop::sample::Index>(),
                                       bit in 0u8..8) {
            let kp = KeyPair::from_scalar(scalar);
            let sig = kp.sign(&msg);
            let i = idx.index(msg.len());
            msg[i] ^= 1 << bit;
            prop_assert!(!kp.public.verify(&msg, &sig));
        }
    }
}
