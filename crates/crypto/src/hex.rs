//! Lowercase hexadecimal encoding for digests and opaque identifiers.

/// Encode bytes as lowercase hex.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for b in data {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    out
}

/// Decode a hex string (either case). Returns `None` on odd length or a
/// non-hex character.
pub fn decode(text: &str) -> Option<Vec<u8>> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        assert_eq!(encode(&[0x00, 0xff, 0x10]), "00ff10");
        assert_eq!(decode("00ff10"), Some(vec![0x00, 0xff, 0x10]));
        assert_eq!(decode("00FF10"), Some(vec![0x00, 0xff, 0x10]));
    }

    #[test]
    fn rejects_odd_and_garbage() {
        assert_eq!(decode("abc"), None);
        assert_eq!(decode("zz"), None);
    }

    proptest! {
        #[test]
        fn roundtrip(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            prop_assert_eq!(decode(&encode(&data)), Some(data));
        }
    }
}
