//! The fault-injecting transport itself.
//!
//! [`NetSim`] wraps a [`ServiceBus`] and implements
//! [`Transport`], so every driver written against the trait (the
//! resilient client, VO formation) runs unchanged over a perfect or a
//! hostile network. All injected delay is charged to the shared
//! [`SimClock`] — nothing here touches wall time.
//!
//! # Determinism contract
//!
//! Every probabilistic decision for a call is drawn from a
//! [`SplitMix64`] stream seeded by
//! `mix(seed, service, operation, idempotency-key, attempt)`, where
//! `attempt` counts prior deliveries of the same key on the same link.
//! Under a serial driver the whole fault schedule is therefore a pure
//! function of the plan — same seed, same drops, same duplicates, same
//! latencies, same outcomes. (Concurrent drivers stay *individually*
//! deterministic per key, but interleaving — and hence which call first
//! trips a crash window — is scheduler-dependent.)
//!
//! # Idempotency and the reply cache
//!
//! The wrapper models a server-side dedup layer: results of keyed calls
//! (successes *and* application faults — both are the negotiation's
//! verdict) are cached per `(service, key)`, so a retried or duplicated
//! request is answered from the cache instead of re-executing the
//! operation. Transport faults are never cached — they describe the
//! network, not the operation. A crash clears the affected service's
//! cache along with its volatile sessions.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;
use trust_vo_soa::{Envelope, Fault, FaultKind, ServiceBus, SimClock, Transport};

use crate::plan::FaultPlan;
use crate::rng::{hash_str, mix, SplitMix64};

/// Live counters for the injected faults. All handles are plain
/// [`trust_vo_obs`] counters: they count even when span collection is
/// compiled out, and clones observe the same totals.
#[derive(Debug, Clone, Default)]
pub struct NetMetrics {
    /// Messages lost (either direction), including outage hits.
    pub drops: trust_vo_obs::Counter,
    /// Requests delivered twice.
    pub dups: trust_vo_obs::Counter,
    /// Endpoint crashes fired by outage windows.
    pub crashes: trust_vo_obs::Counter,
    /// Calls refused because a partition severed the link.
    pub partitioned: trust_vo_obs::Counter,
    /// Calls delivered to the endpoint (cache hits included).
    pub delivered: trust_vo_obs::Counter,
    /// Keyed calls answered from the reply cache without re-execution.
    pub dedup_replays: trust_vo_obs::Counter,
}

/// Outcome slot of the reply cache.
type CachedReply = Result<Envelope, Fault>;

/// A deterministic, seed-driven unreliable network in front of a
/// [`ServiceBus`]. See the module docs for the fault model.
pub struct NetSim {
    bus: ServiceBus,
    plan: FaultPlan,
    /// Delivery attempts per `(service, idempotency key)` — the
    /// `attempt` word of the per-call decision stream.
    attempts: Mutex<HashMap<(String, u64), u64>>,
    /// Server-side dedup: `(service, key)` → first computed outcome.
    replies: Mutex<HashMap<(String, u64), CachedReply>>,
    /// One latch per plan outage: has its crash fired yet?
    crash_fired: Vec<AtomicBool>,
    /// Distinguishes unkeyed calls from each other.
    anon_nonce: AtomicU64,
    metrics: NetMetrics,
}

impl NetSim {
    /// Wraps `bus` under `plan`.
    pub fn new(bus: ServiceBus, plan: FaultPlan) -> Self {
        let crash_fired = plan
            .outages
            .iter()
            .map(|_| AtomicBool::new(false))
            .collect();
        NetSim {
            bus,
            plan,
            attempts: Mutex::new(HashMap::new()),
            replies: Mutex::new(HashMap::new()),
            crash_fired,
            anon_nonce: AtomicU64::new(0),
            metrics: NetMetrics::default(),
        }
    }

    /// The wrapped bus.
    pub fn bus(&self) -> &ServiceBus {
        &self.bus
    }

    /// The governing plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The injector's live counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Checks outage windows for `service` at sim instant `now`; fires
    /// the crash latch on first contact and reports whether the service
    /// is currently unreachable.
    fn outage_hit(&self, service: &str, now: trust_vo_soa::SimDuration) -> bool {
        let obs = self.bus.clock().collector();
        let mut down = false;
        for (i, outage) in self.plan.outages.iter().enumerate() {
            if outage.service != service || now < outage.start || now >= outage.end {
                continue;
            }
            down = true;
            if outage.crash && !self.crash_fired[i].swap(true, Ordering::SeqCst) {
                if let Some(endpoint) = self.bus.endpoint(service) {
                    endpoint.on_crash();
                }
                // The dedup layer lives with the process: a restart
                // forgets which keys it has answered.
                self.replies.lock().retain(|(s, _), _| s != service);
                self.metrics.crashes.inc();
                if obs.is_enabled() {
                    obs.counter_add("net.crashes", 1);
                }
            }
        }
        down
    }

    /// Delivers a request to the endpoint, through the reply cache.
    /// The second bool reports whether the reply came from the dedup
    /// cache without re-executing the operation.
    fn deliver(
        &self,
        service: &str,
        request: &Envelope,
        key: Option<u64>,
        duplicated: bool,
    ) -> (CachedReply, bool) {
        self.metrics.delivered.inc();
        if let Some(k) = key {
            if let Some(cached) = self.replies.lock().get(&(service.to_string(), k)) {
                self.metrics.dedup_replays.inc();
                return (cached.clone(), true);
            }
        }
        let result = self.bus.call(service, request);
        if duplicated {
            self.metrics.dups.inc();
            let obs = self.bus.clock().collector();
            if obs.is_enabled() {
                obs.counter_add("net.dups", 1);
            }
            if key.is_none() {
                // No key to dedup on: the duplicate re-executes, side
                // effects included. That is the point of the model.
                let _ = self.bus.call(service, request);
            }
        }
        if let Some(k) = key {
            let cacheable = match &result {
                Ok(_) => true,
                Err(f) => f.kind == FaultKind::Application,
            };
            if cacheable {
                self.replies
                    .lock()
                    .insert((service.to_string(), k), result.clone());
            }
        }
        (result, false)
    }
}

impl Transport for NetSim {
    fn call(&self, service: &str, request: &Envelope) -> Result<Envelope, Fault> {
        let clock = self.bus.clock();
        let obs = clock.collector();
        let now = clock.elapsed();
        let profile = self.plan.profile_for(service).clone();

        // A traced request crosses the simulated network under a
        // `net.transit` span: injected latency, drop timeouts, duplicate
        // deliveries, and dedup-cache replies all land inside it, and the
        // envelope is re-stamped so bus/endpoint spans parent under it.
        // The span never influences the decision stream — traced and
        // untraced runs see identical fault schedules.
        let mut span = match &request.trace {
            Some(trace) if obs.is_enabled() => {
                let mut s = obs.span_linked("net.transit", trace.link());
                s.field("service", service);
                s.field("operation", request.operation.as_str());
                Some(s)
            }
            _ => None,
        };
        let routed;
        let request = match &span {
            Some(s) => {
                routed = request.restamped(s.id().unwrap_or(0));
                &routed
            }
            None => request,
        };

        if let Some(name) = self.plan.partitioned(service, now) {
            self.metrics.partitioned.inc();
            if obs.is_enabled() {
                obs.counter_add("net.partitioned", 1);
            }
            if let Some(s) = span.as_mut() {
                s.field("disposition", "partitioned");
            }
            clock.advance(profile.drop_timeout);
            return Err(Fault::transport(
                "Partitioned",
                format!("link to '{service}' severed by partition '{name}'"),
            ));
        }
        if self.outage_hit(service, now) {
            self.metrics.drops.inc();
            if obs.is_enabled() {
                obs.counter_add("net.drops", 1);
            }
            if let Some(s) = span.as_mut() {
                s.field("disposition", "outage");
            }
            clock.advance(profile.drop_timeout);
            return Err(Fault::transport(
                "Unreachable",
                format!("service '{service}' is down"),
            ));
        }

        // Identity of this call in the decision stream. Unkeyed calls get
        // a fresh nonce: distinct, but still replayable in issue order.
        let (key_word, attempt) = match request.idempotency_key {
            Some(k) => {
                let mut attempts = self.attempts.lock();
                let slot = attempts.entry((service.to_string(), k)).or_insert(0);
                *slot += 1;
                (k, *slot)
            }
            None => (
                self.anon_nonce.fetch_add(1, Ordering::SeqCst) | (1 << 63),
                1,
            ),
        };
        let mut rng = SplitMix64::new(mix(&[
            self.plan.seed,
            hash_str(service),
            hash_str(&request.operation),
            key_word,
            attempt,
        ]));
        // Draw every roll up front so the schedule for this (key,
        // attempt) does not depend on which branch is taken.
        let lat_req = rng.in_range(profile.latency_min.0, profile.latency_max.0);
        let drop_req = rng.chance(profile.drop_probability);
        let duplicated = rng.chance(profile.duplicate_probability);
        let drop_resp = rng.chance(profile.drop_probability);
        let lat_resp = rng.in_range(profile.latency_min.0, profile.latency_max.0);

        clock.advance(trust_vo_soa::SimDuration(lat_req));
        if drop_req {
            self.metrics.drops.inc();
            if obs.is_enabled() {
                obs.counter_add("net.drops", 1);
            }
            if let Some(s) = span.as_mut() {
                s.field("disposition", "request-lost");
            }
            clock.advance(profile.drop_timeout);
            return Err(Fault::transport(
                "Timeout",
                format!("request to '{service}' lost"),
            ));
        }
        let (outcome, replayed) =
            self.deliver(service, request, request.idempotency_key, duplicated);
        if let Some(s) = span.as_mut() {
            s.field("duplicated", duplicated);
            s.field("dedup_replay", replayed);
        }
        if drop_resp {
            // The operation executed; only the caller's view of it is
            // lost. Retries recover the verdict from the reply cache.
            self.metrics.drops.inc();
            if obs.is_enabled() {
                obs.counter_add("net.drops", 1);
            }
            if let Some(s) = span.as_mut() {
                s.field("disposition", "response-lost");
            }
            clock.advance(profile.drop_timeout);
            return Err(Fault::transport(
                "Timeout",
                format!("response from '{service}' lost"),
            ));
        }
        clock.advance(trust_vo_soa::SimDuration(lat_resp));
        if let Some(s) = span.as_mut() {
            s.field("disposition", "delivered");
        }
        outcome
    }

    fn clock(&self) -> &SimClock {
        self.bus.clock()
    }
}
