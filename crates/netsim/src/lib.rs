//! Deterministic fault injection for the trust-VO SOA substrate.
//!
//! The paper's prototype runs negotiations over SOAP on real, fallible
//! networks; the in-process reproduction was perfectly reliable until
//! now. This crate restores the failure modes — message loss, transit
//! latency, duplicate delivery, endpoint crash/restart, partitions —
//! as a [`Transport`](trust_vo_soa::Transport) decorator over the
//! [`ServiceBus`](trust_vo_soa::ServiceBus), driven entirely by a `u64`
//! seed so every chaos run replays bit-for-bit.
//!
//! * [`rng`] — zero-dependency SplitMix64 and stable name hashing,
//! * [`plan`] — [`FaultPlan`]: per-link profiles, outage windows, named
//!   partitions; pure data,
//! * [`net`] — [`NetSim`]: the transport wrapper, its reply cache (the
//!   server-side idempotency layer), and live [`NetMetrics`].
//!
//! Pair it with `trust_vo_soa::run_negotiation_resilient` (retry +
//! checkpointed resume) to reproduce the paper's negotiations under
//! loss: the fig9_faulty_join bench sweeps loss rates over exactly this
//! stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod net;
pub mod plan;
pub mod rng;

pub use net::{NetMetrics, NetSim};
pub use plan::{FaultPlan, LinkProfile, Outage, Partition};
pub use rng::SplitMix64;

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use trust_vo_credential::{CredentialAuthority, TimeRange, Timestamp};
    use trust_vo_negotiation::{Party, Strategy};
    use trust_vo_policy::{DisclosurePolicy, Resource, Term};
    use trust_vo_soa::simclock::CostModel;
    use trust_vo_soa::{
        run_negotiation, run_negotiation_resilient, Envelope, ResumePolicy, RetryPolicy,
        ServiceBus, SimClock, SimDuration, TnService, Transport,
    };
    use trust_vo_store::Database;
    use trust_vo_xmldoc::Element;

    use super::*;

    fn bus() -> ServiceBus {
        let clock = SimClock::new(
            CostModel::paper_testbed(),
            Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0),
        );
        let bus = ServiceBus::new(clock.clone());
        let svc = TnService::new(clock, Database::new());

        let mut ca = CredentialAuthority::new("AAA");
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
        let mut aircraft = Party::new("Aircraft");
        let mut aerospace = Party::new("Aerospace");
        let quality = ca
            .issue(
                "WebDesignerQuality",
                "Aerospace",
                aerospace.keys.public,
                vec![],
                window,
            )
            .unwrap();
        aerospace.profile.add(quality);
        aircraft.policies.add(DisclosurePolicy::rule(
            "p1",
            Resource::service("VoMembership"),
            vec![Term::of_type("WebDesignerQuality")],
        ));
        aircraft.trust_root(ca.public_key());
        aerospace.trust_root(ca.public_key());
        svc.register_party(aerospace);
        svc.register_party(aircraft);
        bus.register("tn", Arc::new(svc));
        bus
    }

    fn drive(net: &NetSim, seed: u64) -> trust_vo_soa::ResilientRun {
        run_negotiation_resilient(
            net,
            "tn",
            "Aerospace",
            "Aircraft",
            "VoMembership",
            Strategy::Standard,
            &RetryPolicy::standard(),
            &ResumePolicy::standard(),
            seed,
            trust_vo_obs::SpanLink::default(),
        )
        .expect("negotiation completes under faults")
    }

    #[test]
    fn reliable_plan_is_a_strict_pass_through() {
        // Baseline: the same resilient driver straight on the bus.
        // (Resumable sessions checkpoint, so the plain driver is not the
        // right comparison — the wrapper is what must add nothing.)
        let bare = bus();
        let baseline = run_negotiation_resilient(
            &bare,
            "tn",
            "Aerospace",
            "Aircraft",
            "VoMembership",
            Strategy::Standard,
            &RetryPolicy::standard(),
            &ResumePolicy::standard(),
            7,
            trust_vo_obs::SpanLink::default(),
        )
        .unwrap();
        let baseline_counts = bare.clock().counts();

        let net = NetSim::new(bus(), FaultPlan::reliable(42));
        let run = drive(&net, 7);
        assert_eq!(run.retries + run.resumes + run.restarts, 0);
        assert_eq!(run.run.credential_calls, baseline.run.credential_calls);
        assert_eq!(run.run.sequence_len, baseline.run.sequence_len);
        assert_eq!(run.run.sim_elapsed, baseline.run.sim_elapsed);
        assert_eq!(net.metrics().drops.get(), 0);
        assert_eq!(net.metrics().dups.get(), 0);
        // Same charge profile as the bare bus: the wrapper added nothing.
        assert_eq!(net.bus().clock().counts(), baseline_counts);

        // And the plain, non-resumable driver still agrees on the
        // negotiation outcome itself.
        let plain = bus();
        let plain_run = run_negotiation(
            &plain,
            "tn",
            "Aerospace",
            "Aircraft",
            "VoMembership",
            Strategy::Standard,
        )
        .unwrap();
        assert_eq!(plain_run.sequence_len, run.run.sequence_len);
        assert_eq!(plain_run.credential_calls, run.run.credential_calls);
    }

    #[test]
    fn same_seed_same_outcome_and_fault_schedule() {
        let mut fingerprints = Vec::new();
        for _ in 0..2 {
            let net = NetSim::new(bus(), FaultPlan::lossy(42, 0.2));
            let run = drive(&net, 7);
            fingerprints.push((
                run.retries,
                run.resumes,
                run.restarts,
                run.run.credential_calls,
                run.run.sim_elapsed,
                net.metrics().drops.get(),
                net.metrics().dups.get(),
                net.bus().clock().counts(),
            ));
        }
        assert_eq!(fingerprints[0], fingerprints[1]);
    }

    #[test]
    fn different_seeds_diverge() {
        let schedule = |seed| {
            let net = NetSim::new(bus(), FaultPlan::lossy(seed, 0.2));
            let run = drive(&net, 7);
            (run.retries, net.metrics().drops.get(), run.run.sim_elapsed)
        };
        // Not a hard guarantee for any single pair, so try a few.
        assert!(
            (1..=5u64).any(|s| schedule(s) != schedule(s + 100)),
            "five seed pairs produced identical fault schedules"
        );
    }

    #[test]
    fn heavy_loss_is_survived_by_retry_and_resume() {
        let net = NetSim::new(bus(), FaultPlan::lossy(1234, 0.2));
        let run = drive(&net, 99);
        assert!(
            net.metrics().drops.get() > 0,
            "0.2 loss plan dropped nothing"
        );
        assert!(run.retries > 0);
        assert_eq!(run.run.sequence_len, 1);
    }

    #[test]
    fn crash_window_wipes_volatile_sessions() {
        // Run phase 1 on the bare bus, then wrap it with a crash window
        // opening exactly now: the next call through the wrapper lands
        // inside it, crashes the endpoint, and the volatile session dies
        // with it — only the checkpointed-resume path can finish the job.
        let bus = bus();
        let start = bus
            .call(
                "tn",
                &Envelope::request(
                    "StartNegotiation",
                    Element::new("StartNegotiationRequest")
                        .attr("resumable", "true")
                        .child(Element::new("strategy").text("standard"))
                        .child(Element::new("requester").text("Aerospace"))
                        .child(Element::new("counterpartUrl").text("Aircraft"))
                        .child(Element::new("resource").text("VoMembership")),
                ),
            )
            .unwrap();
        let id: u64 = start
            .body
            .child_text("negotiationId")
            .unwrap()
            .parse()
            .unwrap();
        let policy = bus
            .call(
                "tn",
                &Envelope::request("PolicyExchange", Element::new("PolicyExchangeRequest"))
                    .with_negotiation(id),
            )
            .unwrap();
        assert!(policy.body.first("ResumeToken").is_some());

        let now = bus.clock().elapsed();
        let clock = bus.clock().clone();
        let plan = FaultPlan::reliable(5).outage("tn", now, SimDuration(now.0 + 1_000), true);
        let net = NetSim::new(bus, plan);
        let cred_req = Envelope::request(
            "CredentialExchange",
            Element::new("CredentialExchangeRequest"),
        )
        .with_negotiation(id);
        let err = net.call("tn", &cred_req).unwrap_err();
        assert!(err.is_transport());
        assert_eq!(net.metrics().crashes.get(), 1);
        // Past the window the endpoint is back up, but it has forgotten
        // the session.
        clock.advance(SimDuration::from_millis(2));
        let err = net.call("tn", &cred_req).unwrap_err();
        assert_eq!(err.code, "NoSuchNegotiation");
        // The durable checkpoint survived: presenting the token resumes.
        let token = policy.body.first("ResumeToken").unwrap().clone();
        let resumed = net
            .call(
                "tn",
                &Envelope::request(
                    "ResumeNegotiation",
                    Element::new("ResumeNegotiationRequest").child(token),
                ),
            )
            .unwrap();
        assert_eq!(resumed.body.get_attr("status"), Some("resumed"));
    }

    #[test]
    fn partition_blocks_then_heals() {
        // Party registration charges sim time, so anchor the window at
        // the clock's current position rather than zero.
        let bus = bus();
        let now = bus.clock().elapsed();
        let plan = FaultPlan::reliable(5).partition(
            "wan-split",
            vec!["tn".into()],
            now,
            SimDuration(now.0 + SimDuration::from_millis(100).0),
        );
        let net = NetSim::new(bus, plan);
        let req = Envelope::request(
            "StartNegotiation",
            Element::new("StartNegotiationRequest")
                .child(Element::new("strategy").text("standard"))
                .child(Element::new("requester").text("Aerospace"))
                .child(Element::new("counterpartUrl").text("Aircraft"))
                .child(Element::new("resource").text("VoMembership")),
        );
        let err = net.call("tn", &req).unwrap_err();
        assert!(err.is_transport());
        assert!(err.reason.contains("wan-split"));
        assert_eq!(net.metrics().partitioned.get(), 1);
        net.bus().clock().advance(SimDuration::from_millis(200));
        assert!(net.call("tn", &req).is_ok());
    }

    #[test]
    fn reply_cache_absorbs_keyed_duplicates() {
        // Force duplicates on every delivered call; keyed requests must
        // not double-execute.
        let plan = FaultPlan {
            default_link: LinkProfile {
                duplicate_probability: 1.0,
                ..LinkProfile::reliable()
            },
            ..FaultPlan::reliable(9)
        };
        let net = NetSim::new(bus(), plan);
        let run = drive(&net, 3);
        assert!(net.metrics().dups.get() > 0);
        assert_eq!(run.retries, 0);
        // Each logical call executed exactly once: the dedup layer
        // answered nothing from the cache (no retries), and the bus saw
        // one charge-set identical to the reliable baseline.
        let baseline = NetSim::new(bus(), FaultPlan::reliable(9));
        let _ = drive(&baseline, 3);
        assert_eq!(
            net.bus().clock().counts(),
            baseline.bus().clock().counts(),
            "keyed duplicates must not re-execute operations"
        );
    }

    #[test]
    fn wire_boundary_is_outcome_invariant_under_faults() {
        // Same seed and lossy plan with the wire path on and off: the
        // binary codec round-trips envelopes exactly, and fault decisions
        // key on (service, op, idempotency-key, attempt), so the chaos
        // run replays bit-for-bit whether or not every call crosses the
        // framed byte boundary.
        let fingerprint = |wire: bool| {
            let bare = bus();
            bare.set_wire(wire);
            let net = NetSim::new(bare, FaultPlan::lossy(42, 0.2));
            let run = drive(&net, 7);
            (
                run.retries,
                run.resumes,
                run.restarts,
                run.run.credential_calls,
                run.run.sequence_len,
                run.run.sim_elapsed,
                net.metrics().drops.get(),
                net.metrics().dups.get(),
                net.bus().clock().counts(),
            )
        };
        assert_eq!(fingerprint(true), fingerprint(false));
    }

    #[test]
    fn netsim_traffic_rides_the_wire_boundary() {
        // NetSim delivers through ServiceBus::call, so every delivered
        // request is framed/unframed on the way through — visible as
        // bus.wire frame and byte counters once obs is attached.
        let bare = bus();
        bare.set_wire(true);
        let collector = trust_vo_obs::Collector::new();
        bare.clock().attach_obs(&collector);
        let net = NetSim::new(bare, FaultPlan::reliable(42));
        let _ = drive(&net, 7);
        let metrics = collector.metrics();
        assert!(metrics.counter("bus.wire.frames") > 0);
        assert!(metrics.counter("bus.wire.tx_bytes") > 0);
        assert!(metrics.counter("bus.wire.rx_bytes") > 0);
    }

    #[test]
    fn lost_response_verdict_is_recovered_from_the_cache() {
        // Under heavy loss some responses are dropped after the operation
        // executed server-side; the client's retry of the same key must
        // replay the cached verdict instead of re-running the exchange.
        let plan = FaultPlan {
            default_link: LinkProfile {
                drop_probability: 0.35,
                latency_min: SimDuration::ZERO,
                latency_max: SimDuration::ZERO,
                drop_timeout: SimDuration::from_millis(40),
                duplicate_probability: 0.0,
            },
            ..FaultPlan::reliable(4242)
        };
        let net = NetSim::new(bus(), plan);
        let run = drive(&net, 11);
        assert!(run.retries > 0);
        assert!(
            net.metrics().dedup_replays.get() > 0,
            "expected at least one cache replay under 35% loss (seed 4242)"
        );
        assert_eq!(run.run.sequence_len, 1);
    }
}
