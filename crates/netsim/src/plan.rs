//! Declarative fault plans: what the network does to each link, and when.
//!
//! A [`FaultPlan`] is pure data — probabilities, windows, and a seed —
//! so a chaos experiment is fully described by its plan and replays
//! identically from it. The [`NetSim`](crate::NetSim) transport consults
//! the plan on every call.

use std::collections::BTreeMap;

use trust_vo_soa::SimDuration;

/// Per-link fault parameters. A "link" is the client↔service path for
/// one registered service name.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkProfile {
    /// Probability that one message *direction* (request or response) is
    /// lost. A call survives only if both directions do, so end-to-end
    /// loss is `2p − p²`.
    pub drop_probability: f64,
    /// Probability that a delivered request is delivered twice.
    /// Idempotency keys absorb the duplicate; unkeyed requests execute
    /// twice, duplicating side effects.
    pub duplicate_probability: f64,
    /// Lower bound of the per-direction transit latency.
    pub latency_min: SimDuration,
    /// Upper bound of the per-direction transit latency.
    pub latency_max: SimDuration,
    /// Sim time the caller burns waiting before concluding a message was
    /// lost (charged on every drop and outage hit).
    pub drop_timeout: SimDuration,
}

impl LinkProfile {
    /// A perfect link: no loss, no duplication, zero added latency. A
    /// `NetSim` whose every link is `reliable()` is a strict pass-through
    /// — byte-identical behaviour to the bare bus.
    pub fn reliable() -> Self {
        LinkProfile {
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            latency_min: SimDuration::ZERO,
            latency_max: SimDuration::ZERO,
            drop_timeout: SimDuration::ZERO,
        }
    }

    /// A lossy WAN-ish link: per-direction loss `p`, duplicates at `p/4`,
    /// 1–5 ms transit, 40 ms loss-detection timeout.
    pub fn lossy(p: f64) -> Self {
        LinkProfile {
            drop_probability: p,
            duplicate_probability: p / 4.0,
            latency_min: SimDuration::from_millis(1),
            latency_max: SimDuration::from_millis(5),
            drop_timeout: SimDuration::from_millis(40),
        }
    }
}

/// A service outage window in sim time: calls landing in
/// `[start, end)` fail as unreachable. With `crash` set, the first such
/// call also crashes the endpoint — its volatile sessions are wiped
/// (durable state survives), modelling a process restart.
#[derive(Debug, Clone, PartialEq)]
pub struct Outage {
    /// The service whose endpoint is down.
    pub service: String,
    /// Window start (inclusive), measured on the sim clock.
    pub start: SimDuration,
    /// Window end (exclusive).
    pub end: SimDuration,
    /// Whether entering the window wipes the endpoint's volatile state.
    pub crash: bool,
}

/// A named network partition: during `[start, end)` every listed service
/// is unreachable from the client side.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Label used in fault reasons and metrics.
    pub name: String,
    /// Services cut off by the partition.
    pub services: Vec<String>,
    /// Window start (inclusive), measured on the sim clock.
    pub start: SimDuration,
    /// Window end (exclusive).
    pub end: SimDuration,
}

/// The complete, replayable description of an unreliable network.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision. Equal plans with equal
    /// seeds produce identical fault schedules.
    pub seed: u64,
    /// Profile applied to services without a per-link override.
    pub default_link: LinkProfile,
    /// Per-service overrides of the default link.
    pub links: BTreeMap<String, LinkProfile>,
    /// Scheduled endpoint outages.
    pub outages: Vec<Outage>,
    /// Scheduled named partitions.
    pub partitions: Vec<Partition>,
}

impl FaultPlan {
    /// A plan that injects nothing: the identity network.
    pub fn reliable(seed: u64) -> Self {
        FaultPlan {
            seed,
            default_link: LinkProfile::reliable(),
            links: BTreeMap::new(),
            outages: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// A plan whose every link drops each message direction with
    /// probability `p` (see [`LinkProfile::lossy`]).
    pub fn lossy(seed: u64, p: f64) -> Self {
        FaultPlan {
            default_link: LinkProfile::lossy(p),
            ..FaultPlan::reliable(seed)
        }
    }

    /// Overrides the link profile for one service.
    pub fn link(mut self, service: impl Into<String>, profile: LinkProfile) -> Self {
        self.links.insert(service.into(), profile);
        self
    }

    /// Schedules an outage window for `service`; `crash` wipes volatile
    /// endpoint state on first contact inside the window.
    pub fn outage(
        mut self,
        service: impl Into<String>,
        start: SimDuration,
        end: SimDuration,
        crash: bool,
    ) -> Self {
        self.outages.push(Outage {
            service: service.into(),
            start,
            end,
            crash,
        });
        self
    }

    /// Schedules a named partition cutting off `services` during
    /// `[start, end)`.
    pub fn partition(
        mut self,
        name: impl Into<String>,
        services: Vec<String>,
        start: SimDuration,
        end: SimDuration,
    ) -> Self {
        self.partitions.push(Partition {
            name: name.into(),
            services,
            start,
            end,
        });
        self
    }

    /// The link profile governing calls to `service`.
    pub fn profile_for(&self, service: &str) -> &LinkProfile {
        self.links.get(service).unwrap_or(&self.default_link)
    }

    /// If `service` is cut off by a partition at instant `now`, returns
    /// the partition's name.
    pub fn partitioned(&self, service: &str, now: SimDuration) -> Option<&str> {
        self.partitions
            .iter()
            .find(|p| p.start <= now && now < p.end && p.services.iter().any(|s| s == service))
            .map(|p| p.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_override_wins() {
        let plan = FaultPlan::lossy(1, 0.2).link("stable", LinkProfile::reliable());
        assert_eq!(plan.profile_for("stable"), &LinkProfile::reliable());
        assert_eq!(plan.profile_for("other"), &LinkProfile::lossy(0.2));
    }

    #[test]
    fn partition_window_is_half_open() {
        let plan = FaultPlan::reliable(1).partition(
            "split-brain",
            vec!["tn".into()],
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
        );
        assert_eq!(plan.partitioned("tn", SimDuration::from_millis(9)), None);
        assert_eq!(
            plan.partitioned("tn", SimDuration::from_millis(10)),
            Some("split-brain")
        );
        assert_eq!(
            plan.partitioned("tn", SimDuration::from_millis(19)),
            Some("split-brain")
        );
        assert_eq!(plan.partitioned("tn", SimDuration::from_millis(20)), None);
        assert_eq!(
            plan.partitioned("other", SimDuration::from_millis(15)),
            None
        );
    }
}
