//! Zero-dependency deterministic randomness for the fault injector.
//!
//! Every fault decision must be a *pure function* of the plan seed and
//! the call's identity, so a run replays bit-for-bit from a single `u64`.
//! SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
//! generators", OOPSLA 2014) gives exactly that: a stateless finalizer
//! over a 64-bit counter with full-period output, cheap enough to reseed
//! per call.

/// SplitMix64 generator: 64 bits of state, one multiply-shift finalizer
/// per draw.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

/// The Weyl increment: 2^64 / φ, coprime with 2^64.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output finalizer: an invertible avalanche over `z`.
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds produce equal
    /// streams on every platform.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Draws the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        finalize(self.state)
    }

    /// Draws a uniform float in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0, 1]`).
    ///
    /// Always consumes exactly one draw so downstream decisions keep
    /// their stream positions no matter the outcome.
    pub fn chance(&mut self, p: f64) -> bool {
        let roll = self.next_f64();
        roll < p.clamp(0.0, 1.0)
    }

    /// Uniform integer in `[lo, hi]`. `lo > hi` returns `lo`. One draw.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        let roll = self.next_u64();
        if lo >= hi {
            return lo;
        }
        lo + roll % (hi - lo + 1)
    }
}

/// Folds a set of identity words into one seed via the SplitMix64
/// finalizer, so `(seed, service, operation, key, attempt)` maps to a
/// well-mixed per-call stream.
pub fn mix(words: &[u64]) -> u64 {
    let mut acc = 0u64;
    for (i, w) in words.iter().enumerate() {
        acc = finalize(acc ^ w.wrapping_add((i as u64 + 1).wrapping_mul(GOLDEN_GAMMA)));
    }
    acc
}

/// FNV-1a over UTF-8 bytes: a stable 64-bit name hash for services and
/// operations (no `DefaultHasher`, whose output is unspecified across
/// releases).
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(43);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn reference_vector() {
        // First outputs for seed 1234567, cross-checked against the
        // published SplitMix64 reference implementation.
        let mut g = SplitMix64::new(1_234_567);
        assert_eq!(g.next_u64(), 6_457_827_717_110_365_317);
        assert_eq!(g.next_u64(), 3_203_168_211_198_807_973);
    }

    #[test]
    fn chance_is_calibrated() {
        let mut g = SplitMix64::new(7);
        let hits = (0..10_000).filter(|_| g.chance(0.2)).count();
        assert!((1_800..2_200).contains(&hits), "hits = {hits}");
        let mut g = SplitMix64::new(7);
        assert_eq!((0..100).filter(|_| g.chance(0.0)).count(), 0);
        let mut g = SplitMix64::new(7);
        assert_eq!((0..100).filter(|_| g.chance(1.0)).count(), 100);
    }

    #[test]
    fn in_range_is_inclusive_and_bounded() {
        let mut g = SplitMix64::new(9);
        for _ in 0..1_000 {
            let v = g.in_range(10, 12);
            assert!((10..=12).contains(&v));
        }
        assert_eq!(g.in_range(5, 5), 5);
        assert_eq!(g.in_range(9, 3), 9);
    }

    #[test]
    fn mix_and_hash_are_stable_and_order_sensitive() {
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[3, 2, 1]));
        assert_ne!(mix(&[1]), mix(&[1, 0]));
        assert_eq!(hash_str("tn"), hash_str("tn"));
        assert_ne!(hash_str("tn"), hash_str("nt"));
    }
}
