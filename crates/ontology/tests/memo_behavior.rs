//! Behavioural tests for the process-wide mapping memo: hit/miss
//! accounting, on/off outcome identity, and generation-based
//! invalidation. These assert on [`MapMemo::global`] counters, so every
//! test serializes on one lock and restores the enabled flag it found.

use std::sync::{Mutex, MutexGuard};
use trust_vo_credential::{Attribute, CredentialAuthority, TimeRange, Timestamp, XProfile};
use trust_vo_crypto::KeyPair;
use trust_vo_ontology::{map_concept, Concept, MapMemo, Ontology};

static LOCK: Mutex<()> = Mutex::new(());

/// Serialize the test and restore the memo's enabled flag on drop.
struct MemoGuard {
    _lock: MutexGuard<'static, ()>,
    was_enabled: bool,
}

impl MemoGuard {
    fn acquire() -> Self {
        let lock = LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
        MemoGuard {
            _lock: lock,
            was_enabled: MapMemo::global().is_enabled(),
        }
    }
}

impl Drop for MemoGuard {
    fn drop(&mut self) {
        MapMemo::global().set_enabled(self.was_enabled);
    }
}

fn setup() -> (Ontology, XProfile) {
    let mut o = Ontology::new();
    o.add(
        Concept::new("QualityCertification")
            .keyword("ISO 9000")
            .implemented_by("ISO9000Certified"),
    );
    o.add(Concept::new("BalanceSheet").implemented_by("CertificationAuthorityCompany"));
    let mut ca = CredentialAuthority::new("INFN");
    let keys = KeyPair::from_seed(b"memo");
    let mut p = XProfile::new("Aerospace");
    p.add(
        ca.issue(
            "ISO9000Certified",
            "Aerospace",
            keys.public,
            vec![Attribute::new("QualityRegulation", "UNI EN ISO 9000")],
            TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0)),
        )
        .expect("open schema"),
    );
    (o, p)
}

#[test]
fn repeat_mapping_hits_the_memo() {
    let _guard = MemoGuard::acquire();
    let memo = MapMemo::global();
    memo.set_enabled(true);
    let (o, p) = setup();
    let before = memo.stats();
    let first = map_concept(&o, &p, "Quality_Certification_ISO", 0.2);
    let mid = memo.stats();
    assert_eq!(mid.misses, before.misses + 1);
    assert_eq!(mid.insertions, before.insertions + 1);
    let second = map_concept(&o, &p, "Quality_Certification_ISO", 0.2);
    let after = memo.stats();
    assert_eq!(after.hits, mid.hits + 1);
    assert_eq!(first, second, "memo hit must be byte-identical");
}

#[test]
fn disabled_memo_yields_identical_outcomes() {
    let _guard = MemoGuard::acquire();
    let memo = MapMemo::global();
    let (o, p) = setup();
    let concepts = [
        "QualityCertification",
        "Quality_Certification_ISO",
        "BalanceSheet",
        "Xylophone",
    ];
    memo.set_enabled(false);
    let off: Vec<_> = concepts
        .iter()
        .map(|c| map_concept(&o, &p, c, 0.2))
        .collect();
    memo.set_enabled(true);
    let on_miss: Vec<_> = concepts
        .iter()
        .map(|c| map_concept(&o, &p, c, 0.2))
        .collect();
    let on_hit: Vec<_> = concepts
        .iter()
        .map(|c| map_concept(&o, &p, c, 0.2))
        .collect();
    assert_eq!(off, on_miss, "memo off vs on (miss path) diverged");
    assert_eq!(off, on_hit, "memo off vs on (hit path) diverged");
}

#[test]
fn mutation_moves_to_miss_not_stale_hit() {
    let _guard = MemoGuard::acquire();
    let memo = MapMemo::global();
    memo.set_enabled(true);
    let (mut o, p) = setup();
    let mapped = map_concept(&o, &p, "QualityCertification", 0.2);
    assert!(mapped.is_mapped());
    // Replace the concept: the old memo entry's key embeds the old
    // generation, so the next lookup must be a *miss*, not a stale hit.
    o.add(Concept::new("QualityCertification"));
    let before = memo.stats();
    let remapped = map_concept(&o, &p, "QualityCertification", 0.2);
    let after = memo.stats();
    assert_eq!(after.misses, before.misses + 1);
    assert_eq!(after.hits, before.hits);
    assert!(
        !remapped.is_mapped(),
        "served a stale outcome: {remapped:?}"
    );
}
