//! Differential tests: the indexed engine must be outcome-identical to
//! the retained naive reference scans, over random ontologies, queries,
//! thresholds, and profiles. These are the tentpole's oracle — any
//! divergence between `match_concept` and `match_concept_reference` (or
//! between `MappingEngine` and the naive Algorithm 1 reimplemented here
//! from the reference primitives) is a bug in the index.

use proptest::prelude::*;
use std::collections::BTreeSet;
use trust_vo_credential::{
    Attribute, CredentialAuthority, Sensitivity, TimeRange, Timestamp, XProfile,
};
use trust_vo_crypto::KeyPair;
use trust_vo_ontology::similarity::name_similarity;
use trust_vo_ontology::{
    map_concept, match_concept, match_concept_reference, match_ontologies,
    match_ontologies_reference, Concept, MappingOutcome, Ontology,
};

/// A small shared vocabulary so random names collide, tie, and partially
/// overlap — the regimes where the index's argmax must agree exactly.
const WORDS: &[&str] = &[
    "quality", "iso", "9000", "cert", "license", "driver", "texas", "balance", "sheet", "storage",
    "web", "designer", "sla", "x509",
];

const THRESHOLDS: &[f64] = &[0.0, 0.1, 0.25, 0.5, 1.0];

fn camel(words: &[&str]) -> String {
    words
        .iter()
        .map(|w| {
            let mut chars = w.chars();
            match chars.next() {
                Some(first) => first.to_uppercase().chain(chars).collect::<String>(),
                None => String::new(),
            }
        })
        .collect()
}

fn arb_words(len: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = Vec<&'static str>> {
    prop::collection::vec(0usize..WORDS.len(), len)
        .prop_map(|ixs| ixs.into_iter().map(|i| WORDS[i]).collect())
}

#[derive(Debug, Clone)]
struct ConceptSpec {
    name_words: Vec<&'static str>,
    keyword_words: Vec<&'static str>,
    bindings: Vec<(u8, bool)>,
}

fn arb_concept() -> impl Strategy<Value = ConceptSpec> {
    (
        arb_words(1..=3),
        arb_words(0..=2),
        prop::collection::vec((0u8..6, any::<bool>()), 0..=2),
    )
        .prop_map(|(name_words, keyword_words, bindings)| ConceptSpec {
            name_words,
            keyword_words,
            bindings,
        })
}

#[derive(Debug, Clone)]
struct OntologySpec {
    concepts: Vec<ConceptSpec>,
    /// `is_a` edge attempts as index pairs; rejected edges are fine.
    edges: Vec<(usize, usize)>,
}

fn arb_ontology() -> impl Strategy<Value = OntologySpec> {
    (
        prop::collection::vec(arb_concept(), 0..=12),
        prop::collection::vec((0usize..12, 0usize..12), 0..=10),
    )
        .prop_map(|(concepts, edges)| OntologySpec { concepts, edges })
}

fn build_ontology(spec: &OntologySpec) -> Ontology {
    let mut o = Ontology::new();
    for c in &spec.concepts {
        let mut concept = Concept::new(camel(&c.name_words));
        if !c.keyword_words.is_empty() {
            concept = concept.keyword(c.keyword_words.join(" "));
        }
        for &(ty, whole) in &c.bindings {
            let binding = if whole {
                format!("Type{ty}")
            } else {
                format!("Type{ty}.Attr{ty}")
            };
            concept = concept.implemented_by(&binding);
        }
        o.add(concept);
    }
    let names: Vec<String> = o.concepts().map(|c| c.name.clone()).collect();
    if !names.is_empty() {
        for &(a, b) in &spec.edges {
            o.add_is_a(&names[a % names.len()], &names[b % names.len()]);
        }
    }
    o
}

fn arb_query() -> impl Strategy<Value = String> {
    prop_oneof![
        arb_words(1..=3).prop_map(|ws| camel(&ws)),
        arb_words(1..=3).prop_map(|ws| ws.join("_")),
        Just(String::new()),
        Just("###".to_owned()),
        Just("Zzz".to_owned()),
    ]
}

fn build_profile(held: &[(u8, u8)]) -> XProfile {
    let mut ca = CredentialAuthority::new("DiffCA");
    let keys = KeyPair::from_seed(b"differential");
    let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
    let mut profile = XProfile::new("DiffParty");
    for &(ty, level) in held {
        let cred = ca
            .issue(
                &format!("Type{ty}"),
                "DiffParty",
                keys.public,
                vec![Attribute::new(format!("Attr{ty}"), "v")],
                window,
            )
            .expect("open schema");
        let label = match level % 3 {
            0 => Sensitivity::Low,
            1 => Sensitivity::Medium,
            _ => Sensitivity::High,
        };
        profile.add_with_sensitivity(cred, label);
    }
    profile
}

/// The seed's Algorithm 1, reassembled from the naive reference
/// primitives only (`match_concept_reference`, `ancestors`-based
/// subsumption, a second full scan for the sub-threshold diagnostic).
fn map_concept_naive(o: &Ontology, p: &XProfile, concept: &str, threshold: f64) -> MappingOutcome {
    let (resolved, via) = if o.contains(concept) {
        (concept.to_owned(), None)
    } else {
        match match_concept_reference(concept, o, threshold) {
            Some(m) => (m.target.clone(), Some(m)),
            None => {
                let best_confidence = o
                    .concepts()
                    .map(|c| name_similarity(concept, c))
                    .fold(0.0f64, f64::max);
                return MappingOutcome::UnknownConcept {
                    concept: concept.to_owned(),
                    best_confidence,
                };
            }
        }
    };
    let mut types: BTreeSet<&str> = BTreeSet::new();
    for c in o.concepts() {
        if c.name == resolved || o.ancestors(&c.name).contains(&resolved.as_str()) {
            types.extend(c.credential_types());
        }
    }
    let candidates: Vec<_> = p
        .credentials()
        .iter()
        .filter(|c| types.contains(c.cred_type()))
        .map(|c| c.id().clone())
        .collect();
    for level in Sensitivity::ALL {
        if let Some(cred) = p.cred_cluster(&candidates, level).next() {
            return MappingOutcome::Mapped {
                concept: concept.to_owned(),
                via,
                credential: cred.id().clone(),
                sensitivity: level,
            };
        }
    }
    MappingOutcome::NoCredential {
        concept: concept.to_owned(),
        resolved,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexed_match_equals_naive_reference(
        spec in arb_ontology(),
        queries in prop::collection::vec(arb_query(), 1..8),
        t_idx in 0usize..THRESHOLDS.len(),
    ) {
        let o = build_ontology(&spec);
        let threshold = THRESHOLDS[t_idx];
        for q in &queries {
            let indexed = match_concept(q, &o, threshold);
            let naive = match_concept_reference(q, &o, threshold);
            prop_assert_eq!(indexed, naive, "query {:?} threshold {}", q, threshold);
        }
    }

    #[test]
    fn indexed_cross_match_equals_naive_reference(
        source in arb_ontology(),
        target in arb_ontology(),
    ) {
        let source = build_ontology(&source);
        let target = build_ontology(&target);
        prop_assert_eq!(
            match_ontologies(&source, &target),
            match_ontologies_reference(&source, &target)
        );
    }

    #[test]
    fn closure_subsumption_equals_bfs_oracle(spec in arb_ontology()) {
        let o = build_ontology(&spec);
        let mut names: Vec<String> = o.concepts().map(|c| c.name.clone()).collect();
        names.push("Ghost".to_owned()); // absent endpoint: always false
        for child in &names {
            for ancestor in &names {
                let oracle = (child == ancestor && o.contains(child))
                    || o.ancestors(child).contains(&ancestor.as_str());
                prop_assert_eq!(
                    o.is_subconcept(child, ancestor),
                    oracle,
                    "{} is_a {}",
                    child,
                    ancestor
                );
            }
        }
    }

    #[test]
    fn engine_mapping_equals_naive_algorithm1(
        spec in arb_ontology(),
        held in prop::collection::vec((0u8..6, 0u8..3), 0..=5),
        queries in prop::collection::vec(arb_query(), 1..6),
        t_idx in 0usize..THRESHOLDS.len(),
    ) {
        let o = build_ontology(&spec);
        let p = build_profile(&held);
        let threshold = THRESHOLDS[t_idx];
        for q in &queries {
            let engine = map_concept(&o, &p, q, threshold);
            let naive = map_concept_naive(&o, &p, q, threshold);
            prop_assert_eq!(&engine, &naive, "query {:?} threshold {}", q, threshold);
            // Second call is a memo hit (when enabled) — byte-identical.
            prop_assert_eq!(&map_concept(&o, &p, q, threshold), &naive);
        }
    }
}

#[test]
fn empty_and_tokenless_edge_cases_agree() {
    // The naive scan scores empty-token concepts 1.0 against empty
    // queries (jaccard(∅, ∅) = 1) and 0.0 against everything else; the
    // index special-cases both. Pin the equivalence explicitly.
    let empty = Ontology::new();
    assert_eq!(
        match_concept("anything", &empty, 0.0),
        match_concept_reference("anything", &empty, 0.0)
    );
    let mut o = Ontology::new();
    o.add(Concept::new("_")); // tokenizes to the empty set
    o.add(Concept::new("Quality"));
    for query in ["", "###", "_", "Quality", "quality_iso"] {
        for &threshold in THRESHOLDS {
            assert_eq!(
                match_concept(query, &o, threshold),
                match_concept_reference(query, &o, threshold),
                "query {query:?} threshold {threshold}"
            );
        }
    }
}

#[test]
fn replaced_concept_remaps_fresh() {
    // `add` replacing a concept must invalidate both the index and any
    // memoized outcome: the same request maps differently afterwards.
    let mut o = Ontology::new();
    o.add(Concept::new("QualityCert").implemented_by("Type1"));
    let p = build_profile(&[(1, 0)]);
    let before = map_concept(&o, &p, "QualityCert", 0.25);
    assert!(before.is_mapped());
    let gen_before = o.generation();
    o.add(Concept::new("QualityCert")); // replace: bindings dropped
    assert!(o.generation() > gen_before, "add must bump the generation");
    let after = map_concept(&o, &p, "QualityCert", 0.25);
    assert_eq!(
        after,
        MappingOutcome::NoCredential {
            concept: "QualityCert".into(),
            resolved: "QualityCert".into(),
        },
        "stale memo entry served after mutation"
    );
}

#[test]
fn new_is_a_edge_remaps_fresh() {
    // `add_is_a` after an index build must rebuild the closure and make
    // memoized outcomes for affected concepts unreachable.
    let mut o = Ontology::new();
    o.add(Concept::new("BusinessProof"));
    o.add(Concept::new("BalanceSheet").implemented_by("Type2"));
    let p = build_profile(&[(2, 2)]);
    let before = map_concept(&o, &p, "BusinessProof", 0.25);
    assert!(!before.is_mapped());
    let gen_before = o.generation();
    assert!(o.add_is_a("BalanceSheet", "BusinessProof"));
    assert!(
        o.generation() > gen_before,
        "add_is_a must bump the generation"
    );
    let after = map_concept(&o, &p, "BusinessProof", 0.25);
    assert!(
        after.is_mapped(),
        "is_a inference not visible after edge insertion: {after:?}"
    );
    assert_eq!(map_concept_naive(&o, &p, "BusinessProof", 0.25), after);
}

#[test]
fn profile_mutation_remaps_fresh() {
    // Profile-side generation: adding a credential after a mapping must
    // not serve the stale `NoCredential` outcome.
    let mut o = Ontology::new();
    o.add(Concept::new("StorageSla").implemented_by("Type3"));
    let mut p = build_profile(&[]);
    assert!(!map_concept(&o, &p, "StorageSla", 0.25).is_mapped());
    let mut ca = CredentialAuthority::new("DiffCA");
    let keys = KeyPair::from_seed(b"differential");
    let cred = ca
        .issue(
            "Type3",
            "DiffParty",
            keys.public,
            vec![Attribute::new("Attr3", "v")],
            TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0)),
        )
        .expect("open schema");
    p.add(cred);
    assert!(map_concept(&o, &p, "StorageSla", 0.25).is_mapped());
}

#[test]
fn diverged_clones_never_alias_in_the_memo() {
    // A clone gets a fresh cache id; mutating it must not poison (or be
    // poisoned by) memo entries of the original.
    let mut o = Ontology::new();
    o.add(Concept::new("QualityCert").implemented_by("Type1"));
    let p = build_profile(&[(1, 0)]);
    let original = map_concept(&o, &p, "QualityCert", 0.25);
    let mut clone = o.clone();
    clone.add(Concept::new("QualityCert")); // diverge: bindings dropped
    assert!(!map_concept(&clone, &p, "QualityCert", 0.25).is_mapped());
    assert_eq!(map_concept(&o, &p, "QualityCert", 0.25), original);
}
