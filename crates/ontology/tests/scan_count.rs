//! Regression: the `UnknownConcept` path must run exactly ONE similarity
//! scan. The seed ran the full O(concepts) scan twice — once for the
//! argmax, once more to recover the best sub-threshold confidence for
//! diagnostics.
//!
//! This file deliberately holds a single `#[test]`: the assertion reads
//! process-global `ontology.*` counters, and a sibling test in the same
//! binary would race the delta.

use trust_vo_credential::XProfile;
use trust_vo_ontology::{map_concept, stats, Concept, MapMemo, MappingOutcome, Ontology};

#[test]
fn unknown_concept_runs_exactly_one_scan() {
    MapMemo::global().set_enabled(false); // a memo hit would mean zero scans
    let mut o = Ontology::new();
    o.add(Concept::new("QualityCertification").keyword("ISO 9000"));
    o.add(Concept::new("BalanceSheet"));
    let p = XProfile::new("ScanParty");
    o.is_subconcept("BalanceSheet", "BalanceSheet"); // force the index build

    let before = stats::snapshot();
    let out = map_concept(&o, &p, "QualityAssessment", 0.9);
    let after = stats::snapshot();

    assert!(
        matches!(out, MappingOutcome::UnknownConcept { best_confidence, .. } if best_confidence > 0.0),
        "expected a sub-threshold miss with diagnostics, got {out:?}"
    );
    assert_eq!(
        after.similarity_scans,
        before.similarity_scans + 1,
        "UnknownConcept must cost exactly one similarity scan"
    );
    assert_eq!(after.reference_scans, before.reference_scans);
    assert_eq!(after.direct_hits, before.direct_hits);
}
