//! The cross-negotiation mapping memo.
//!
//! Algorithm 1 resolves the *same* requested concept names over and over:
//! every admission in a VO formation maps the same policy concepts, and
//! the operation phase re-maps them on renewal. A [`MappingOutcome`] is a
//! pure function of `(ontology content, profile content, threshold,
//! requested name)` — so it can be memoized process-wide, exactly like
//! the PR 4 verified-credential cache memoizes signature checks.
//!
//! # Soundness
//!
//! The key embeds a *cache identity* and a *generation counter* for both
//! the ontology and the profile. Every [`crate::graph::Ontology`] /
//! `XProfile` instance gets a process-unique id at construction (clones
//! get fresh ids, so divergent clones can never alias), and every
//! mutation bumps the owning instance's generation — a stale entry is
//! therefore unreachable the moment its source mutates, and a hit can
//! never change a mapping *result*, only its cost. The threshold is part
//! of the key (as raw `f64` bits), so callers with different confidence
//! floors never share entries.
//!
//! The memo is sharded (16 ways) and capacity-bounded with per-shard
//! FIFO eviction; hit/miss/insertion/eviction counters are always-on
//! [`trust_vo_obs::Counter`]s. The process-wide instance
//! ([`MapMemo::global`]) honours the `TRUST_VO_MAP_CACHE` environment
//! variable (`0` / `off` / `false` / `no` disables it) so CI can prove
//! mapping results are bit-identical with the memo on and off.

use crate::mapping::MappingOutcome;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(feature = "journal")]
use std::sync::{Arc, OnceLock};
use std::sync::{LazyLock, Mutex};
#[cfg(feature = "journal")]
use trust_vo_journal::{Fact, Journal};
use trust_vo_obs::Counter;

/// Memo key: everything a [`MappingOutcome`] is a pure function of.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// Ontology `(cache_id, generation)`.
    ontology: (u64, u64),
    /// Profile `(cache_id, generation)`.
    profile: (u64, u64),
    /// Similarity threshold, as raw bits (distinct floors never alias).
    threshold_bits: u64,
    /// The requested concept name.
    concept: Box<str>,
}

impl MemoKey {
    /// Build a key from the two source identities plus the request.
    pub fn new(ontology: (u64, u64), profile: (u64, u64), threshold: f64, concept: &str) -> Self {
        MemoKey {
            ontology,
            profile,
            threshold_bits: threshold.to_bits(),
            concept: concept.into(),
        }
    }

    /// Shard selector.
    fn shard(&self, shards: usize) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut hasher);
        hasher.finish() as usize % shards
    }
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<MemoKey, MappingOutcome>,
    order: VecDeque<MemoKey>,
}

/// Point-in-time memo counter totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MapMemoStats {
    /// Mapping requests answered from the memo.
    pub hits: u64,
    /// Mapping requests that ran Algorithm 1.
    pub misses: u64,
    /// Outcomes inserted.
    pub insertions: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
}

impl MapMemoStats {
    /// Hit rate in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, capacity-bounded memo of mapping outcomes.
#[derive(Debug)]
pub struct MapMemo {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    enabled: AtomicBool,
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
    /// When armed, every genuinely-inserted similarity resolution
    /// (`alias → canonical`) spills a [`Fact::Mapping`] record — the
    /// durable form of the paper's §4.3 dictionary.
    #[cfg(feature = "journal")]
    journal: OnceLock<Arc<Journal>>,
}

/// Shards in the global memo.
const GLOBAL_SHARDS: usize = 16;
/// Per-shard capacity of the global memo: 16 × 1024 = 16384 outcomes —
/// far beyond any scenario's live concept vocabulary, small enough to
/// never matter even with per-clone key churn.
const GLOBAL_PER_SHARD: usize = 1024;

static GLOBAL: LazyLock<MapMemo> = LazyLock::new(|| {
    let memo = MapMemo::new(GLOBAL_SHARDS, GLOBAL_PER_SHARD);
    if let Ok(v) = std::env::var("TRUST_VO_MAP_CACHE") {
        if matches!(
            v.to_ascii_lowercase().as_str(),
            "0" | "off" | "false" | "no"
        ) {
            memo.set_enabled(false);
        }
    }
    memo
});

impl MapMemo {
    /// A new enabled memo with `shards` shards of `per_shard_capacity`
    /// entries each.
    pub fn new(shards: usize, per_shard_capacity: usize) -> Self {
        let shards = shards.max(1);
        MapMemo {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: per_shard_capacity.max(1),
            enabled: AtomicBool::new(true),
            hits: Counter::new(),
            misses: Counter::new(),
            insertions: Counter::new(),
            evictions: Counter::new(),
            #[cfg(feature = "journal")]
            journal: OnceLock::new(),
        }
    }

    /// Attach a journal: each subsequently-memoized concept resolution
    /// that went through similarity matching appends a [`Fact::Mapping`]
    /// (the alias the counterpart used and the local canonical concept it
    /// resolved to). First attachment wins. On the process-wide
    /// [`MapMemo::global`] this is a startup-time call — tests use private
    /// memos via `MappingEngine::with_memo` instead.
    #[cfg(feature = "journal")]
    pub fn attach_journal(&self, journal: Arc<Journal>) {
        let _ = self.journal.set(journal);
    }

    /// The process-wide memo every `map_concept` call goes through.
    /// Disabled at first use when `TRUST_VO_MAP_CACHE` is `0`/`off`/
    /// `false`/`no`.
    pub fn global() -> &'static MapMemo {
        &GLOBAL
    }

    /// Toggle the memo. Disabled, every lookup misses silently (no
    /// counter movement) and inserts are dropped — mapping results are
    /// identical either way, only the cost changes.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Is the memo currently enabled?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Look up a memoized outcome. Counts a hit or a miss when enabled.
    pub fn get(&self, key: &MemoKey) -> Option<MappingOutcome> {
        if !self.is_enabled() {
            return None;
        }
        let shard = &self.shards[key.shard(self.shards.len())];
        let hit = shard.lock().expect("map memo lock").map.get(key).cloned();
        if hit.is_some() {
            self.hits.inc();
        } else {
            self.misses.inc();
        }
        hit
    }

    /// Record a computed outcome.
    pub fn insert(&self, key: MemoKey, outcome: &MappingOutcome) {
        if !self.is_enabled() {
            return;
        }
        let shard = &self.shards[key.shard(self.shards.len())];
        let mut guard = shard.lock().expect("map memo lock");
        if guard.map.insert(key.clone(), outcome.clone()).is_some() {
            return; // racing mapper got there first
        }
        // Only genuine first inserts spill, and only resolutions that went
        // through similarity matching carry dictionary information (a
        // direct hit's alias *is* its canonical name).
        #[cfg(feature = "journal")]
        if let Some(journal) = self.journal.get() {
            if let MappingOutcome::Mapped { via: Some(m), .. } = outcome {
                journal.append(&Fact::Mapping {
                    alias: key.concept.to_string(),
                    canonical: m.target.clone(),
                });
            }
        }
        guard.order.push_back(key);
        if guard.order.len() > self.per_shard_capacity {
            if let Some(old) = guard.order.pop_front() {
                guard.map.remove(&old);
                self.evictions.inc();
            }
        }
        self.insertions.inc();
    }

    /// Number of memoized outcomes across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("map memo lock").map.len())
            .sum()
    }

    /// True when no outcomes are memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counter totals.
    pub fn stats(&self) -> MapMemoStats {
        MapMemoStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            evictions: self.evictions.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u64, concept: &str) -> MemoKey {
        MemoKey::new((tag, 0), (tag + 1, 0), 0.25, concept)
    }

    fn outcome(concept: &str) -> MappingOutcome {
        MappingOutcome::UnknownConcept {
            concept: concept.to_owned(),
            best_confidence: 0.125,
        }
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let memo = MapMemo::new(4, 8);
        let k = key(1, "gender");
        assert!(memo.get(&k).is_none());
        memo.insert(k.clone(), &outcome("gender"));
        assert_eq!(memo.get(&k), Some(outcome("gender")));
        let stats = memo.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn distinct_generations_are_distinct_entries() {
        let memo = MapMemo::new(4, 8);
        memo.insert(key(1, "gender"), &outcome("gender"));
        let bumped = MemoKey::new((1, 1), (2, 0), 0.25, "gender");
        assert!(memo.get(&bumped).is_none());
        let other_threshold = MemoKey::new((1, 0), (2, 0), 0.5, "gender");
        assert!(memo.get(&other_threshold).is_none());
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let memo = MapMemo::new(1, 3);
        for t in 1..=4u64 {
            memo.insert(key(t, "c"), &outcome("c"));
        }
        assert_eq!(memo.len(), 3);
        assert_eq!(memo.stats().evictions, 1);
        assert!(memo.get(&key(1, "c")).is_none(), "oldest entry evicted");
        assert!(memo.get(&key(4, "c")).is_some());
    }

    #[test]
    fn disabled_memo_is_inert() {
        let memo = MapMemo::new(2, 8);
        memo.set_enabled(false);
        let k = key(3, "x");
        memo.insert(k.clone(), &outcome("x"));
        assert!(memo.get(&k).is_none());
        assert_eq!(memo.stats(), MapMemoStats::default());
        assert!(memo.is_empty());
        memo.set_enabled(true);
        memo.insert(k.clone(), &outcome("x"));
        assert!(memo.get(&k).is_some());
    }
}
