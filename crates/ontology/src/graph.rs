//! The ontology graph: concepts plus the `is_a` hierarchy.
//!
//! "Within the ontology, concepts are related by different relationships,
//! and hierarchically organized according to the conventional is_a
//! relationship. As such, if concept Cᵢ is in a relation is_a with Cₖ, the
//! information conveyed by concept Cᵢ can be used to infer information
//! conveyed by concept Cₖ." (§4.3)

use crate::concept::Concept;
use crate::index::ConceptIndex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Process-unique cache identities (see [`Ontology::cache_id`]).
static NEXT_CACHE_ID: AtomicU64 = AtomicU64::new(1);

/// A party's local ontology: a set of named concepts and `is_a` edges.
///
/// Queries that scan or traverse — similarity matching, `is_subconcept`,
/// `credential_types_for` — run against a lazily-built
/// `ConceptIndex` (token interner, inverted token index, subsumption
/// closure bitsets). The index carries the generation it was built at and
/// is rebuilt on first use after any mutation, so `&self` queries always
/// see current data.
pub struct Ontology {
    concepts: BTreeMap<String, Concept>,
    /// `is_a` edges: child concept name → parent concept names.
    parents: BTreeMap<String, BTreeSet<String>>,
    /// Process-unique identity for memo keying; fresh per clone.
    cache_id: u64,
    /// Mutation counter; bumped by `add` / `add_is_a`.
    generation: u64,
    /// The index snapshot, if built; stale when its generation lags.
    index: RwLock<Option<Arc<ConceptIndex>>>,
}

impl Default for Ontology {
    fn default() -> Self {
        Ontology {
            concepts: BTreeMap::new(),
            parents: BTreeMap::new(),
            cache_id: NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed),
            generation: 0,
            index: RwLock::new(None),
        }
    }
}

impl Clone for Ontology {
    fn clone(&self) -> Self {
        Ontology {
            concepts: self.concepts.clone(),
            parents: self.parents.clone(),
            // A fresh id: clones that later diverge must never alias in
            // the mapping memo. The built index (if current) is shared —
            // it only depends on content.
            cache_id: NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed),
            generation: self.generation,
            index: RwLock::new(self.index.read().expect("ontology index lock").clone()),
        }
    }
}

impl std::fmt::Debug for Ontology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ontology")
            .field("concepts", &self.concepts)
            .field("parents", &self.parents)
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

impl Ontology {
    /// Create an empty ontology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) a concept. "Each party maintains a local ontology
    /// and adds more concepts to it as needed."
    pub fn add(&mut self, concept: Concept) {
        self.concepts.insert(concept.name.clone(), concept);
        self.invalidate();
    }

    /// Declare `child is_a parent`. Returns `false` (and does nothing) if
    /// the edge would create a cycle or either endpoint is unknown.
    pub fn add_is_a(&mut self, child: &str, parent: &str) -> bool {
        if !self.concepts.contains_key(child) || !self.concepts.contains_key(parent) {
            return false;
        }
        // Cycle check on the raw edge maps: going through the index here
        // would force a rebuild per inserted edge while an ontology is
        // still being populated.
        if child == parent || self.is_subconcept_scan(parent, child) {
            return false; // would create a cycle
        }
        self.parents
            .entry(child.to_owned())
            .or_default()
            .insert(parent.to_owned());
        self.invalidate();
        true
    }

    /// Bump the generation and drop the stale index snapshot. Memo
    /// entries keyed on the old `(cache_id, generation)` pair become
    /// unreachable at the same instant.
    fn invalidate(&mut self) {
        self.generation += 1;
        *self.index.get_mut().expect("ontology index lock") = None;
    }

    /// The process-unique identity of this instance (fresh per clone),
    /// used with [`Ontology::generation`] to key the mapping memo.
    pub fn cache_id(&self) -> u64 {
        self.cache_id
    }

    /// The mutation counter: bumped by every `add` / `add_is_a`.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The current index snapshot, building it if absent or stale.
    pub(crate) fn index(&self) -> Arc<ConceptIndex> {
        if let Some(index) = self.index.read().expect("ontology index lock").as_ref() {
            if index.built_generation() == self.generation {
                return index.clone();
            }
        }
        let mut guard = self.index.write().expect("ontology index lock");
        if let Some(index) = guard.as_ref() {
            if index.built_generation() == self.generation {
                return index.clone();
            }
        }
        let index = Arc::new(ConceptIndex::build(
            &self.concepts,
            &self.parents,
            self.generation,
        ));
        *guard = Some(index.clone());
        index
    }

    /// Look up a concept by name.
    pub fn get(&self, name: &str) -> Option<&Concept> {
        self.concepts.get(name)
    }

    /// Does the ontology contain the named concept?
    pub fn contains(&self, name: &str) -> bool {
        self.concepts.contains_key(name)
    }

    /// Iterate over all concepts.
    pub fn concepts(&self) -> impl Iterator<Item = &Concept> {
        self.concepts.values()
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// True when the ontology has no concepts.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Direct parents of `name` in the `is_a` hierarchy.
    pub fn direct_parents(&self, name: &str) -> impl Iterator<Item = &str> {
        self.parents
            .get(name)
            .into_iter()
            .flat_map(|set| set.iter().map(String::as_str))
    }

    /// Is `child` a (possibly transitive) subconcept of `ancestor`?
    /// Reflexive: every concept is a subconcept of itself.
    ///
    /// Answered from the precomputed subsumption closure: one bit test
    /// instead of a BFS per query.
    pub fn is_subconcept(&self, child: &str, ancestor: &str) -> bool {
        let index = self.index();
        match (index.concept_id(child), index.concept_id(ancestor)) {
            (Some(c), Some(a)) => index.is_subconcept(c, a),
            _ => false,
        }
    }

    /// BFS subsumption test on the raw edge maps — used by the
    /// `add_is_a` cycle check so that populating an ontology never
    /// triggers index rebuilds, and by the differential tests as the
    /// closure's oracle.
    pub(crate) fn is_subconcept_scan(&self, child: &str, ancestor: &str) -> bool {
        if child == ancestor {
            return self.concepts.contains_key(child);
        }
        let mut queue: VecDeque<&str> = VecDeque::new();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        queue.push_back(child);
        while let Some(current) = queue.pop_front() {
            for parent in self.direct_parents(current) {
                if parent == ancestor {
                    return true;
                }
                if seen.insert(parent) {
                    queue.push_back(parent);
                }
            }
        }
        false
    }

    /// All ancestors of `name` (excluding itself), nearest first.
    ///
    /// Stays a BFS on purpose: the nearest-first contract encodes BFS
    /// discovery order, which the closure's id-ordered bitsets cannot
    /// reproduce, and the walk is already output-sensitive
    /// (O(reachable), not O(concepts)). The closure still bounds it —
    /// every name returned is a set bit in the ancestor row.
    pub fn ancestors(&self, name: &str) -> Vec<&str> {
        let mut out = Vec::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        queue.push_back(name);
        while let Some(current) = queue.pop_front() {
            for parent in self.direct_parents(current) {
                if seen.insert(parent) {
                    out.push(parent);
                    queue.push_back(parent);
                }
            }
        }
        out
    }

    /// All concepts that are subconcepts of `name` (including itself, if
    /// present). Credentials bound to any of these satisfy a request for
    /// `name`, by the `is_a` inference rule.
    ///
    /// Enumerated from the closure's descendant bitset (name order, same
    /// as the seed's full filter scan) rather than one BFS per concept.
    pub fn subconcepts_of(&self, name: &str) -> Vec<&Concept> {
        let index = self.index();
        let Some(id) = index.concept_id(name) else {
            return Vec::new();
        };
        index
            .descendants_of(id)
            .map(|c| {
                self.concepts
                    .get(index.name(c))
                    .expect("index is in sync with the concept map")
            })
            .collect()
    }

    /// The credential types that can convey concept `name`, taking `is_a`
    /// inference into account.
    pub fn credential_types_for(&self, name: &str) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        for c in self.subconcepts_of(name) {
            out.extend(c.credential_types());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's driving-license example hierarchy plus bindings.
    fn licenses() -> Ontology {
        let mut o = Ontology::new();
        o.add(Concept::new("Civilian_DriverLicense").implemented_by("CivilianLicense"));
        o.add(Concept::new("Texas_DriverLicense").implemented_by("TexasLicense"));
        o.add(Concept::new("DriverLicense"));
        assert!(o.add_is_a("Texas_DriverLicense", "Civilian_DriverLicense"));
        assert!(o.add_is_a("Civilian_DriverLicense", "DriverLicense"));
        o
    }

    #[test]
    fn paper_is_a_example() {
        let o = licenses();
        // "Texas_Driver License is_a Civilian_Driver License"
        assert!(o.is_subconcept("Texas_DriverLicense", "Civilian_DriverLicense"));
        assert!(o.is_subconcept("Texas_DriverLicense", "DriverLicense")); // transitive
        assert!(!o.is_subconcept("Civilian_DriverLicense", "Texas_DriverLicense"));
    }

    #[test]
    fn reflexive_subconcept_only_for_existing() {
        let o = licenses();
        assert!(o.is_subconcept("DriverLicense", "DriverLicense"));
        assert!(!o.is_subconcept("Nope", "Nope"));
    }

    #[test]
    fn cycle_rejected() {
        let mut o = licenses();
        assert!(!o.add_is_a("DriverLicense", "Texas_DriverLicense"));
        assert!(!o.add_is_a("DriverLicense", "DriverLicense"));
    }

    #[test]
    fn unknown_endpoints_rejected() {
        let mut o = licenses();
        assert!(!o.add_is_a("Ghost", "DriverLicense"));
        assert!(!o.add_is_a("DriverLicense", "Ghost"));
    }

    #[test]
    fn ancestors_ordered_nearest_first() {
        let o = licenses();
        assert_eq!(
            o.ancestors("Texas_DriverLicense"),
            ["Civilian_DriverLicense", "DriverLicense"]
        );
        assert!(o.ancestors("DriverLicense").is_empty());
    }

    #[test]
    fn inference_expands_credential_types() {
        let o = licenses();
        // Requesting the generic concept admits the specific credentials.
        let types = o.credential_types_for("DriverLicense");
        assert!(types.contains("TexasLicense"));
        assert!(types.contains("CivilianLicense"));
        // Requesting the specific concept does NOT admit the generic.
        let types = o.credential_types_for("Texas_DriverLicense");
        assert_eq!(types.into_iter().collect::<Vec<_>>(), ["TexasLicense"]);
    }

    #[test]
    fn diamond_hierarchy_handled() {
        let mut o = Ontology::new();
        for n in ["a", "b", "c", "d"] {
            o.add(Concept::new(n));
        }
        assert!(o.add_is_a("a", "b"));
        assert!(o.add_is_a("a", "c"));
        assert!(o.add_is_a("b", "d"));
        assert!(o.add_is_a("c", "d"));
        assert!(o.is_subconcept("a", "d"));
        let ancestors = o.ancestors("a");
        assert_eq!(ancestors.len(), 3); // b, c, d — d only once
    }

    #[test]
    fn replace_concept_keeps_edges() {
        let mut o = licenses();
        o.add(Concept::new("Texas_DriverLicense").implemented_by("NewTexasLicense"));
        assert!(o.is_subconcept("Texas_DriverLicense", "DriverLicense"));
        assert!(o
            .credential_types_for("DriverLicense")
            .contains("NewTexasLicense"));
    }
}
