//! Ontology persistence as XML (the OWL/Protégé substitute).
//!
//! The prototype used "OWL to create a common ontology for the credential
//! and disclosure policies attributes" and "the Core Protégé APIs which
//! allow one to store ontologies in different formats such as XML Schema"
//! (§6.3, Fig. 8). This module provides the equivalent round-trippable XML
//! form:
//!
//! ```xml
//! <ontology>
//!   <concept name="gender">
//!     <keyword>sex</keyword>
//!     <binding credType="Passport" attribute="gender"/>
//!     <binding credType="DrivingLicense" attribute="sex"/>
//!   </concept>
//!   <isA child="Texas_DriverLicense" parent="Civilian_DriverLicense"/>
//! </ontology>
//! ```

use crate::concept::{Binding, Concept};
use crate::graph::Ontology;
use trust_vo_xmldoc::{Element, Node};

/// Error while reading an ontology document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OntologyParseError(pub String);

impl std::fmt::Display for OntologyParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed ontology document: {}", self.0)
    }
}

impl std::error::Error for OntologyParseError {}

/// Serialize an ontology (concepts, bindings, keywords, `is_a` edges).
pub fn ontology_to_xml(ontology: &Ontology) -> Element {
    let mut root = Element::new("ontology");
    for concept in ontology.concepts() {
        let mut el = Element::new("concept").attr("name", &concept.name);
        for kw in &concept.keywords {
            el.children
                .push(Node::Element(Element::new("keyword").text(kw)));
        }
        for b in &concept.bindings {
            let mut binding = Element::new("binding").attr("credType", &b.cred_type);
            if let Some(attr) = &b.attribute {
                binding.set_attr("attribute", attr);
            }
            el.children.push(Node::Element(binding));
        }
        root.children.push(Node::Element(el));
    }
    for concept in ontology.concepts() {
        for parent in ontology.direct_parents(&concept.name) {
            root.children.push(Node::Element(
                Element::new("isA")
                    .attr("child", &concept.name)
                    .attr("parent", parent),
            ));
        }
    }
    root
}

/// Deserialize an ontology.
pub fn ontology_from_xml(root: &Element) -> Result<Ontology, OntologyParseError> {
    if root.name != "ontology" {
        return Err(OntologyParseError(format!(
            "expected <ontology>, found <{}>",
            root.name
        )));
    }
    let mut ontology = Ontology::new();
    for el in root.all("concept") {
        let name = el
            .get_attr("name")
            .ok_or_else(|| OntologyParseError("<concept> missing name".into()))?;
        let mut concept = Concept::new(name);
        for kw in el.all("keyword") {
            concept.keywords.push(kw.text_content());
        }
        for b in el.all("binding") {
            let cred_type = b
                .get_attr("credType")
                .ok_or_else(|| OntologyParseError("<binding> missing credType".into()))?;
            concept.bindings.push(match b.get_attr("attribute") {
                Some(attr) => Binding::attribute(cred_type, attr),
                None => Binding::credential(cred_type),
            });
        }
        ontology.add(concept);
    }
    for el in root.all("isA") {
        let child = el
            .get_attr("child")
            .ok_or_else(|| OntologyParseError("<isA> missing child".into()))?;
        let parent = el
            .get_attr("parent")
            .ok_or_else(|| OntologyParseError("<isA> missing parent".into()))?;
        if !ontology.add_is_a(child, parent) {
            return Err(OntologyParseError(format!(
                "invalid is_a edge {child} -> {parent} (unknown concept or cycle)"
            )));
        }
    }
    Ok(ontology)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ontology {
        let mut o = Ontology::new();
        o.add(
            Concept::new("gender")
                .keyword("sex")
                .implemented_by("Passport.gender")
                .implemented_by("DrivingLicense.sex"),
        );
        o.add(Concept::new("Civilian_DriverLicense").implemented_by("CivilianLicense"));
        o.add(Concept::new("Texas_DriverLicense").implemented_by("TexasLicense"));
        assert!(o.add_is_a("Texas_DriverLicense", "Civilian_DriverLicense"));
        o
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let original = sample();
        let text = trust_vo_xmldoc::to_string(&ontology_to_xml(&original));
        let back = ontology_from_xml(&trust_vo_xmldoc::parse(&text).unwrap()).unwrap();
        assert_eq!(back.len(), original.len());
        let gender = back.get("gender").unwrap();
        assert_eq!(gender.keywords, ["sex"]);
        assert_eq!(gender.bindings.len(), 2);
        assert_eq!(gender.bindings[0], Binding::attribute("Passport", "gender"));
        assert!(back.is_subconcept("Texas_DriverLicense", "Civilian_DriverLicense"));
    }

    #[test]
    fn roundtripped_ontology_behaves_identically() {
        let original = sample();
        let back = ontology_from_xml(&ontology_to_xml(&original)).unwrap();
        // Same inference, same similarity behaviour.
        assert_eq!(
            original.credential_types_for("Civilian_DriverLicense"),
            back.credential_types_for("Civilian_DriverLicense")
        );
        let m1 = crate::matcher::match_concept("drivers_license_texas", &original, 0.1);
        let m2 = crate::matcher::match_concept("drivers_license_texas", &back, 0.1);
        assert_eq!(m1.map(|m| m.target), m2.map(|m| m.target));
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in [
            "<notOntology/>",
            r#"<ontology><concept/></ontology>"#,
            r#"<ontology><concept name="a"><binding/></concept></ontology>"#,
            r#"<ontology><isA child="x" parent="y"/></ontology>"#,
        ] {
            let doc = trust_vo_xmldoc::parse(text).unwrap();
            assert!(ontology_from_xml(&doc).is_err(), "{text}");
        }
    }

    #[test]
    fn cyclic_is_a_rejected_at_load() {
        let text = r#"<ontology>
            <concept name="a"/><concept name="b"/>
            <isA child="a" parent="b"/>
            <isA child="b" parent="a"/>
        </ontology>"#;
        let doc = trust_vo_xmldoc::parse(text).unwrap();
        let err = ontology_from_xml(&doc).unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn empty_ontology_roundtrips() {
        let back = ontology_from_xml(&ontology_to_xml(&Ontology::new())).unwrap();
        assert!(back.is_empty());
    }
}
