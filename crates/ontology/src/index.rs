//! The indexed feature representation behind Algorithm 1.
//!
//! GLUE-style instance matchers and Falcon-AO both precompute indexed
//! feature representations before scoring; this module does the same for
//! the Jaccard matcher so that `match_concept` scales to 10k-concept
//! ontologies:
//!
//! * a **token interner** — every distinct feature token gets a dense
//!   `u32` id, and each concept's feature-token set is cached once as a
//!   sorted interned-id slice instead of being re-tokenized into a fresh
//!   `BTreeSet<String>` per comparison;
//! * an **inverted token → concept index** (postings lists), so a query
//!   only scores concepts sharing at least one token. This is
//!   exact-argmax-preserving: zero-overlap concepts score exactly 0, the
//!   matcher already rejects confidence ≤ 0, and ties at equal positive
//!   score break toward the lexicographically smaller name — which is
//!   ascending concept-id order here, because ids are assigned in the
//!   ontology's name-sorted iteration order;
//! * a precomputed **subsumption closure** — one ancestor bitset and one
//!   descendant bitset per concept, built in one Kahn pass over the
//!   `is_a` DAG — backing `is_subconcept`, `subconcepts_of`, and
//!   `credential_types_for` with O(1) bit tests instead of a BFS per
//!   query.
//!
//! The index is immutable once built. [`crate::graph::Ontology`] holds it
//! behind a generation counter and rebuilds lazily after any `add` /
//! `add_is_a` mutation, so handing out `Arc<ConceptIndex>` snapshots is
//! always safe.

use crate::concept::Concept;
use crate::similarity::jaccard_counts;
use crate::stats;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// The immutable index over one generation of an ontology's concepts.
#[derive(Debug)]
pub(crate) struct ConceptIndex {
    built_generation: u64,
    /// Concept names in `BTreeMap` (lexicographic) order; the position is
    /// the concept id, so ascending id order is ascending name order.
    names: Vec<String>,
    /// Interner: feature token → dense token id.
    token_ids: HashMap<String, u32>,
    /// Per-concept cached feature-token set, as a sorted interned-id slice.
    concept_tokens: Vec<Box<[u32]>>,
    /// Inverted index: token id → ascending concept ids containing it.
    postings: Vec<Vec<u32>>,
    /// Concepts whose feature-token set is empty (they score 1.0 against
    /// an empty query and 0.0 against everything else), ascending.
    empty_concepts: Vec<u32>,
    /// Bitset row width in 64-bit words.
    words: usize,
    /// `ancestors[c]`: proper ancestors of concept `c` (self excluded).
    ancestors: Vec<u64>,
    /// `descendants[c]`: subconcepts of `c` (self included).
    descendants: Vec<u64>,
}

impl ConceptIndex {
    /// Build the full index for one generation of the ontology maps.
    pub(crate) fn build(
        concepts: &BTreeMap<String, Concept>,
        parents: &BTreeMap<String, BTreeSet<String>>,
        generation: u64,
    ) -> Self {
        stats::INDEX_BUILDS.inc();
        let n = concepts.len();
        let names: Vec<String> = concepts.keys().cloned().collect();
        let mut token_ids: HashMap<String, u32> = HashMap::new();
        let mut concept_tokens: Vec<Box<[u32]>> = Vec::with_capacity(n);
        let mut postings: Vec<Vec<u32>> = Vec::new();
        let mut empty_concepts = Vec::new();
        for (cid, concept) in concepts.values().enumerate() {
            let mut ids: Vec<u32> = concept
                .feature_tokens()
                .into_iter()
                .map(|tok| {
                    let next = token_ids.len() as u32;
                    let tid = *token_ids.entry(tok).or_insert(next);
                    if tid as usize == postings.len() {
                        postings.push(Vec::new());
                    }
                    postings[tid as usize].push(cid as u32);
                    tid
                })
                .collect();
            ids.sort_unstable();
            if ids.is_empty() {
                empty_concepts.push(cid as u32);
            }
            concept_tokens.push(ids.into_boxed_slice());
        }

        // Subsumption closure over the is_a DAG (cycles are rejected at
        // edge insertion, so the Kahn pass always drains).
        let words = n.div_ceil(64);
        let mut ancestors = vec![0u64; n * words];
        let id_of = |name: &str| {
            names
                .binary_search_by(|probe| probe.as_str().cmp(name))
                .ok()
        };
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut pending: Vec<u32> = vec![0; n];
        for (child, parent_set) in parents {
            let Some(c) = id_of(child) else { continue };
            for parent in parent_set {
                let Some(p) = id_of(parent) else { continue };
                children[p].push(c as u32);
                pending[c] += 1;
            }
        }
        let mut queue: VecDeque<u32> = (0..n as u32)
            .filter(|&c| pending[c as usize] == 0)
            .collect();
        let mut row_scratch = vec![0u64; words];
        let mut drained = 0usize;
        while let Some(p) = queue.pop_front() {
            drained += 1;
            let p = p as usize;
            row_scratch.copy_from_slice(&ancestors[p * words..(p + 1) * words]);
            for &child in &children[p] {
                let child = child as usize;
                let row = &mut ancestors[child * words..(child + 1) * words];
                for (dst, src) in row.iter_mut().zip(&row_scratch) {
                    *dst |= src;
                }
                row[p / 64] |= 1u64 << (p % 64);
                pending[child] -= 1;
                if pending[child] == 0 {
                    queue.push_back(child as u32);
                }
            }
        }
        debug_assert_eq!(drained, n, "is_a graph contained a cycle");

        // Transpose into descendant sets, adding the reflexive bit.
        let mut descendants = vec![0u64; n * words];
        for c in 0..n {
            descendants[c * words + c / 64] |= 1u64 << (c % 64);
            let row = &ancestors[c * words..(c + 1) * words];
            for (w, &bits) in row.iter().enumerate() {
                let mut bits = bits;
                while bits != 0 {
                    let a = w * 64 + bits.trailing_zeros() as usize;
                    descendants[a * words + c / 64] |= 1u64 << (c % 64);
                    bits &= bits - 1;
                }
            }
        }

        ConceptIndex {
            built_generation: generation,
            names,
            token_ids,
            concept_tokens,
            postings,
            empty_concepts,
            words,
            ancestors,
            descendants,
        }
    }

    /// The ontology generation this index was built for.
    pub(crate) fn built_generation(&self) -> u64 {
        self.built_generation
    }

    /// Concept id for `name`, if present.
    pub(crate) fn concept_id(&self, name: &str) -> Option<usize> {
        self.names
            .binary_search_by(|probe| probe.as_str().cmp(name))
            .ok()
    }

    /// Concept name for `id`.
    pub(crate) fn name(&self, id: usize) -> &str {
        &self.names[id]
    }

    /// Is `child` a (possibly transitive, reflexive) subconcept of
    /// `ancestor`? Ids must come from this index.
    pub(crate) fn is_subconcept(&self, child: usize, ancestor: usize) -> bool {
        child == ancestor
            || self.ancestors[child * self.words + ancestor / 64] >> (ancestor % 64) & 1 == 1
    }

    /// All subconcepts of `id` (including itself), ascending — i.e. in
    /// the ontology's name order.
    pub(crate) fn descendants_of(&self, id: usize) -> impl Iterator<Item = usize> + '_ {
        let row = &self.descendants[id * self.words..(id + 1) * self.words];
        row.iter().enumerate().flat_map(|(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let c = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(c)
            })
        })
    }

    /// The exact Jaccard argmax of `query` over every indexed concept,
    /// scoring only concepts that share at least one token.
    ///
    /// Returns `None` only when the index is empty; otherwise the winning
    /// concept id plus its score, bit-identical to the naive scan's
    /// argmax (same integer counts, same `f64` division, same
    /// smallest-name tie-break).
    pub(crate) fn best_match(&self, query: &BTreeSet<String>) -> Option<(usize, f64)> {
        let n = self.names.len();
        if n == 0 {
            return None;
        }
        let a_len = query.len();
        if a_len == 0 {
            // Empty query: empty-token concepts score 1.0, all others 0.0.
            // The naive scan keeps the smallest-named 1.0 if any exists,
            // else the smallest-named concept at 0.0.
            if let Some(&id) = self.empty_concepts.first() {
                return Some((id as usize, 1.0));
            }
            return Some((0, 0.0));
        }
        let mut counts = vec![0u32; n];
        let mut touched: Vec<u32> = Vec::new();
        for token in query {
            if let Some(&tid) = self.token_ids.get(token) {
                for &cid in &self.postings[tid as usize] {
                    if counts[cid as usize] == 0 {
                        touched.push(cid);
                    }
                    counts[cid as usize] += 1;
                }
            }
        }
        stats::INDEX_CANDIDATES.add(touched.len() as u64);
        stats::INDEX_PRUNED.add((n - touched.len()) as u64);
        if touched.is_empty() {
            // Zero overlap everywhere: every score is 0.0 and the naive
            // argmax keeps the lexicographically smallest name.
            return Some((0, 0.0));
        }
        touched.sort_unstable();
        let mut best_id = 0usize;
        let mut best = -1.0f64;
        for &cid in &touched {
            let cid = cid as usize;
            let overlap = counts[cid] as usize;
            let score = jaccard_counts(overlap, a_len, self.concept_tokens[cid].len());
            // Strictly-greater on ascending ids == smallest-name tie-break.
            if score > best {
                best = score;
                best_id = cid;
            }
        }
        Some((best_id, best))
    }
}
