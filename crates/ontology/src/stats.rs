//! Process-wide `ontology.*` operation counters.
//!
//! Mirrors `trust_vo_crypto::stats`: the counters are
//! [`trust_vo_obs::Counter`]s held in statics, because the mapping layer
//! has no per-call context to thread a registry through and the benches
//! want one authoritative count of how much Algorithm 1 work a whole run
//! performed. Bench binaries export a [`snapshot`] into their collector
//! as `ontology.*` counters at dump time.

use std::sync::LazyLock;
use trust_vo_obs::Counter;

/// Direct (`Cᵢ ∈ CSet`) concept lookups that hit.
pub(crate) static DIRECT_HITS: LazyLock<Counter> = LazyLock::new(Counter::new);
/// Indexed similarity scans (one per `best_local_match` call — the
/// `UnknownConcept` path must move this by exactly one).
pub(crate) static SIMILARITY_SCANS: LazyLock<Counter> = LazyLock::new(Counter::new);
/// Naive reference scans (`match_concept_reference`), kept for
/// differential testing.
pub(crate) static REFERENCE_SCANS: LazyLock<Counter> = LazyLock::new(Counter::new);
/// Concepts actually scored by the inverted index (shared ≥ 1 token).
pub(crate) static INDEX_CANDIDATES: LazyLock<Counter> = LazyLock::new(Counter::new);
/// Concepts the inverted index pruned without scoring.
pub(crate) static INDEX_PRUNED: LazyLock<Counter> = LazyLock::new(Counter::new);
/// Index (re)builds — interner, postings, and subsumption closure.
pub(crate) static INDEX_BUILDS: LazyLock<Counter> = LazyLock::new(Counter::new);

/// A point-in-time copy of every `ontology.*` counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OntologyStats {
    /// Direct concept lookups that hit.
    pub direct_hits: u64,
    /// Indexed similarity scans.
    pub similarity_scans: u64,
    /// Naive reference scans.
    pub reference_scans: u64,
    /// Concepts scored by the inverted index.
    pub index_candidates: u64,
    /// Concepts pruned by the inverted index.
    pub index_pruned: u64,
    /// Index (re)builds.
    pub index_builds: u64,
}

/// Read the current totals.
pub fn snapshot() -> OntologyStats {
    OntologyStats {
        direct_hits: DIRECT_HITS.get(),
        similarity_scans: SIMILARITY_SCANS.get(),
        reference_scans: REFERENCE_SCANS.get(),
        index_candidates: INDEX_CANDIDATES.get(),
        index_pruned: INDEX_PRUNED.get(),
        index_builds: INDEX_BUILDS.get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let before = snapshot();
        DIRECT_HITS.inc();
        INDEX_CANDIDATES.add(3);
        let after = snapshot();
        assert!(after.direct_hits > before.direct_hits);
        assert!(after.index_candidates >= before.index_candidates + 3);
    }
}
