//! Dictionaries: lightweight name disambiguation (paper §4.3).
//!
//! "An interesting approach to address such issues is to employ ontologies
//! and/or dictionaries when conducting trust negotiations. … Dictionaries
//! have a more limited scope, but they are similar to ontologies, in that
//! they provide a way to disambiguate similar names and assign a clear
//! semantics to these names."
//!
//! A [`Dictionary`] maps aliases (synonyms, local naming-schema variants)
//! onto canonical concept names. It is consulted *before* the Jaccard
//! similarity fallback: an exact alias hit is cheaper and more precise
//! than fuzzy matching, and lets parties "employ local naming schemas,
//! without worrying about mapping issues".

use crate::graph::Ontology;
use crate::mapping::{map_concept, MappingOutcome};
use std::collections::BTreeMap;
use trust_vo_credential::XProfile;

/// A synonym table: alias → canonical concept name.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    aliases: BTreeMap<String, String>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an alias for a canonical name. Lookup is case- and
    /// separator-insensitive (`Balance_Sheet`, `balance-sheet`, and
    /// `BalanceSheet` normalize identically).
    pub fn alias(&mut self, alias: &str, canonical: impl Into<String>) {
        self.aliases.insert(normalize(alias), canonical.into());
    }

    /// Resolve an alias to its canonical name, if registered.
    pub fn resolve(&self, name: &str) -> Option<&str> {
        self.aliases.get(&normalize(name)).map(String::as_str)
    }

    /// Number of registered aliases.
    pub fn len(&self) -> usize {
        self.aliases.len()
    }

    /// True when no aliases are registered.
    pub fn is_empty(&self) -> bool {
        self.aliases.is_empty()
    }
}

/// Case- and separator-insensitive normal form.
fn normalize(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(char::to_lowercase)
        .collect()
}

/// Rebuild a dictionary from a journal's replayed [`Mapping`] facts: every
/// similarity resolution the memo spilled (see `MapMemo::attach_journal`)
/// becomes an alias, so a restarted party answers the same foreign names
/// by exact lookup instead of re-running the similarity scan. Non-mapping
/// facts (store puts/deletes) are skipped.
///
/// [`Mapping`]: trust_vo_journal::Fact::Mapping
#[cfg(feature = "journal")]
pub fn dictionary_from_journal(journal: &trust_vo_journal::Journal) -> Dictionary {
    let mut dictionary = Dictionary::new();
    for fact in journal.replay().facts {
        if let trust_vo_journal::Fact::Mapping { alias, canonical } = fact {
            dictionary.alias(&alias, canonical);
        }
    }
    dictionary
}

/// Algorithm 1 with a dictionary front-end: try the dictionary first; on a
/// hit, map the canonical name; otherwise fall back to plain
/// [`map_concept`] (direct lookup, then similarity).
pub fn map_concept_with_dictionary(
    ontology: &Ontology,
    dictionary: &Dictionary,
    profile: &XProfile,
    concept: &str,
    threshold: f64,
) -> MappingOutcome {
    if let Some(canonical) = dictionary.resolve(concept) {
        let outcome = map_concept(ontology, profile, canonical, threshold);
        // Report the original request name, not the canonical one.
        return match outcome {
            MappingOutcome::Mapped {
                via,
                credential,
                sensitivity,
                ..
            } => MappingOutcome::Mapped {
                concept: concept.to_owned(),
                via,
                credential,
                sensitivity,
            },
            MappingOutcome::NoCredential { resolved, .. } => MappingOutcome::NoCredential {
                concept: concept.to_owned(),
                resolved,
            },
            MappingOutcome::UnknownConcept {
                best_confidence, ..
            } => MappingOutcome::UnknownConcept {
                concept: concept.to_owned(),
                best_confidence,
            },
        };
    }
    map_concept(ontology, profile, concept, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::Concept;
    use trust_vo_credential::{Attribute, CredentialAuthority, TimeRange, Timestamp};
    use trust_vo_crypto::KeyPair;

    fn setup() -> (Ontology, Dictionary, XProfile) {
        let mut o = Ontology::new();
        o.add(Concept::new("BalanceSheet").implemented_by("CertificationAuthorityCompany"));
        let mut d = Dictionary::new();
        d.alias("Bilancio", "BalanceSheet");
        d.alias("financial_statement", "BalanceSheet");
        let mut ca = CredentialAuthority::new("BBB");
        let keys = KeyPair::from_seed(b"holder");
        let mut p = XProfile::new("holder");
        p.add(
            ca.issue(
                "CertificationAuthorityCompany",
                "holder",
                keys.public,
                vec![Attribute::new("Issuer", "BBB")],
                TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0)),
            )
            .unwrap(),
        );
        (o, d, p)
    }

    #[test]
    fn alias_resolution_is_separator_insensitive() {
        let (_, d, _) = setup();
        assert_eq!(d.resolve("Bilancio"), Some("BalanceSheet"));
        assert_eq!(d.resolve("bilancio"), Some("BalanceSheet"));
        assert_eq!(d.resolve("Financial-Statement"), Some("BalanceSheet"));
        assert_eq!(d.resolve("FINANCIAL_STATEMENT"), Some("BalanceSheet"));
        assert_eq!(d.resolve("Unknown"), None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn dictionary_hit_maps_to_credential() {
        let (o, d, p) = setup();
        // "Bilancio" shares zero tokens with "BalanceSheet" — pure
        // similarity matching could never resolve it; the dictionary does.
        let out = map_concept_with_dictionary(&o, &d, &p, "Bilancio", 0.25);
        match out {
            MappingOutcome::Mapped {
                concept,
                credential,
                ..
            } => {
                assert_eq!(concept, "Bilancio");
                assert!(p.get(&credential).is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Without the dictionary, the same request is unknown.
        let out = map_concept(&o, &p, "Bilancio", 0.25);
        assert!(matches!(out, MappingOutcome::UnknownConcept { .. }));
    }

    #[test]
    fn fallback_to_plain_mapping_when_no_alias() {
        let (o, d, p) = setup();
        let out = map_concept_with_dictionary(&o, &d, &p, "BalanceSheet", 0.25);
        assert!(out.is_mapped());
    }

    /// A similarity resolution journaled through a private memo is
    /// recoverable as a dictionary entry: the restarted party resolves the
    /// foreign name by exact lookup, matching the original mapping.
    #[cfg(feature = "journal")]
    #[test]
    fn journaled_resolutions_rebuild_the_dictionary() {
        use crate::concept::Concept;
        use crate::mapping::MappingEngine;
        use crate::memo::MapMemo;
        use std::sync::Arc;
        use trust_vo_journal::Journal;

        let mut o = Ontology::new();
        o.add(
            Concept::new("QualityCertification")
                .keyword("ISO 9000")
                .implemented_by("ISO9000Certified"),
        );
        let mut ca = CredentialAuthority::new("INFN");
        let keys = KeyPair::from_seed(b"holder");
        let mut p = XProfile::new("holder");
        p.add(
            ca.issue(
                "ISO9000Certified",
                "holder",
                keys.public,
                vec![Attribute::new("QualityRegulation", "UNI EN ISO 9000")],
                TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0)),
            )
            .unwrap(),
        );

        let journal = Arc::new(Journal::in_memory());
        let memo = MapMemo::new(4, 64);
        memo.attach_journal(journal.clone());
        let engine = MappingEngine::new(&o, &p, 0.3).with_memo(&memo);

        // Foreign naming schema resolves via similarity — and spills.
        let out = engine.map("Quality_Certification_ISO9000");
        assert!(out.is_mapped());
        // A direct hit spills nothing (its alias is its canonical name),
        // and a repeat request hits the memo without re-journaling.
        assert!(engine.map("QualityCertification").is_mapped());
        engine.map("Quality_Certification_ISO9000");
        assert_eq!(journal.stats().appends, 1);

        // "Restart": the dictionary recovered from the journal answers the
        // foreign name by exact lookup.
        let recovered = dictionary_from_journal(&journal);
        assert_eq!(
            recovered.resolve("Quality_Certification_ISO9000"),
            Some("QualityCertification")
        );
        let out =
            map_concept_with_dictionary(&o, &recovered, &p, "Quality_Certification_ISO9000", 0.3);
        assert!(out.is_mapped());
    }

    #[test]
    fn alias_to_unknown_concept_reports_unknown() {
        let (o, mut d, p) = setup();
        d.alias("Ghost", "NonexistentConcept");
        let out = map_concept_with_dictionary(&o, &d, &p, "Ghost", 0.9);
        match out {
            MappingOutcome::UnknownConcept { concept, .. } => assert_eq!(concept, "Ghost"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
