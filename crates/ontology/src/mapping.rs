//! Algorithm 1: mapping policy concepts onto local credentials.
//!
//! "Given a certain policy, expressed in terms of concepts and related
//! conditions over them, the algorithm first searches the required concept
//! in the local ontology. If the concept does not belong to the ontology, a
//! similar concept is determined … by using the similarity matching
//! algorithm. Once the concept of interest is identified, the algorithm
//! determines the corresponding credential to be sent to the counterpart.
//! In case more than one credential is available … the selection occurs
//! based on the credentials' ownership … and its sensitivity." (§4.3.1)
//!
//! The sensitivity selection is the paper's `CredCluster` cascade: probe
//! the **low** cluster, then **medium**, then **high**, returning the first
//! held credential found.

use crate::graph::Ontology;
use crate::matcher::{best_local_match, ConceptMatch};
use crate::memo::{MapMemo, MemoKey};
use crate::stats;
use trust_vo_credential::{CredentialId, Sensitivity, XProfile};

/// The result of mapping one requested concept.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingOutcome {
    /// A credential was found for the concept.
    Mapped {
        /// The concept as requested by the counterpart.
        concept: String,
        /// The similarity match used, if the concept was not local
        /// (`None` when the concept was found directly).
        via: Option<ConceptMatch>,
        /// The selected credential.
        credential: CredentialId,
        /// Its sensitivity label (the cluster it came from).
        sensitivity: Sensitivity,
    },
    /// The concept resolved to a local concept, but the party holds no
    /// credential implementing it.
    NoCredential {
        /// The concept as requested.
        concept: String,
        /// The local concept it resolved to.
        resolved: String,
    },
    /// No local concept reached the similarity threshold.
    UnknownConcept {
        /// The concept as requested.
        concept: String,
        /// The best (sub-threshold) confidence observed, for diagnostics.
        best_confidence: f64,
    },
}

impl MappingOutcome {
    /// The selected credential id, if mapping succeeded.
    pub fn credential(&self) -> Option<&CredentialId> {
        match self {
            MappingOutcome::Mapped { credential, .. } => Some(credential),
            _ => None,
        }
    }

    /// Did the mapping succeed?
    pub fn is_mapped(&self) -> bool {
        matches!(self, MappingOutcome::Mapped { .. })
    }
}

/// The indexed Algorithm 1 engine: one ontology + one profile + one
/// confidence floor, mapping requested concepts onto credentials.
///
/// Every [`MappingEngine::map`] call first consults the process-wide
/// [`MapMemo`] (keyed on the ontology's and profile's
/// `(cache_id, generation)` identities plus the threshold and the
/// requested name), then runs Algorithm 1 against the ontology's
/// `ConceptIndex`: direct lookup, single-scan indexed
/// similarity fallback, closure-backed `is_a` inference, and the
/// `CredCluster` low→high sensitivity probe.
#[derive(Debug, Clone, Copy)]
pub struct MappingEngine<'a> {
    ontology: &'a Ontology,
    profile: &'a XProfile,
    threshold: f64,
    memo: Option<&'a MapMemo>,
}

impl<'a> MappingEngine<'a> {
    /// An engine over one ontology/profile pair with a similarity floor.
    pub fn new(ontology: &'a Ontology, profile: &'a XProfile, threshold: f64) -> Self {
        MappingEngine {
            ontology,
            profile,
            threshold,
            memo: None,
        }
    }

    /// Memoize through `memo` instead of the process-wide
    /// [`MapMemo::global`]. A private memo isolates journal attachment
    /// (the global's first-wins hook is process lifetime) — recovery
    /// tooling and tests use this to keep their fact streams separate.
    pub fn with_memo(mut self, memo: &'a MapMemo) -> Self {
        self.memo = Some(memo);
        self
    }

    /// Map one concept (Algorithm 1's inner loop body), memoized.
    pub fn map(&self, concept: &str) -> MappingOutcome {
        let memo = match self.memo {
            Some(memo) => memo,
            None => MapMemo::global(),
        };
        let key = MemoKey::new(
            (self.ontology.cache_id(), self.ontology.generation()),
            (self.profile.cache_id(), self.profile.generation()),
            self.threshold,
            concept,
        );
        if let Some(hit) = memo.get(&key) {
            return hit;
        }
        let outcome = self.map_uncached(concept);
        memo.insert(key, &outcome);
        outcome
    }

    /// Algorithm 1 proper: map every concept of a policy.
    pub fn map_all(&self, concepts: &[String]) -> Vec<MappingOutcome> {
        concepts.iter().map(|c| self.map(c)).collect()
    }

    fn map_uncached(&self, concept: &str) -> MappingOutcome {
        // Line 3: `if Cᵢ ∈ CSet` — direct lookup first.
        let (resolved, via) = if self.ontology.contains(concept) {
            stats::DIRECT_HITS.inc();
            (concept.to_owned(), None)
        } else {
            // Lines 20–29: similarity fallback, one indexed scan. The
            // best sub-threshold confidence for the `UnknownConcept`
            // diagnostics comes from the same pass — the seed ran the
            // whole O(concepts) scan a second time to recover it.
            match best_local_match(concept, self.ontology) {
                Some(m) if m.confidence >= self.threshold && m.confidence > 0.0 => {
                    (m.target.clone(), Some(m))
                }
                best => {
                    return MappingOutcome::UnknownConcept {
                        concept: concept.to_owned(),
                        best_confidence: best.map(|m| m.confidence).unwrap_or(0.0),
                    }
                }
            }
        };
        // Lines 4–18: collect the credentials associated with the concept
        // (is_a inference included) and probe sensitivity clusters
        // low→high.
        let types = self.ontology.credential_types_for(&resolved);
        let candidates: Vec<CredentialId> = self
            .profile
            .credentials()
            .iter()
            .filter(|c| types.contains(c.cred_type()))
            .map(|c| c.id().clone())
            .collect();
        for level in Sensitivity::ALL {
            if let Some(cred) = self.profile.cred_cluster(&candidates, level).next() {
                return MappingOutcome::Mapped {
                    concept: concept.to_owned(),
                    via,
                    credential: cred.id().clone(),
                    sensitivity: level,
                };
            }
        }
        MappingOutcome::NoCredential {
            concept: concept.to_owned(),
            resolved,
        }
    }
}

/// Map one concept (Algorithm 1's inner loop body).
pub fn map_concept(
    ontology: &Ontology,
    profile: &XProfile,
    concept: &str,
    threshold: f64,
) -> MappingOutcome {
    MappingEngine::new(ontology, profile, threshold).map(concept)
}

/// Algorithm 1 proper: map every concept of a policy.
pub fn map_policy_concepts(
    ontology: &Ontology,
    profile: &XProfile,
    concepts: &[String],
    threshold: f64,
) -> Vec<MappingOutcome> {
    MappingEngine::new(ontology, profile, threshold).map_all(concepts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::Concept;
    use trust_vo_credential::{Attribute, CredentialAuthority, TimeRange, Timestamp};
    use trust_vo_crypto::KeyPair;

    fn window() -> TimeRange {
        TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0))
    }

    fn setup() -> (Ontology, XProfile, Vec<CredentialId>) {
        let mut o = Ontology::new();
        o.add(
            Concept::new("QualityCertification")
                .keyword("ISO 9000")
                .implemented_by("ISO9000Certified"),
        );
        o.add(Concept::new("BalanceSheet").implemented_by("CertificationAuthorityCompany"));
        o.add(Concept::new("BusinessProof"));
        o.add(Concept::new("Identity"));
        assert!(o.add_is_a("BalanceSheet", "BusinessProof"));

        let mut ca = CredentialAuthority::new("INFN");
        let keys = KeyPair::from_seed(b"aerospace");
        let mut profile = XProfile::new("Aerospace");
        let mut ids = Vec::new();
        let iso = ca
            .issue(
                "ISO9000Certified",
                "Aerospace",
                keys.public,
                vec![Attribute::new("QualityRegulation", "UNI EN ISO 9000")],
                window(),
            )
            .unwrap();
        ids.push(iso.id().clone());
        profile.add_with_sensitivity(iso, Sensitivity::Low);
        let sheet = ca
            .issue(
                "CertificationAuthorityCompany",
                "Aerospace",
                keys.public,
                vec![Attribute::new("Issuer", "BBB")],
                window(),
            )
            .unwrap();
        ids.push(sheet.id().clone());
        profile.add_with_sensitivity(sheet, Sensitivity::High);
        (o, profile, ids)
    }

    #[test]
    fn direct_concept_maps_to_credential() {
        let (o, p, ids) = setup();
        let out = map_concept(&o, &p, "QualityCertification", 0.4);
        match out {
            MappingOutcome::Mapped {
                credential,
                via,
                sensitivity,
                ..
            } => {
                assert_eq!(credential, ids[0]);
                assert!(via.is_none());
                assert_eq!(sensitivity, Sensitivity::Low);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn similarity_fallback_resolves_foreign_name() {
        let (o, p, ids) = setup();
        // Foreign naming schema: "Quality_Certification_ISO9000".
        let out = map_concept(&o, &p, "Quality_Certification_ISO9000", 0.3);
        match out {
            MappingOutcome::Mapped {
                credential, via, ..
            } => {
                assert_eq!(credential, ids[0]);
                let via = via.expect("similarity used");
                assert_eq!(via.target, "QualityCertification");
                assert!(via.confidence >= 0.3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn is_a_inference_satisfies_parent_concept() {
        let (o, p, ids) = setup();
        // BusinessProof has no direct bindings, but BalanceSheet is_a
        // BusinessProof and the profile holds a balance-sheet credential.
        let out = map_concept(&o, &p, "BusinessProof", 0.4);
        assert_eq!(out.credential(), Some(&ids[1]));
    }

    #[test]
    fn least_sensitive_credential_preferred() {
        let (o, mut p, _) = setup();
        // Add a second, low-sensitivity balance sheet; it should win over
        // the high-sensitivity one.
        let mut ca = CredentialAuthority::new("BBB");
        let keys = KeyPair::from_seed(b"aerospace");
        let low = ca
            .issue(
                "CertificationAuthorityCompany",
                "Aerospace",
                keys.public,
                vec![Attribute::new("Issuer", "BBB")],
                window(),
            )
            .unwrap();
        let low_id = low.id().clone();
        p.add_with_sensitivity(low, Sensitivity::Low);
        let out = map_concept(&o, &p, "BalanceSheet", 0.4);
        match out {
            MappingOutcome::Mapped {
                credential,
                sensitivity,
                ..
            } => {
                assert_eq!(credential, low_id);
                assert_eq!(sensitivity, Sensitivity::Low);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn concept_without_credential_reports_no_credential() {
        let (o, p, _) = setup();
        let out = map_concept(&o, &p, "Identity", 0.4);
        assert_eq!(
            out,
            MappingOutcome::NoCredential {
                concept: "Identity".into(),
                resolved: "Identity".into()
            }
        );
    }

    #[test]
    fn unknown_concept_reports_best_confidence() {
        let (o, p, _) = setup();
        let out = map_concept(&o, &p, "Xylophone", 0.4);
        match out {
            MappingOutcome::UnknownConcept {
                best_confidence, ..
            } => {
                assert!(best_confidence < 0.4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mapping_never_returns_unheld_credential() {
        let (o, p, _) = setup();
        for concept in [
            "QualityCertification",
            "BalanceSheet",
            "BusinessProof",
            "Identity",
        ] {
            if let Some(id) = map_concept(&o, &p, concept, 0.3).credential() {
                assert!(
                    p.get(id).is_some(),
                    "returned a credential not in the profile"
                );
            }
        }
    }

    #[test]
    fn policy_level_mapping_preserves_order() {
        let (o, p, _) = setup();
        let outs = map_policy_concepts(
            &o,
            &p,
            &["QualityCertification".into(), "Identity".into()],
            0.4,
        );
        assert_eq!(outs.len(), 2);
        assert!(outs[0].is_mapped());
        assert!(!outs[1].is_mapped());
    }
}
