//! The ontology reasoning engine of the extended Trust-X (paper §4.3).
//!
//! Trust-X was "extended with a reasoning engine … The engine relies on a
//! reference ontology, capturing the main concepts used by the negotiation
//! parties". Each concept is "associated with the concept name, a set of
//! attributes and credential types names" — e.g.
//! `⟨gender; Passport.gender; DrivingLicense.sex⟩` — and concepts are
//! "hierarchically organized according to the conventional is_a
//! relationship".
//!
//! The engine supports three operations the paper relies on:
//!
//! 1. **Concept lookup and `is_a` inference** ([`graph`]) — if `Cᵢ is_a
//!    Cₖ`, information conveyed by `Cᵢ` can be used to infer `Cₖ`
//!    (Texas driver license ⇒ civilian driver license).
//! 2. **Similarity matching** ([`similarity`], [`matcher`]) — when a
//!    requested concept is absent from the local ontology, the GLUE-style
//!    Jaccard coefficient picks the closest local concept with a
//!    confidence in `[0, 1]`.
//! 3. **Algorithm 1** ([`mapping`]) — map a policy's concept list onto
//!    concrete local credentials, preferring the least-sensitive
//!    satisfying credential (the `CredCluster` probe order).
//!
//! The paper's prototype used Jena + OWL + Falcon-AO; this crate
//! implements the same observable behaviour natively (see DESIGN.md §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concept;
pub mod dictionary;
pub mod graph;
mod index;
pub mod mapping;
pub mod matcher;
pub mod memo;
pub mod owl;
pub mod similarity;
pub mod stats;

pub use concept::{Binding, Concept};
#[cfg(feature = "journal")]
pub use dictionary::dictionary_from_journal;
pub use dictionary::{map_concept_with_dictionary, Dictionary};
pub use graph::Ontology;
pub use mapping::{map_concept, map_policy_concepts, MappingEngine, MappingOutcome};
pub use matcher::{
    best_local_match, match_concept, match_concept_reference, match_ontologies,
    match_ontologies_reference, ConceptMatch,
};
pub use memo::{MapMemo, MapMemoStats};
pub use owl::{ontology_from_xml, ontology_to_xml};
