//! Concepts and their credential bindings.
//!
//! "Each concept in the ontology is associated with the concept name, a set
//! of attributes and credential types names.
//! ⟨gender; Passport.gender; DrivingLicense.sex⟩ is an example of concept.
//! … a concept can be implemented by attributes of different credentials or
//! by different credentials." (§4.3)

use std::collections::BTreeSet;

/// One way a concept can be implemented by credential material: either a
/// whole credential type (`BalanceSheet`) or a specific attribute of a
/// credential type (`Passport.gender`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Binding {
    /// The credential type that carries the information.
    pub cred_type: String,
    /// The attribute within the credential, if the binding is
    /// attribute-level; `None` means the whole credential implements the
    /// concept.
    pub attribute: Option<String>,
}

impl Binding {
    /// A whole-credential binding.
    pub fn credential(cred_type: impl Into<String>) -> Self {
        Binding {
            cred_type: cred_type.into(),
            attribute: None,
        }
    }

    /// An attribute-level binding (`Passport.gender`).
    pub fn attribute(cred_type: impl Into<String>, attribute: impl Into<String>) -> Self {
        Binding {
            cred_type: cred_type.into(),
            attribute: Some(attribute.into()),
        }
    }

    /// Parse the dotted form used in the paper (`Passport.gender`), or a
    /// bare credential type.
    pub fn parse(text: &str) -> Self {
        match text.split_once('.') {
            Some((ty, attr)) => Binding::attribute(ty, attr),
            None => Binding::credential(text),
        }
    }
}

impl std::fmt::Display for Binding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.attribute {
            Some(attr) => write!(f, "{}.{}", self.cred_type, attr),
            None => f.write_str(&self.cred_type),
        }
    }
}

/// A concept in a party's ontology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Concept {
    /// The concept name (unique within an ontology).
    pub name: String,
    /// Credential bindings that implement the concept.
    pub bindings: Vec<Binding>,
    /// Extra descriptive keywords used by the similarity matcher.
    pub keywords: Vec<String>,
}

impl Concept {
    /// Create a concept with no bindings.
    pub fn new(name: impl Into<String>) -> Self {
        Concept {
            name: name.into(),
            bindings: Vec::new(),
            keywords: Vec::new(),
        }
    }

    /// Builder: add a binding by its textual form.
    #[must_use]
    pub fn implemented_by(mut self, binding: &str) -> Self {
        self.bindings.push(Binding::parse(binding));
        self
    }

    /// Builder: add a descriptive keyword.
    #[must_use]
    pub fn keyword(mut self, kw: impl Into<String>) -> Self {
        self.keywords.push(kw.into());
        self
    }

    /// The credential types bound to this concept (deduplicated).
    pub fn credential_types(&self) -> BTreeSet<&str> {
        self.bindings.iter().map(|b| b.cred_type.as_str()).collect()
    }

    /// The token set the Jaccard matcher compares: name fragments,
    /// keywords, and binding fragments, all lowercased.
    pub fn feature_tokens(&self) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        tokenize_into(&self.name, &mut set);
        for kw in &self.keywords {
            tokenize_into(kw, &mut set);
        }
        for b in &self.bindings {
            tokenize_into(&b.cred_type, &mut set);
            if let Some(attr) = &b.attribute {
                tokenize_into(attr, &mut set);
            }
        }
        set
    }
}

/// Split an identifier into lowercase tokens on case changes, alpha↔digit
/// boundaries, and separators: `TexasDriverLicense` → {texas, driver,
/// license}, `ISO9000Certified` → {iso, 9000, certified}.
///
/// Digit runs form their own tokens so that `ISO9000Certified` and the
/// spaced keyword form `ISO 9000` tokenize compatibly ({iso, 9000, …} in
/// both); without the boundary split the two share zero tokens and
/// Jaccard matching on the paper's running example silently under-scores.
pub fn tokenize_into(text: &str, out: &mut BTreeSet<String>) {
    let mut current = String::new();
    let mut prev_lower = false;
    let mut prev_digit = false;
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            let boundary = (ch.is_uppercase() && prev_lower)
                || (ch.is_numeric() != prev_digit && !current.is_empty());
            if boundary && !current.is_empty() {
                out.insert(std::mem::take(&mut current));
            }
            current.extend(ch.to_lowercase());
            prev_lower = ch.is_lowercase();
            prev_digit = ch.is_numeric();
        } else {
            if !current.is_empty() {
                out.insert(std::mem::take(&mut current));
            }
            prev_lower = false;
            prev_digit = false;
        }
    }
    if !current.is_empty() {
        out.insert(current);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_parse_forms() {
        assert_eq!(
            Binding::parse("Passport.gender"),
            Binding::attribute("Passport", "gender")
        );
        assert_eq!(
            Binding::parse("BalanceSheet"),
            Binding::credential("BalanceSheet")
        );
        assert_eq!(
            Binding::parse("Passport.gender").to_string(),
            "Passport.gender"
        );
        assert_eq!(Binding::parse("BalanceSheet").to_string(), "BalanceSheet");
    }

    #[test]
    fn paper_gender_concept() {
        // ⟨gender; Passport.gender; DrivingLicense.sex⟩
        let c = Concept::new("gender")
            .implemented_by("Passport.gender")
            .implemented_by("DrivingLicense.sex");
        assert_eq!(
            c.credential_types().into_iter().collect::<Vec<_>>(),
            ["DrivingLicense", "Passport"]
        );
    }

    #[test]
    fn tokenize_camel_case_and_separators() {
        let mut set = BTreeSet::new();
        tokenize_into("TexasDriverLicense", &mut set);
        assert_eq!(
            set.iter().collect::<Vec<_>>(),
            ["driver", "license", "texas"]
        );
        let mut set = BTreeSet::new();
        tokenize_into("quality_regulation-ISO", &mut set);
        assert!(set.contains("quality") && set.contains("regulation") && set.contains("iso"));
    }

    #[test]
    fn tokenize_handles_acronym_runs() {
        let mut set = BTreeSet::new();
        tokenize_into("AAACreditation", &mut set);
        // Acronym runs stay together with the following word-start.
        assert!(!set.is_empty());
        let mut set2 = BTreeSet::new();
        tokenize_into("", &mut set2);
        assert!(set2.is_empty());
    }

    #[test]
    fn tokenize_splits_alpha_digit_boundaries() {
        // Regression: the seed tokenizer kept `iso9000` joined, so
        // `ISO9000Certified` shared zero tokens with the keyword
        // `ISO 9000` and the paper's running example never matched.
        let mut set = BTreeSet::new();
        tokenize_into("ISO9000Certified", &mut set);
        assert_eq!(set.iter().collect::<Vec<_>>(), ["9000", "certified", "iso"]);
        let mut spaced = BTreeSet::new();
        tokenize_into("ISO 9000", &mut spaced);
        assert_eq!(spaced.iter().collect::<Vec<_>>(), ["9000", "iso"]);
        assert_eq!(set.intersection(&spaced).count(), 2);
        // Digit→alpha boundaries split too, digit runs stay whole.
        let mut set = BTreeSet::new();
        tokenize_into("9000x509v3", &mut set);
        assert_eq!(
            set.iter().collect::<Vec<_>>(),
            ["3", "509", "9000", "v", "x"]
        );
    }

    #[test]
    fn feature_tokens_union_all_sources() {
        let c = Concept::new("WebDesignerQuality")
            .keyword("ISO 9000")
            .implemented_by("ISO9000Certified.QualityRegulation");
        let tokens = c.feature_tokens();
        for t in [
            "web",
            "designer",
            "quality",
            "iso",
            "9000",
            "certified",
            "regulation",
        ] {
            assert!(tokens.contains(t), "missing token {t}: {tokens:?}");
        }
    }
}
