//! Cross-ontology concept matching (the Falcon-AO / GLUE substitute).
//!
//! "Given ontologies O₁ and O₂, an ontology matching algorithm takes O₁ and
//! O₂ as input and returns a mapping M between the two ontologies. The
//! mapping contains for each concept Cᵢ in ontology O₁ a matching concept
//! Cⱼ in O₂ along with a confidence measure m, that is, a value between 0
//! and 1. … The concept with higher similarity score is the one selected.
//! This is achieved by taking C and matching it with every concept in
//! ontology O₂." (§4.3.1)

use crate::concept::tokenize_into;
use crate::graph::Ontology;
use crate::similarity::{compute_similarity, name_similarity};
use crate::stats;
use std::collections::BTreeSet;

/// One entry of an ontology mapping: a source concept matched to a target
/// concept with a confidence in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConceptMatch {
    /// The source concept name (from the counterpart policy / ontology).
    pub source: String,
    /// The best-matching local concept name.
    pub target: String,
    /// The similarity score.
    pub confidence: f64,
}

/// Match a single foreign concept name against every local concept and
/// return the argmax, provided it reaches `threshold`.
///
/// This is the fallback branch of Algorithm 1 (lines 20–29): "the
/// negotiator … can compute the mapping according to a matching algorithm,
/// and resolve the ambiguity". Scoring goes through the inverted token
/// index (`crate::index`), which only scores concepts sharing ≥ 1 token
/// with the query — byte-identical outcomes to
/// [`match_concept_reference`], measurably faster on large ontologies.
pub fn match_concept(name: &str, local: &Ontology, threshold: f64) -> Option<ConceptMatch> {
    best_local_match(name, local).filter(|m| m.confidence >= threshold && m.confidence > 0.0)
}

/// The unfiltered similarity argmax of `name` over `local` — one indexed
/// scan, no threshold. Returns `None` only when `local` is empty.
///
/// This is the single-scan primitive behind [`match_concept`] and the
/// mapping engine's `UnknownConcept` diagnostics: the best sub-threshold
/// confidence comes from the same pass that computed the argmax, where
/// the seed ran the full scan a second time just to report it.
pub fn best_local_match(name: &str, local: &Ontology) -> Option<ConceptMatch> {
    let index = local.index();
    let mut tokens = BTreeSet::new();
    tokenize_into(name, &mut tokens);
    stats::SIMILARITY_SCANS.inc();
    let (id, confidence) = index.best_match(&tokens)?;
    Some(ConceptMatch {
        source: name.to_owned(),
        target: index.name(id).to_owned(),
        confidence,
    })
}

/// The seed's naive scan, retained verbatim as the differential oracle
/// for the indexed path: re-tokenizes every concept and scores all of
/// them. Must return byte-identical results to [`match_concept`].
pub fn match_concept_reference(
    name: &str,
    local: &Ontology,
    threshold: f64,
) -> Option<ConceptMatch> {
    stats::REFERENCE_SCANS.inc();
    let mut best: Option<ConceptMatch> = None;
    for concept in local.concepts() {
        let score = name_similarity(name, concept);
        let better = match &best {
            None => true,
            Some(b) => score > b.confidence || (score == b.confidence && concept.name < b.target),
        };
        if better {
            best = Some(ConceptMatch {
                source: name.to_owned(),
                target: concept.name.clone(),
                confidence: score,
            });
        }
    }
    best.filter(|m| m.confidence >= threshold && m.confidence > 0.0)
}

/// Match every concept of `source` against `target`, returning the best
/// match per source concept (no threshold — callers filter by confidence).
/// Each source concept is one indexed query against `target`.
pub fn match_ontologies(source: &Ontology, target: &Ontology) -> Vec<ConceptMatch> {
    let index = target.index();
    let mut out = Vec::with_capacity(source.len());
    for sc in source.concepts() {
        stats::SIMILARITY_SCANS.inc();
        if let Some((id, confidence)) = index.best_match(&sc.feature_tokens()) {
            out.push(ConceptMatch {
                source: sc.name.clone(),
                target: index.name(id).to_owned(),
                confidence,
            });
        }
    }
    out
}

/// The seed's all-pairs cross-ontology scan, retained as the
/// differential oracle for [`match_ontologies`].
pub fn match_ontologies_reference(source: &Ontology, target: &Ontology) -> Vec<ConceptMatch> {
    let mut out = Vec::with_capacity(source.len());
    for sc in source.concepts() {
        stats::REFERENCE_SCANS.inc();
        let mut best: Option<ConceptMatch> = None;
        for tc in target.concepts() {
            let score = compute_similarity(sc, tc);
            let better = match &best {
                None => true,
                Some(b) => score > b.confidence || (score == b.confidence && tc.name < b.target),
            };
            if better {
                best = Some(ConceptMatch {
                    source: sc.name.clone(),
                    target: tc.name.clone(),
                    confidence: score,
                });
            }
        }
        if let Some(m) = best {
            out.push(m);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::Concept;

    fn local() -> Ontology {
        let mut o = Ontology::new();
        o.add(
            Concept::new("QualityCertification")
                .keyword("ISO 9000")
                .implemented_by("ISO9000Certified.QualityRegulation"),
        );
        o.add(Concept::new("BalanceSheet").implemented_by("CertificationAuthorityCompany.Issuer"));
        o.add(Concept::new("StorageCapacity").implemented_by("StorageSLA.Capacity"));
        o
    }

    #[test]
    fn exact_name_matches_with_high_confidence() {
        let m = match_concept("QualityCertification", &local(), 0.25).unwrap();
        assert_eq!(m.target, "QualityCertification");
        // Keywords and bindings dilute the Jaccard union, so an exact name
        // match on a richly-annotated concept still scores well below 1.
        assert!(m.confidence > 0.25, "{}", m.confidence);
    }

    #[test]
    fn paraphrase_matches_best_concept() {
        let m = match_concept("Quality_ISO_Certification", &local(), 0.2).unwrap();
        assert_eq!(m.target, "QualityCertification");
    }

    #[test]
    fn below_threshold_returns_none() {
        assert!(match_concept("CompletelyDifferentThing", &local(), 0.5).is_none());
    }

    #[test]
    fn zero_similarity_never_matches_even_with_zero_threshold() {
        assert!(match_concept("Zzz", &local(), 0.0).is_none());
    }

    #[test]
    fn empty_ontology_matches_nothing() {
        assert!(match_concept("QualityCertification", &Ontology::new(), 0.0).is_none());
    }

    #[test]
    fn ontology_mapping_covers_every_source_concept() {
        let mut foreign = Ontology::new();
        foreign.add(Concept::new("Quality_Certification").keyword("ISO"));
        foreign.add(Concept::new("Balance_Sheet"));
        let mapping = match_ontologies(&foreign, &local());
        assert_eq!(mapping.len(), 2);
        let quality = mapping
            .iter()
            .find(|m| m.source == "Quality_Certification")
            .unwrap();
        assert_eq!(quality.target, "QualityCertification");
        let balance = mapping
            .iter()
            .find(|m| m.source == "Balance_Sheet")
            .unwrap();
        assert_eq!(balance.target, "BalanceSheet");
        for m in &mapping {
            assert!((0.0..=1.0).contains(&m.confidence));
        }
    }

    #[test]
    fn tie_breaks_are_deterministic() {
        let mut o = Ontology::new();
        o.add(Concept::new("AlphaThing"));
        o.add(Concept::new("BetaThing"));
        // "Thing" ties between the two; lexicographically smaller name wins.
        let m = match_concept("Thing", &o, 0.0).unwrap();
        assert_eq!(m.target, "AlphaThing");
    }
}
