//! Jaccard-coefficient similarity between concepts.
//!
//! "The matching operation is executed according to the Jaccard
//! coefficient, as developed for the GLUE mapping tool, and is summarized
//! by the ComputeSimilarity function in Algorithm 1." (§4.3.1)
//!
//! GLUE's exact coefficient is estimated from instance distributions; with
//! no instance corpus available, the standard surrogate is the Jaccard
//! coefficient over the concepts' *feature token sets* (name fragments,
//! keywords, binding fragments) — the same `|A ∩ B| / |A ∪ B|` form, the
//! same `[0, 1]` confidence range, the same argmax use.

use crate::concept::{tokenize_into, Concept};
use std::collections::BTreeSet;

/// Jaccard coefficient between two sets: `|A ∩ B| / |A ∪ B|`.
/// Both empty ⇒ 1.0 (identical); one empty ⇒ 0.0.
pub fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    jaccard_counts(a.intersection(b).count(), a.len(), b.len())
}

/// The coefficient from precomputed set sizes — the single shared float
/// computation, so the indexed matcher and the naive scan produce
/// bit-identical scores from the same integer counts.
pub(crate) fn jaccard_counts(intersection: usize, a_len: usize, b_len: usize) -> f64 {
    if a_len == 0 && b_len == 0 {
        return 1.0;
    }
    let union = a_len + b_len - intersection;
    if union == 0 {
        1.0
    } else {
        intersection as f64 / union as f64
    }
}

/// The paper's `ComputeSimilarity(C′, Cᵢ)`: similarity between two concepts
/// in `[0, 1]`.
pub fn compute_similarity(a: &Concept, b: &Concept) -> f64 {
    jaccard(&a.feature_tokens(), &b.feature_tokens())
}

/// Similarity between a bare concept *name* (from a counterpart policy) and
/// a local concept — used when the foreign ontology is not transmitted.
pub fn name_similarity(name: &str, local: &Concept) -> f64 {
    let mut tokens = BTreeSet::new();
    tokenize_into(name, &mut tokens);
    jaccard(&tokens, &local.feature_tokens())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&set(&["a", "b"]), &set(&["a", "b"])), 1.0);
        assert_eq!(jaccard(&set(&["a"]), &set(&["b"])), 0.0);
        assert!((jaccard(&set(&["a", "b", "c"]), &set(&["b", "c", "d"])) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&set(&[]), &set(&[])), 1.0);
        assert_eq!(jaccard(&set(&["a"]), &set(&[])), 0.0);
    }

    #[test]
    fn identical_concepts_score_one() {
        let c = Concept::new("WebDesignerQuality").keyword("ISO");
        assert_eq!(compute_similarity(&c, &c), 1.0);
    }

    #[test]
    fn related_concepts_score_between() {
        let a = Concept::new("WebDesignerQuality");
        let b = Concept::new("DesignerQualityCertification");
        let s = compute_similarity(&a, &b);
        assert!(s > 0.0 && s < 1.0, "{s}");
    }

    #[test]
    fn unrelated_concepts_score_zero() {
        let a = Concept::new("BalanceSheet");
        let b = Concept::new("DriverLicense");
        assert_eq!(compute_similarity(&a, &b), 0.0);
    }

    #[test]
    fn iso9000_digit_boundary_regression() {
        // Regression for the tokenizer digit-boundary bug: under the seed
        // tokenizer `ISO9000Certified` → {iso9000, certified} shared zero
        // tokens with the spaced keyword form `ISO 9000` → {iso, 9000},
        // so the paper's running example scored 0 here.
        let a = Concept::new("ISO9000Certified");
        let b = Concept::new("QualityStandard").keyword("ISO 9000");
        let s = compute_similarity(&a, &b);
        assert!(s > 0.0, "{s}");
        assert!(name_similarity("ISO 9000", &a) > 0.0);
    }

    #[test]
    fn name_similarity_matches_policy_keywords() {
        let local = Concept::new("QualityCertification")
            .keyword("ISO 9000")
            .implemented_by("ISO9000Certified.QualityRegulation");
        // A foreign policy asks for "Quality_Certification_ISO".
        let s = name_similarity("Quality_Certification_ISO", &local);
        assert!(s > 0.4, "{s}");
        assert!(name_similarity("StorageCapacity", &local) < 0.1);
    }

    proptest! {
        #[test]
        fn jaccard_is_symmetric_and_bounded(
            a in proptest::collection::btree_set("[a-e]{1,3}", 0..6),
            b in proptest::collection::btree_set("[a-e]{1,3}", 0..6),
        ) {
            let ab = jaccard(&a, &b);
            let ba = jaccard(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-15);
            prop_assert!((0.0..=1.0).contains(&ab));
        }

        #[test]
        fn self_similarity_is_one(a in proptest::collection::btree_set("[a-e]{1,3}", 0..6)) {
            prop_assert_eq!(jaccard(&a, &a), 1.0);
        }
    }
}
