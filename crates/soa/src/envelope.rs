//! SOAP-style message envelopes.
//!
//! Every TN web service operation is invoked with a request envelope and
//! answered with a response envelope (or a fault), mirroring the Axis SOAP
//! transport of the prototype.

use trust_vo_xmldoc::{Element, Node};

/// A request or response envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// The operation name, e.g. `StartNegotiation`.
    pub operation: String,
    /// The negotiation id, once assigned.
    pub negotiation_id: Option<u64>,
    /// The XML body.
    pub body: Element,
}

impl Envelope {
    /// Build a request envelope.
    pub fn request(operation: impl Into<String>, body: Element) -> Self {
        Envelope {
            operation: operation.into(),
            negotiation_id: None,
            body,
        }
    }

    /// Attach a negotiation id.
    #[must_use]
    pub fn with_negotiation(mut self, id: u64) -> Self {
        self.negotiation_id = Some(id);
        self
    }

    /// Serialize as a SOAP-shaped XML document.
    pub fn to_xml(&self) -> Element {
        let mut header =
            Element::new("Header").child(Element::new("operation").text(&self.operation));
        if let Some(id) = self.negotiation_id {
            header.children.push(Node::Element(
                Element::new("negotiationId").text(id.to_string()),
            ));
        }
        Element::new("Envelope")
            .child(header)
            .child(Element::new("Body").child(self.body.clone()))
    }

    /// Parse an envelope from its XML document.
    pub fn from_xml(root: &Element) -> Option<Self> {
        if root.name != "Envelope" {
            return None;
        }
        let header = root.first("Header")?;
        let operation = header.child_text("operation")?;
        let negotiation_id = header
            .child_text("negotiationId")
            .and_then(|t| t.parse().ok());
        let body = root.first("Body")?.elements().next()?.clone();
        Some(Envelope {
            operation,
            negotiation_id,
            body,
        })
    }
}

/// A service fault (SOAP fault analogue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Machine-readable code.
    pub code: String,
    /// Human-readable reason.
    pub reason: String,
}

impl Fault {
    /// Build a fault.
    pub fn new(code: impl Into<String>, reason: impl Into<String>) -> Self {
        Fault {
            code: code.into(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault [{}]: {}", self.code, self.reason)
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrip() {
        let env = Envelope::request(
            "StartNegotiation",
            Element::new("StartNegotiationRequest")
                .child(Element::new("strategy").text("standard")),
        )
        .with_negotiation(7);
        let xml = env.to_xml();
        let text = trust_vo_xmldoc::to_string(&xml);
        let parsed = trust_vo_xmldoc::parse(&text).unwrap();
        assert_eq!(Envelope::from_xml(&parsed), Some(env));
    }

    #[test]
    fn envelope_without_id() {
        let env = Envelope::request("PolicyExchange", Element::new("x"));
        let back = Envelope::from_xml(&env.to_xml()).unwrap();
        assert_eq!(back.negotiation_id, None);
        assert_eq!(back.operation, "PolicyExchange");
    }

    #[test]
    fn from_xml_rejects_malformed() {
        assert!(Envelope::from_xml(&Element::new("NotEnvelope")).is_none());
        assert!(Envelope::from_xml(&Element::new("Envelope")).is_none());
        let no_body = Element::new("Envelope")
            .child(Element::new("Header").child(Element::new("operation").text("X")));
        assert!(Envelope::from_xml(&no_body).is_none());
    }

    #[test]
    fn fault_display() {
        let f = Fault::new("NoSuchNegotiation", "id 42 unknown");
        assert_eq!(f.to_string(), "fault [NoSuchNegotiation]: id 42 unknown");
    }
}
