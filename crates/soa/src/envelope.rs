//! SOAP-style message envelopes.
//!
//! Every TN web service operation is invoked with a request envelope and
//! answered with a response envelope (or a fault), mirroring the Axis SOAP
//! transport of the prototype.

use std::sync::Arc;
use std::sync::OnceLock;
use trust_vo_obs::TraceContext;
use trust_vo_xmldoc::{Element, Node};

/// A request or response envelope.
///
/// The body is held behind an [`Arc`]: hops that only rewrite trace
/// headers ([`Envelope::restamped`], per-attempt re-stamps in the retry
/// and netsim layers) share the payload instead of deep-cloning the XML
/// tree. The canonical wire encoding is cached on first use (see
/// [`Envelope::wire_bytes`]) so one logical call is encoded once, not
/// once per delivery attempt.
#[derive(Debug)]
pub struct Envelope {
    /// The operation name, e.g. `StartNegotiation`.
    pub operation: String,
    /// The negotiation id, once assigned.
    pub negotiation_id: Option<u64>,
    /// Idempotency key: identifies one *logical* call across transport
    /// retries and duplicate deliveries, so state-mutating operations can be
    /// deduplicated at the receiver.
    pub idempotency_key: Option<u64>,
    /// Causal trace context: which trace this message belongs to and which
    /// span sent it. Stamped by the client driver and re-stamped by each
    /// hop that opens its own span (retry attempt, fault transport, bus),
    /// so server-side spans parent under the sending layer's span.
    /// `None` on untraced runs — the pre-tracing wire shape.
    pub trace: Option<TraceContext>,
    /// The XML body, shared between header-only copies of this envelope.
    pub body: Arc<Element>,
    /// Lazily computed canonical wire encoding (`crate::wire` payload
    /// bytes). Cleared by every builder mutation; carried across clones
    /// (identical fields ⇒ identical encoding). Excluded from equality.
    wire: OnceLock<Arc<[u8]>>,
}

impl Clone for Envelope {
    fn clone(&self) -> Self {
        let wire = OnceLock::new();
        // An exact copy encodes to the exact same bytes, so the cache
        // rides along; builder mutations on the copy clear it.
        if let Some(bytes) = self.wire.get() {
            let _ = wire.set(Arc::clone(bytes));
        }
        Envelope {
            operation: self.operation.clone(),
            negotiation_id: self.negotiation_id,
            idempotency_key: self.idempotency_key,
            trace: self.trace,
            body: Arc::clone(&self.body),
            wire,
        }
    }
}

impl PartialEq for Envelope {
    fn eq(&self, other: &Self) -> bool {
        self.operation == other.operation
            && self.negotiation_id == other.negotiation_id
            && self.idempotency_key == other.idempotency_key
            && self.trace == other.trace
            && self.body == other.body
    }
}

impl Eq for Envelope {}

impl Envelope {
    /// Build a request envelope. Accepts an owned [`Element`] or an
    /// already-shared `Arc<Element>` body.
    pub fn request(operation: impl Into<String>, body: impl Into<Arc<Element>>) -> Self {
        Envelope {
            operation: operation.into(),
            negotiation_id: None,
            idempotency_key: None,
            trace: None,
            body: body.into(),
            wire: OnceLock::new(),
        }
    }

    /// Attach a negotiation id.
    #[must_use]
    pub fn with_negotiation(mut self, id: u64) -> Self {
        self.negotiation_id = Some(id);
        self.wire = OnceLock::new();
        self
    }

    /// Attach an idempotency key (same key ⇒ same logical call).
    #[must_use]
    pub fn with_idempotency(mut self, key: u64) -> Self {
        self.idempotency_key = Some(key);
        self.wire = OnceLock::new();
        self
    }

    /// Attach a trace context (see [`Envelope::trace`]).
    #[must_use]
    pub fn with_trace(mut self, trace: TraceContext) -> Self {
        self.trace = Some(trace);
        self.wire = OnceLock::new();
        self
    }

    /// A copy of this envelope re-stamped so the next hop parents under
    /// span `span_id` of the same trace. Returns an unmodified clone when
    /// the envelope is untraced or `span_id` is 0 (inert span guard).
    /// The body is shared, not deep-cloned: only trace headers change.
    #[must_use]
    pub fn restamped(&self, span_id: u64) -> Self {
        let mut out = self.clone();
        if span_id != 0 {
            if let Some(trace) = &self.trace {
                out.trace = Some(trace.child(span_id));
                out.wire = OnceLock::new();
            }
        }
        out
    }

    /// The canonical wire encoding of this envelope (the frame payload of
    /// [`crate::wire`]), computed once and cached: retries and duplicate
    /// deliveries of the same logical call reuse one encoding, as do
    /// frame checksumming and transcript digests over the same bytes.
    pub fn wire_bytes(&self) -> &Arc<[u8]> {
        self.wire
            .get_or_init(|| crate::wire::encode_envelope(self).into())
    }

    /// Whether the wire encoding has been computed yet. A call refused by
    /// the admission gate must never have been encoded — pinned by the
    /// admission crate's tests.
    pub fn wire_cached(&self) -> bool {
        self.wire.get().is_some()
    }

    /// Serialize as a SOAP-shaped XML document.
    pub fn to_xml(&self) -> Element {
        let mut header =
            Element::new("Header").child(Element::new("operation").text(&self.operation));
        if let Some(id) = self.negotiation_id {
            header.children.push(Node::Element(
                Element::new("negotiationId").text(id.to_string()),
            ));
        }
        if let Some(key) = self.idempotency_key {
            header.children.push(Node::Element(
                Element::new("idempotencyKey").text(key.to_string()),
            ));
        }
        if let Some(trace) = &self.trace {
            header.children.push(Node::Element(
                Element::new("traceId").text(trace.trace_id.to_string()),
            ));
            header.children.push(Node::Element(
                Element::new("spanId").text(trace.span_id.to_string()),
            ));
            if let Some(parent) = trace.parent_span_id {
                header.children.push(Node::Element(
                    Element::new("parentSpanId").text(parent.to_string()),
                ));
            }
        }
        Element::new("Envelope")
            .child(header)
            .child(Element::new("Body").child(self.body.as_ref().clone()))
    }

    /// Parse an envelope from its XML document.
    pub fn from_xml(root: &Element) -> Option<Self> {
        if root.name != "Envelope" {
            return None;
        }
        let header = root.first("Header")?;
        let operation = header.child_text("operation")?;
        let negotiation_id = header
            .child_text("negotiationId")
            .and_then(|t| t.parse().ok());
        let idempotency_key = header
            .child_text("idempotencyKey")
            .and_then(|t| t.parse().ok());
        // Trace headers are lenient like the ids: both trace and span ids
        // must parse (and a 0 trace id means untraced), else the envelope
        // simply carries no trace.
        let trace = match (
            header.child_text("traceId").and_then(|t| t.parse().ok()),
            header.child_text("spanId").and_then(|t| t.parse().ok()),
        ) {
            (Some(trace_id), Some(span_id)) if trace_id != 0 => Some(TraceContext {
                trace_id,
                span_id,
                parent_span_id: header
                    .child_text("parentSpanId")
                    .and_then(|t| t.parse().ok()),
            }),
            _ => None,
        };
        let body = root.first("Body")?.elements().next()?.clone();
        Some(Envelope {
            operation,
            negotiation_id,
            idempotency_key,
            trace,
            body: Arc::new(body),
            wire: OnceLock::new(),
        })
    }
}

/// Classifies a [`Fault`] by *where* it originated, which determines how a
/// caller should react to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Raised by the called endpoint itself (bad request, protocol error,
    /// policy failure…). Retrying the same call will not help.
    Application,
    /// The service name has no registration on the bus: a wiring error, not
    /// a runtime condition. Retrying will not help.
    NoSuchService,
    /// The transport lost, timed out, or could not deliver the message
    /// (drop, partition, endpoint crash). The endpoint may or may not have
    /// seen the request; retrying with the same idempotency key is safe.
    Transport,
    /// The caller's per-party flow budget is exhausted (see the
    /// `trust-vo-admission` mana ledger): the bus refused to dispatch the
    /// call *before* charging any simulated latency. The request was never
    /// delivered, so retrying with the same idempotency key is safe — but
    /// only after the budget regenerates; [`Fault::retry_after_us`] carries
    /// the hint. Deliberately distinct from [`FaultKind::Transport`] so
    /// blind retry loops do not hammer an exhausted budget, and from
    /// [`FaultKind::Application`] so reply caches never pin the rejection
    /// (budgets refill; the rejection is transient).
    BudgetExhausted,
    /// A bounded dispatch queue was full and the call was shed *before*
    /// any bytes were encoded or any simulated latency charged (see the
    /// sharded executor and single-queue bus in `crate::shard`). The
    /// request was never delivered, so retrying with the same idempotency
    /// key is safe once the queue drains; [`Fault::retry_after_us`]
    /// carries the drain estimate. Distinct from [`FaultKind::Transport`]
    /// so blind retry loops do not hammer a saturated queue, and from
    /// [`FaultKind::Application`] so reply caches never pin the shed
    /// (queues drain; the rejection is transient) — the same contract as
    /// [`FaultKind::BudgetExhausted`].
    Overloaded,
}

/// A service fault (SOAP fault analogue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Machine-readable code.
    pub code: String,
    /// Human-readable reason.
    pub reason: String,
    /// Where the fault originated.
    pub kind: FaultKind,
    /// Sim-time hint (µs) after which retrying may succeed. Set on
    /// [`FaultKind::BudgetExhausted`] faults (time until the party's flow
    /// budget regenerates one call's worth of tokens) and on
    /// [`FaultKind::Overloaded`] sheds (estimated queue drain time).
    pub retry_after_us: Option<u64>,
}

impl Fault {
    /// Build an application-level fault.
    pub fn new(code: impl Into<String>, reason: impl Into<String>) -> Self {
        Fault {
            code: code.into(),
            reason: reason.into(),
            kind: FaultKind::Application,
            retry_after_us: None,
        }
    }

    /// Build the typed fault for an unregistered service name.
    pub fn no_such_service(service: &str) -> Self {
        Fault {
            code: "NoSuchService".into(),
            reason: format!("service '{service}' not registered"),
            kind: FaultKind::NoSuchService,
            retry_after_us: None,
        }
    }

    /// Build a transport-level fault (drop, timeout, partition, crash).
    pub fn transport(code: impl Into<String>, reason: impl Into<String>) -> Self {
        Fault {
            code: code.into(),
            reason: reason.into(),
            kind: FaultKind::Transport,
            retry_after_us: None,
        }
    }

    /// Build the typed fault for an exhausted per-party flow budget.
    /// `retry_after_us` is the sim-time until the party's bucket
    /// regenerates enough to admit one call (0 ⇒ retry immediately).
    pub fn budget_exhausted(party: &str, retry_after_us: u64) -> Self {
        Fault {
            code: "BudgetExhausted".into(),
            reason: format!("flow budget for party '{party}' exhausted"),
            kind: FaultKind::BudgetExhausted,
            retry_after_us: Some(retry_after_us),
        }
    }

    /// Build the typed fault for a saturated dispatch queue: the call was
    /// shed before encoding, never delivered. `retry_after_us` is the
    /// estimated sim-time until the queue drains one slot (0 ⇒ retry
    /// immediately).
    pub fn overloaded(service: &str, retry_after_us: u64) -> Self {
        Fault {
            code: "Overloaded".into(),
            reason: format!("dispatch queue for service '{service}' is full"),
            kind: FaultKind::Overloaded,
            retry_after_us: Some(retry_after_us),
        }
    }

    /// True when the fault came from the transport, i.e. the call may be
    /// retried with the same idempotency key.
    pub fn is_transport(&self) -> bool {
        self.kind == FaultKind::Transport
    }

    /// True when the fault is a shed from a saturated dispatch queue: the
    /// call was never dispatched and may be retried after
    /// [`Fault::retry_after_us`].
    pub fn is_overloaded(&self) -> bool {
        self.kind == FaultKind::Overloaded
    }

    /// True when the fault is a flow-budget rejection: the call was never
    /// dispatched and may be retried after [`Fault::retry_after_us`].
    pub fn is_budget_exhausted(&self) -> bool {
        self.kind == FaultKind::BudgetExhausted
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault [{}]: {}", self.code, self.reason)
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrip() {
        let env = Envelope::request(
            "StartNegotiation",
            Element::new("StartNegotiationRequest")
                .child(Element::new("strategy").text("standard")),
        )
        .with_negotiation(7);
        let xml = env.to_xml();
        let text = trust_vo_xmldoc::to_string(&xml);
        let parsed = trust_vo_xmldoc::parse(&text).unwrap();
        assert_eq!(Envelope::from_xml(&parsed), Some(env));
    }

    #[test]
    fn envelope_without_id() {
        let env = Envelope::request("PolicyExchange", Element::new("x"));
        let back = Envelope::from_xml(&env.to_xml()).unwrap();
        assert_eq!(back.negotiation_id, None);
        assert_eq!(back.operation, "PolicyExchange");
    }

    #[test]
    fn from_xml_rejects_malformed() {
        assert!(Envelope::from_xml(&Element::new("NotEnvelope")).is_none());
        assert!(Envelope::from_xml(&Element::new("Envelope")).is_none());
        let no_body = Element::new("Envelope")
            .child(Element::new("Header").child(Element::new("operation").text("X")));
        assert!(Envelope::from_xml(&no_body).is_none());
    }

    #[test]
    fn fault_display() {
        let f = Fault::new("NoSuchNegotiation", "id 42 unknown");
        assert_eq!(f.to_string(), "fault [NoSuchNegotiation]: id 42 unknown");
    }

    #[test]
    fn fault_kinds() {
        assert_eq!(Fault::new("X", "y").kind, FaultKind::Application);
        let ns = Fault::no_such_service("ghost");
        assert_eq!(ns.kind, FaultKind::NoSuchService);
        assert_eq!(ns.code, "NoSuchService");
        assert!(!ns.is_transport());
        let t = Fault::transport("Timeout", "request lost");
        assert_eq!(t.kind, FaultKind::Transport);
        assert!(t.is_transport());
    }

    #[test]
    fn budget_exhausted_fault_is_typed_with_hint() {
        let f = Fault::budget_exhausted("Flooder Inc", 250_000);
        assert_eq!(f.kind, FaultKind::BudgetExhausted);
        assert_eq!(f.code, "BudgetExhausted");
        assert_eq!(f.retry_after_us, Some(250_000));
        assert!(f.is_budget_exhausted());
        // Pinned: neither transport (blind retry loops must not hammer an
        // exhausted budget) nor application (reply caches must not pin it).
        assert!(!f.is_transport());
        assert_ne!(f.kind, FaultKind::Application);
        // Every other constructor leaves the hint empty.
        assert_eq!(Fault::new("X", "y").retry_after_us, None);
        assert_eq!(Fault::transport("T", "u").retry_after_us, None);
        assert_eq!(Fault::no_such_service("g").retry_after_us, None);
    }

    #[test]
    fn overloaded_fault_is_typed_with_hint() {
        let f = Fault::overloaded("tn", 75_000);
        assert_eq!(f.kind, FaultKind::Overloaded);
        assert_eq!(f.code, "Overloaded");
        assert_eq!(f.retry_after_us, Some(75_000));
        assert!(f.is_overloaded());
        // Pinned like BudgetExhausted: neither transport (blind retry
        // loops must not hammer a saturated queue) nor application (reply
        // caches must not pin a shed).
        assert!(!f.is_transport());
        assert!(!f.is_budget_exhausted());
        assert_ne!(f.kind, FaultKind::Application);
    }

    #[test]
    fn restamped_shares_the_body_allocation() {
        let env = Envelope::request("PolicyExchange", Element::new("big"))
            .with_negotiation(7)
            .with_trace(TraceContext {
                trace_id: 9,
                span_id: 4,
                parent_span_id: None,
            });
        let hop = env.restamped(6);
        // Per-hop restamping is allocation-light: the (possibly large)
        // XML body is shared, never deep-cloned.
        assert!(Arc::ptr_eq(&env.body, &hop.body));
        // An inert restamp (span id 0 — no trace change) also keeps the
        // cached wire bytes; a real restamp must drop them.
        let _ = env.wire_bytes();
        assert!(env.restamped(0).wire_cached());
        assert!(!env.restamped(6).wire_cached());
    }

    #[test]
    fn trace_context_roundtrips_through_xml() {
        let env = Envelope::request("PolicyExchange", Element::new("x"))
            .with_negotiation(3)
            .with_trace(TraceContext {
                trace_id: 11,
                span_id: 42,
                parent_span_id: Some(40),
            });
        let text = trust_vo_xmldoc::to_string(&env.to_xml());
        let back = Envelope::from_xml(&trust_vo_xmldoc::parse(&text).unwrap()).unwrap();
        assert_eq!(back, env);

        // Root-hop context: no parent span.
        let root =
            Envelope::request("StartNegotiation", Element::new("x")).with_trace(TraceContext {
                trace_id: 1,
                span_id: 2,
                parent_span_id: None,
            });
        let back = Envelope::from_xml(&root.to_xml()).unwrap();
        assert_eq!(back, root);

        // Untraced envelopes stay untraced through the round trip.
        let plain = Envelope::request("PolicyExchange", Element::new("x"));
        assert_eq!(Envelope::from_xml(&plain.to_xml()).unwrap().trace, None);
    }

    #[test]
    fn restamped_advances_the_hop_chain() {
        let env =
            Envelope::request("CredentialExchange", Element::new("x")).with_trace(TraceContext {
                trace_id: 9,
                span_id: 4,
                parent_span_id: Some(2),
            });
        let hop = env.restamped(6);
        assert_eq!(
            hop.trace,
            Some(TraceContext {
                trace_id: 9,
                span_id: 6,
                parent_span_id: Some(4),
            })
        );
        // Inert span guards (id 0) and untraced envelopes pass through.
        assert_eq!(env.restamped(0).trace, env.trace);
        let plain = Envelope::request("CredentialExchange", Element::new("x"));
        assert_eq!(plain.restamped(6), plain);
    }

    #[test]
    fn idempotency_key_roundtrips() {
        let env = Envelope::request("CredentialExchange", Element::new("x"))
            .with_negotiation(3)
            .with_idempotency(0xDEAD_BEEF);
        let back = Envelope::from_xml(&env.to_xml()).unwrap();
        assert_eq!(back.idempotency_key, Some(0xDEAD_BEEF));
        assert_eq!(back, env);
    }
}
