//! The in-process service bus.
//!
//! The prototype combined "several Web services for managing VOs" over a
//! SOA (§6.1); the bus plays the role of the SOAP transport + service
//! registry: endpoints register under a URL-like name, callers dispatch
//! envelopes, and every call is charged one SOAP round trip on the shared
//! [`SimClock`].

use crate::envelope::{Envelope, Fault};
use crate::simclock::{CostKind, SimClock};
use crate::wire;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A service endpoint: handles envelopes for its registered operations.
pub trait ServiceEndpoint: Send + Sync {
    /// Handle one request envelope.
    fn handle(&self, request: &Envelope) -> Result<Envelope, Fault>;

    /// The operations this endpoint serves (for discovery/diagnostics).
    fn operations(&self) -> Vec<String>;

    /// Notification that the simulated process hosting this endpoint
    /// crashed and restarted: volatile state (in-flight sessions) should be
    /// discarded, durable state (the database) survives. Default: no-op.
    fn on_crash(&self) {}
}

/// Anything a client can dispatch envelopes through: the bare
/// [`ServiceBus`], or a fault-injecting wrapper around it (see the
/// `trust-vo-netsim` crate). Client-side drivers ([`crate::client`],
/// `vo::formation`) are written against this trait so the same code runs on
/// a perfect transport and on a lossy one.
pub trait Transport: Send + Sync {
    /// Dispatch a request to a service.
    fn call(&self, service: &str, request: &Envelope) -> Result<Envelope, Fault>;

    /// The clock this transport charges latency to.
    fn clock(&self) -> &SimClock;
}

/// An admission gate consulted by [`ServiceBus::call`] *before* any
/// dispatch work (including the SOAP round-trip charge): return `Err` to
/// refuse the call without it ever reaching the wire. Implemented by the
/// `trust-vo-admission` crate's per-party flow-budget gate; the trait
/// lives here so `soa` needs no dependency on the admission layer.
///
/// Rejections are free in sim-time by design: a refused call never
/// occupied the transport, so a flooding party throttles *itself* without
/// inflating the shared clock that honest parties' latency is measured on.
pub trait CallGate: Send + Sync {
    /// Admit or refuse one call. `Err` is returned to the caller verbatim
    /// (use [`Fault::budget_exhausted`](crate::envelope::Fault::budget_exhausted)
    /// for flow-budget refusals so clients get the retry-after hint).
    fn admit(&self, service: &str, request: &Envelope) -> Result<(), Fault>;
}

/// The service bus: a registry plus dispatcher.
#[derive(Clone)]
pub struct ServiceBus {
    endpoints: Arc<RwLock<BTreeMap<String, Arc<dyn ServiceEndpoint>>>>,
    gate: Arc<RwLock<Option<Arc<dyn CallGate>>>>,
    /// Per-bus wire-path override; `None` follows the `TRUST_VO_WIRE`
    /// environment switch. Shared across clones like the registry.
    wire: Arc<RwLock<Option<bool>>>,
    clock: SimClock,
}

impl ServiceBus {
    /// A bus with the given clock.
    pub fn new(clock: SimClock) -> Self {
        ServiceBus {
            endpoints: Arc::new(RwLock::new(BTreeMap::new())),
            gate: Arc::new(RwLock::new(None)),
            wire: Arc::new(RwLock::new(None)),
            clock,
        }
    }

    /// Install (or replace) the admission gate consulted by every call.
    /// Shared across clones of this bus, like the endpoint registry.
    pub fn set_gate(&self, gate: Arc<dyn CallGate>) {
        *self.gate.write() = Some(gate);
    }

    /// Remove the admission gate: every call is admitted again.
    pub fn clear_gate(&self) {
        *self.gate.write() = None;
    }

    /// Register an endpoint under a service name. Re-registering replaces.
    pub fn register(&self, name: impl Into<String>, endpoint: Arc<dyn ServiceEndpoint>) {
        self.endpoints.write().insert(name.into(), endpoint);
    }

    /// Registered service names.
    pub fn services(&self) -> Vec<String> {
        self.endpoints.read().keys().cloned().collect()
    }

    /// Look up a registered endpoint (used by transport wrappers to deliver
    /// out-of-band notifications such as crash/restart).
    pub fn endpoint(&self, name: &str) -> Option<Arc<dyn ServiceEndpoint>> {
        self.endpoints.read().get(name).cloned()
    }

    /// Force the wire path on or off for this bus (and its clones),
    /// overriding the `TRUST_VO_WIRE` environment switch. Benches use
    /// `set_wire(false)` to build the explicit in-process reference bus
    /// the kill-switch is byte-compared against.
    pub fn set_wire(&self, enabled: bool) {
        *self.wire.write() = Some(enabled);
    }

    /// Whether calls on this bus cross the byte boundary: the per-bus
    /// override if set, else the `TRUST_VO_WIRE` environment switch.
    pub fn wire_active(&self) -> bool {
        self.wire.read().unwrap_or_else(wire::wire_enabled)
    }

    /// Consult the admission gate for one call, without dispatching.
    /// `Err` is the gate's refusal, returned before any encoding or
    /// simulated latency: a refused message never occupies the wire.
    pub fn admit(&self, service: &str, request: &Envelope) -> Result<(), Fault> {
        let gate = self.gate.read().clone();
        if let Some(gate) = gate {
            gate.admit(service, request)?;
        }
        Ok(())
    }

    /// Dispatch a request to a service. Charges one SOAP round trip.
    ///
    /// When an admission gate is installed (see [`ServiceBus::set_gate`])
    /// it is consulted first; a refused call returns the gate's fault
    /// without charging the round trip *or encoding a single byte* — the
    /// message never reached the wire.
    ///
    /// With the wire path active (see [`ServiceBus::wire_active`] and
    /// [`crate::wire`]) the admitted request then crosses a real byte
    /// boundary: its cached canonical encoding is length-framed with a
    /// CRC, unframed and decoded on the service side, dispatched, and
    /// the reply — response or fault — crosses back the same way.
    /// `bus.wire.frames` / `bus.wire.tx_bytes` / `bus.wire.rx_bytes`
    /// counters account the traffic. A frame that fails its checksum or
    /// decode surfaces as a typed transport fault. The boundary charges
    /// no simulated latency of its own (the SOAP round-trip cost already
    /// models the hop), so sim-time, spans, and outcomes are identical
    /// with the wire on or off — ci.sh pins the byte-identity.
    ///
    /// On a traced request (see [`Envelope::trace`]) the dispatch is
    /// wrapped in a `bus.dispatch` span parented under the sending hop's
    /// span, and the envelope is re-stamped so endpoint-side spans parent
    /// under the dispatch.
    pub fn call(&self, service: &str, request: &Envelope) -> Result<Envelope, Fault> {
        self.admit(service, request)?;
        if !self.wire_active() {
            return self.dispatch(service, request);
        }
        // Client side: one framed record around the cached canonical
        // payload. Encoding happens only after admission.
        let request_frame = wire::frame_envelope(request);
        let obs = self.clock.collector();
        if obs.is_enabled() {
            obs.counter_add("bus.wire.frames", 1);
            obs.counter_add("bus.wire.tx_bytes", request_frame.len() as u64);
        }
        // Service side: unframe + decode before the endpoint sees it.
        let delivered = wire::unframe_envelope(&request_frame)
            .ok_or_else(|| Fault::transport("WireDecode", "request frame torn or corrupt"))?;
        let reply = self.dispatch(service, &delivered);
        let reply_frame = wire::frame_reply(&reply);
        if obs.is_enabled() {
            obs.counter_add("bus.wire.frames", 1);
            obs.counter_add("bus.wire.rx_bytes", reply_frame.len() as u64);
        }
        wire::unframe_reply(&reply_frame).unwrap_or_else(|| {
            Err(Fault::transport(
                "WireDecode",
                "reply frame torn or corrupt",
            ))
        })
    }

    /// The in-process dispatch behind [`ServiceBus::call`]: charge,
    /// span, endpoint. The admission gate has already been consulted and
    /// the wire boundary (if any) already crossed — the `shard` module's
    /// dispatcher calls this after unframing on its own thread.
    pub(crate) fn dispatch(&self, service: &str, request: &Envelope) -> Result<Envelope, Fault> {
        self.clock.charge(CostKind::SoapRoundTrip);
        let obs = self.clock.collector();
        if obs.is_enabled() {
            obs.counter_add("bus.calls", 1);
        }
        let span = match &request.trace {
            Some(trace) if obs.is_enabled() => {
                let mut span = obs.span_linked("bus.dispatch", trace.link());
                span.field("service", service);
                span.field("operation", request.operation.as_str());
                Some(span)
            }
            _ => None,
        };
        let endpoint = {
            let guard = self.endpoints.read();
            guard.get(service).cloned()
        };
        let result = match endpoint {
            Some(ep) => match &span {
                Some(span) => ep.handle(&request.restamped(span.id().unwrap_or(0))),
                None => ep.handle(request),
            },
            None => Err(Fault::no_such_service(service)),
        };
        drop(span);
        if obs.is_enabled() {
            if result.is_err() {
                obs.counter_add("bus.faults", 1);
            }
            obs.event(
                "bus.call",
                vec![
                    ("service".to_string(), service.into()),
                    ("operation".to_string(), request.operation.as_str().into()),
                    ("ok".to_string(), result.is_ok().into()),
                ],
            );
        }
        result
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }
}

impl Transport for ServiceBus {
    fn call(&self, service: &str, request: &Envelope) -> Result<Envelope, Fault> {
        ServiceBus::call(self, service, request)
    }

    fn clock(&self) -> &SimClock {
        ServiceBus::clock(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simclock::CostModel;
    use trust_vo_credential::Timestamp;
    use trust_vo_xmldoc::Element;

    struct Echo;

    impl ServiceEndpoint for Echo {
        fn handle(&self, request: &Envelope) -> Result<Envelope, Fault> {
            if request.operation == "fail" {
                return Err(Fault::new("Boom", "requested failure"));
            }
            Ok(Envelope::request(
                format!("{}Response", request.operation),
                request.body.clone(),
            ))
        }

        fn operations(&self) -> Vec<String> {
            vec!["echo".into(), "fail".into()]
        }
    }

    fn bus() -> ServiceBus {
        ServiceBus::new(SimClock::new(CostModel::paper_testbed(), Timestamp(0)))
    }

    #[test]
    fn dispatch_reaches_endpoint() {
        let bus = bus();
        bus.register("echo-svc", Arc::new(Echo));
        let resp = bus
            .call(
                "echo-svc",
                &Envelope::request("echo", Element::new("hello")),
            )
            .unwrap();
        assert_eq!(resp.operation, "echoResponse");
        assert_eq!(resp.body.name, "hello");
    }

    #[test]
    fn unknown_service_faults() {
        let err = bus()
            .call("ghost", &Envelope::request("x", Element::new("b")))
            .unwrap_err();
        // Pinned: an unregistered service is a *typed* fault, not a generic
        // application string — callers branch on the kind, not the text.
        assert_eq!(err.kind, crate::envelope::FaultKind::NoSuchService);
        assert_eq!(err.code, "NoSuchService");
        assert_eq!(err.reason, "service 'ghost' not registered");
        assert!(!err.is_transport());
    }

    #[test]
    fn bus_implements_transport() {
        fn dispatch<T: Transport>(t: &T) -> Result<Envelope, Fault> {
            t.call("echo-svc", &Envelope::request("echo", Element::new("b")))
        }
        let bus = bus();
        bus.register("echo-svc", Arc::new(Echo));
        assert!(dispatch(&bus).is_ok());
        assert!(bus.endpoint("echo-svc").is_some());
        assert!(bus.endpoint("ghost").is_none());
        // Default crash notification is a no-op and must not panic.
        bus.endpoint("echo-svc").unwrap().on_crash();
    }

    #[test]
    fn endpoint_faults_propagate() {
        let bus = bus();
        bus.register("echo-svc", Arc::new(Echo));
        let err = bus
            .call("echo-svc", &Envelope::request("fail", Element::new("b")))
            .unwrap_err();
        assert_eq!(err.code, "Boom");
    }

    #[test]
    fn every_call_charges_a_roundtrip() {
        let bus = bus();
        bus.register("echo-svc", Arc::new(Echo));
        let before = bus.clock().elapsed();
        let _ = bus.call("echo-svc", &Envelope::request("echo", Element::new("b")));
        let _ = bus.call("ghost", &Envelope::request("echo", Element::new("b")));
        assert_eq!(
            bus.clock().elapsed().0 - before.0,
            (bus.clock().model().cost_of(CostKind::SoapRoundTrip) * 2).0
        );
    }

    #[test]
    fn gate_refusal_is_free_and_shared_across_clones() {
        struct DenyOp(String);
        impl CallGate for DenyOp {
            fn admit(&self, _service: &str, request: &Envelope) -> Result<(), Fault> {
                if request.operation == self.0 {
                    Err(Fault::budget_exhausted("tester", 1_000))
                } else {
                    Ok(())
                }
            }
        }
        let bus = bus();
        bus.register("echo-svc", Arc::new(Echo));
        let clone = bus.clone();
        bus.set_gate(Arc::new(DenyOp("echo".into())));
        let before = bus.clock().elapsed();
        // Refused via the clone too (gate state is shared), and the
        // refusal charges nothing: the message never reached the wire.
        let err = clone
            .call("echo-svc", &Envelope::request("echo", Element::new("b")))
            .unwrap_err();
        assert_eq!(err.kind, crate::envelope::FaultKind::BudgetExhausted);
        assert_eq!(err.retry_after_us, Some(1_000));
        assert_eq!(bus.clock().elapsed(), before);
        // Other operations pass and pay the usual round trip.
        assert!(bus
            .call("echo-svc", &Envelope::request("other", Element::new("b")))
            .is_ok());
        assert!(bus.clock().elapsed() > before);
        // Clearing the gate admits everything again.
        bus.clear_gate();
        assert!(clone
            .call("echo-svc", &Envelope::request("echo", Element::new("b")))
            .is_ok());
    }

    #[test]
    fn services_lists_registrations() {
        let bus = bus();
        bus.register("b-svc", Arc::new(Echo));
        bus.register("a-svc", Arc::new(Echo));
        assert_eq!(bus.services(), ["a-svc", "b-svc"]);
        assert_eq!(Echo.operations().len(), 2);
    }
}
