//! The simulated-latency clock.
//!
//! The paper's Fig. 9 numbers were measured on a 2006-era stack: a
//! Pentium 4 2 GHz running Tomcat + Axis SOAP + Oracle, with a Java GUI
//! driving the join. The dominant costs — SOAP marshalling and HTTP
//! round-trips, database queries, JSP page flows, certificate operations —
//! do not exist in an in-process Rust reproduction, so this module *charges*
//! them to a virtual clock instead. The constants in
//! [`CostModel::paper_testbed`] are calibrated so the regenerated Fig. 9
//! preserves the paper's shape: join ≈ 3 s, join-with-TN ≈ 4 s, standalone
//! TN ≈ 1 s (see `EXPERIMENTS.md` for the measured values).
//!
//! The clock also drives credential validity: [`SimClock::timestamp`]
//! converts the virtual instant into the [`Timestamp`] negotiations check
//! validity windows against.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use trust_vo_credential::Timestamp;
use trust_vo_obs::{Collector, Counter, Value};

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// As (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// As (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
}

// Saturating arithmetic throughout: a pathological cost model (u64::MAX
// per operation) must pin the clock at the end of time, not panic in
// debug builds mid-negotiation.
impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl std::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1} ms", self.as_millis_f64())
    }
}

/// What kind of work is being charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CostKind {
    /// One SOAP request/response round trip (marshalling + HTTP).
    SoapRoundTrip,
    /// One database query (policy/credential fetch or insert).
    DbQuery,
    /// Verifying one signature (credential or ownership proof).
    SignatureVerify,
    /// Producing one signature (membership certificate, ownership proof).
    SignatureSign,
    /// Evaluating one disclosure policy against a profile.
    PolicyEvaluation,
    /// Mapping one concept through the ontology engine.
    OntologyMapping,
    /// One GUI/JSP step of the VO toolkit's join flow.
    GuiStep,
    /// Issuing one X.509 membership certificate.
    CertificateIssue,
}

impl CostKind {
    /// All kinds, for report iteration.
    pub const ALL: [CostKind; 8] = [
        CostKind::SoapRoundTrip,
        CostKind::DbQuery,
        CostKind::SignatureVerify,
        CostKind::SignatureSign,
        CostKind::PolicyEvaluation,
        CostKind::OntologyMapping,
        CostKind::GuiStep,
        CostKind::CertificateIssue,
    ];

    /// Position of this kind in [`CostKind::ALL`] (fixed counter slot).
    fn slot(self) -> usize {
        match self {
            CostKind::SoapRoundTrip => 0,
            CostKind::DbQuery => 1,
            CostKind::SignatureVerify => 2,
            CostKind::SignatureSign => 3,
            CostKind::PolicyEvaluation => 4,
            CostKind::OntologyMapping => 5,
            CostKind::GuiStep => 6,
            CostKind::CertificateIssue => 7,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            CostKind::SoapRoundTrip => "soap-roundtrip",
            CostKind::DbQuery => "db-query",
            CostKind::SignatureVerify => "signature-verify",
            CostKind::SignatureSign => "signature-sign",
            CostKind::PolicyEvaluation => "policy-evaluation",
            CostKind::OntologyMapping => "ontology-mapping",
            CostKind::GuiStep => "gui-step",
            CostKind::CertificateIssue => "certificate-issue",
        }
    }
}

/// Per-operation latencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    costs: BTreeMap<CostKind, SimDuration>,
}

impl CostModel {
    /// Latencies calibrated to the paper's testbed (P4 2 GHz, Tomcat +
    /// Axis + Oracle, 2006 LAN). These are the knobs that make the
    /// regenerated Fig. 9 match the paper's *shape*; absolute values are
    /// documented estimates, not measurements.
    pub fn paper_testbed() -> Self {
        let mut costs = BTreeMap::new();
        costs.insert(CostKind::SoapRoundTrip, SimDuration::from_millis(110));
        costs.insert(CostKind::DbQuery, SimDuration::from_millis(45));
        costs.insert(CostKind::SignatureVerify, SimDuration::from_millis(18));
        costs.insert(CostKind::SignatureSign, SimDuration::from_millis(25));
        costs.insert(CostKind::PolicyEvaluation, SimDuration::from_millis(6));
        costs.insert(CostKind::OntologyMapping, SimDuration::from_millis(12));
        costs.insert(CostKind::GuiStep, SimDuration::from_millis(430));
        costs.insert(CostKind::CertificateIssue, SimDuration::from_millis(40));
        CostModel { costs }
    }

    /// A zero-cost model (pure CPU measurement).
    pub fn free() -> Self {
        CostModel {
            costs: BTreeMap::new(),
        }
    }

    /// Override one latency.
    pub fn set(&mut self, kind: CostKind, cost: SimDuration) {
        self.costs.insert(kind, cost);
    }

    /// The latency of one operation.
    pub fn cost_of(&self, kind: CostKind) -> SimDuration {
        self.costs.get(&kind).copied().unwrap_or(SimDuration::ZERO)
    }
}

/// Lock-free clock state: total elapsed microseconds plus one counter
/// slot per [`CostKind`]. Charging from many admission threads is a pair
/// of relaxed `fetch_add`s — no mutex, no contention-induced serialization
/// of the parallel formation fan-out.
#[derive(Debug, Default)]
struct ClockState {
    elapsed_micros: AtomicU64,
    counts: [AtomicU64; 8],
}

/// Observability hooks for a clock: the collector plus one pre-fetched
/// counter handle per [`CostKind`], so charging never touches the
/// registry lock.
#[derive(Debug)]
struct ClockObs {
    collector: Collector,
    charge_counters: [Counter; 8],
}

/// A shareable simulated clock: charge operations, read elapsed time.
#[derive(Debug, Clone)]
pub struct SimClock {
    model: Arc<CostModel>,
    state: Arc<ClockState>,
    /// The virtual calendar instant at elapsed == 0.
    epoch: Timestamp,
    /// Shared across clones so attaching after cloning (the usual order:
    /// scenario builders clone the clock into every service first) still
    /// observes charges from every holder.
    obs: Arc<OnceLock<ClockObs>>,
}

impl SimClock {
    /// A clock with the given model, starting at `epoch`.
    pub fn new(model: CostModel, epoch: Timestamp) -> Self {
        SimClock {
            model: Arc::new(model),
            state: Arc::new(ClockState::default()),
            epoch,
            obs: Arc::new(OnceLock::new()),
        }
    }

    /// Attaches an observability collector to this clock (and all its
    /// clones, past and future). The collector's simulated-time source is
    /// pointed at this clock, per-kind `sim.charge.*` counters are
    /// registered, and every subsequent charge emits a `sim.charge` event
    /// tagged by cost category. No-op for a disabled collector; the first
    /// attachment wins.
    pub fn attach_obs(&self, collector: &Collector) {
        let Some(registry) = collector.registry() else {
            return;
        };
        let state = Arc::clone(&self.state);
        collector.set_sim_source(move || state.elapsed_micros.load(Ordering::Relaxed));
        let charge_counters =
            CostKind::ALL.map(|kind| registry.counter(&format!("sim.charge.{}", kind.label())));
        let _ = self.obs.set(ClockObs {
            collector: collector.clone(),
            charge_counters,
        });
    }

    /// The collector attached via [`SimClock::attach_obs`], or a disabled
    /// one. Subsystems holding a clock clone use this as their
    /// observability sink.
    pub fn collector(&self) -> Collector {
        self.obs
            .get()
            .map(|o| o.collector.clone())
            .unwrap_or_else(Collector::disabled)
    }

    /// A paper-testbed clock starting at the paper's credential epoch.
    pub fn paper_default() -> Self {
        Self::new(
            CostModel::paper_testbed(),
            Timestamp::from_ymd_hms(2009, 10, 26, 21, 32, 52),
        )
    }

    /// Charge one operation.
    pub fn charge(&self, kind: CostKind) {
        self.charge_n(kind, 1);
    }

    /// Charge `n` operations of one kind (lock-free).
    pub fn charge_n(&self, kind: CostKind, n: u64) {
        if n == 0 {
            return;
        }
        let cost = self.model.cost_of(kind) * n;
        self.state
            .elapsed_micros
            .fetch_add(cost.0, Ordering::Relaxed);
        self.state.counts[kind.slot()].fetch_add(n, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.charge_counters[kind.slot()].add(n);
            obs.collector.event(
                "sim.charge",
                vec![
                    ("kind".to_string(), Value::Str(kind.label().to_string())),
                    ("n".to_string(), Value::I64(n as i64)),
                    ("cost_us".to_string(), Value::I64(cost.0 as i64)),
                ],
            );
        }
    }

    /// Total simulated time elapsed.
    pub fn elapsed(&self) -> SimDuration {
        SimDuration(self.state.elapsed_micros.load(Ordering::Relaxed))
    }

    /// The current virtual calendar instant.
    pub fn timestamp(&self) -> Timestamp {
        self.epoch.plus_seconds(self.elapsed().as_secs_f64() as i64)
    }

    /// Operation counts by kind (only kinds charged at least once).
    pub fn counts(&self) -> BTreeMap<CostKind, u64> {
        CostKind::ALL
            .into_iter()
            .filter_map(|kind| {
                let n = self.state.counts[kind.slot()].load(Ordering::Relaxed);
                (n > 0).then_some((kind, n))
            })
            .collect()
    }

    /// Reset elapsed time and counters (a fresh measurement run).
    pub fn reset(&self) {
        self.state.elapsed_micros.store(0, Ordering::Relaxed);
        for slot in &self.state.counts {
            slot.store(0, Ordering::Relaxed);
        }
    }

    /// Advance the virtual calendar without charging an operation (used by
    /// the VO operation phase to let months pass so certificates expire).
    pub fn advance(&self, duration: SimDuration) {
        self.state
            .elapsed_micros
            .fetch_add(duration.0, Ordering::Relaxed);
    }

    /// The cost model in effect.
    pub fn model(&self) -> &CostModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let clock = SimClock::new(CostModel::paper_testbed(), Timestamp(0));
        clock.charge(CostKind::SoapRoundTrip);
        clock.charge_n(CostKind::DbQuery, 2);
        assert_eq!(clock.elapsed(), SimDuration::from_millis(110 + 90));
        let counts = clock.counts();
        assert_eq!(counts[&CostKind::SoapRoundTrip], 1);
        assert_eq!(counts[&CostKind::DbQuery], 2);
    }

    #[test]
    fn free_model_charges_nothing() {
        let clock = SimClock::new(CostModel::free(), Timestamp(0));
        clock.charge_n(CostKind::GuiStep, 100);
        assert_eq!(clock.elapsed(), SimDuration::ZERO);
        assert_eq!(clock.counts()[&CostKind::GuiStep], 100);
    }

    #[test]
    fn timestamp_advances_with_elapsed() {
        let clock = SimClock::new(CostModel::paper_testbed(), Timestamp(1000));
        assert_eq!(clock.timestamp(), Timestamp(1000));
        clock.advance(SimDuration::from_millis(2500));
        assert_eq!(clock.timestamp(), Timestamp(1002));
    }

    #[test]
    fn reset_clears_state() {
        let clock = SimClock::paper_default();
        clock.charge(CostKind::GuiStep);
        clock.reset();
        assert_eq!(clock.elapsed(), SimDuration::ZERO);
        assert!(clock.counts().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let clock = SimClock::paper_default();
        let clone = clock.clone();
        clone.charge(CostKind::DbQuery);
        assert_eq!(clock.counts()[&CostKind::DbQuery], 1);
    }

    #[test]
    fn concurrent_charges_lose_nothing() {
        let clock = SimClock::new(CostModel::paper_testbed(), Timestamp(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let clock = clock.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        clock.charge(CostKind::PolicyEvaluation);
                    }
                });
            }
        });
        assert_eq!(clock.counts()[&CostKind::PolicyEvaluation], 8000);
        assert_eq!(clock.elapsed(), SimDuration::from_millis(6) * 8000);
    }

    #[test]
    fn duration_arithmetic_and_display() {
        let d = SimDuration::from_millis(1) + SimDuration::from_micros(500);
        assert_eq!(d.as_millis_f64(), 1.5);
        assert_eq!(d.to_string(), "1.5 ms");
        assert_eq!((SimDuration::from_millis(2) * 3).as_millis_f64(), 6.0);
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_arithmetic_saturates_instead_of_panicking() {
        // Regression: Add/AddAssign/Mul used unchecked arithmetic, so a
        // pathological cost model overflowed (panicking in debug builds).
        let max = SimDuration(u64::MAX);
        assert_eq!(max + SimDuration::from_millis(1), max);
        let mut acc = SimDuration(u64::MAX - 1);
        acc += SimDuration::from_micros(5);
        assert_eq!(acc, max);
        assert_eq!(max * 3, max);
        assert_eq!(SimDuration(u64::MAX / 2 + 1) * 2, max);

        // A clock driven by such a model pins at the end of time too.
        let mut model = CostModel::free();
        model.set(CostKind::DbQuery, max);
        let clock = SimClock::new(model, Timestamp(0));
        clock.charge_n(CostKind::DbQuery, 7);
        assert_eq!(clock.counts()[&CostKind::DbQuery], 7);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn attached_collector_sees_charges_from_every_clone() {
        let clock = SimClock::paper_default();
        let clone = clock.clone(); // cloned before attach
        let collector = Collector::new();
        clock.attach_obs(&collector);
        clone.charge_n(CostKind::DbQuery, 3);
        clone.charge(CostKind::SoapRoundTrip);
        let snap = collector.metrics();
        assert_eq!(snap.counter("sim.charge.db-query"), 3);
        assert_eq!(snap.counter("sim.charge.soap-roundtrip"), 1);
        // Sim-time source reports the clock's elapsed micros.
        assert_eq!(collector.sim_now(), clock.elapsed().0);
        // Events carry the cost category.
        let events = collector.records();
        assert_eq!(events.len(), 2);
        // Clock clones all report the same attached collector.
        assert!(clone.collector().is_enabled());
    }

    #[test]
    fn unattached_clock_reports_disabled_collector() {
        let clock = SimClock::paper_default();
        assert!(!clock.collector().is_enabled());
        clock.attach_obs(&Collector::disabled());
        assert!(!clock.collector().is_enabled());
    }

    #[test]
    fn paper_testbed_covers_all_kinds() {
        let model = CostModel::paper_testbed();
        for kind in CostKind::ALL {
            assert!(model.cost_of(kind) > SimDuration::ZERO, "{}", kind.label());
        }
    }
}
