//! The TN web service.
//!
//! "The TN Web service provides three different operations,
//! StartNegotiation, PolicyExchange and CredentialExchange, each
//! corresponding to one of the main phases of the negotiation process.
//! StartNegotiation … assigns a unique id to the negotiation process and
//! opens the connection with \[the\] database. … PolicyExchange checks if
//! the database contains disclosure policies protecting the credentials
//! requested … CredentialExchange receives … the counterpart's credential
//! … verifies the validity … then selects the next credential to be sent."
//! (§6.2)
//!
//! This implementation hosts the negotiation data of registered parties
//! (the Host Edition registers members, §6.1), persists their X-Profiles
//! and policies in the document [`Database`], and drives the
//! [`trust_vo_negotiation`] engine behind the three service operations —
//! charging the [`SimClock`] for every SOAP, DB, and crypto step so the
//! Fig. 9 bench can read realistic virtual latencies.

use crate::bus::ServiceEndpoint;
use crate::envelope::{Envelope, Fault};
use crate::simclock::{CostKind, SimClock};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use trust_vo_credential::{Credential, TimeRange};
use trust_vo_negotiation::{
    evaluate_policies, message::Side, strategy::CredentialFormat, view::TrustSequence,
    NegotiationConfig, Party, PolicyPhase, ResumeCheckpoint, ResumeToken, Strategy,
};
use trust_vo_obs::SpanLink;
use trust_vo_store::Database;
use trust_vo_xmldoc::{Element, Node};

/// Default lifetime of a resume token, in simulated seconds.
pub const DEFAULT_RESUME_TTL_SECS: u64 = 3_600;

#[derive(Debug)]
enum SessionState {
    Started,
    Sequenced { phase: PolicyPhase, next: usize },
    Completed,
    Failed(String),
}

#[derive(Debug)]
struct Session {
    requester: String,
    controller: String,
    resource: String,
    strategy: Strategy,
    state: SessionState,
    /// Whether the client asked for checkpoint/resume support at start.
    resumable: bool,
    /// Durable checkpoint slot: stable across crash/resume cycles, so
    /// every re-checkpoint of the same negotiation overwrites one row.
    ck_id: u64,
}

/// The TN web service endpoint.
pub struct TnService {
    clock: SimClock,
    db: Database,
    parties: RwLock<BTreeMap<String, Party>>,
    /// Volatile: a simulated crash (see [`ServiceEndpoint::on_crash`])
    /// wipes in-flight sessions. Profiles, policies, and checkpoints live
    /// in the durable [`Database`] and survive.
    sessions: Mutex<BTreeMap<u64, Session>>,
    next_id: AtomicU64,
    resumed: AtomicU64,
    resume_ttl_secs: AtomicU64,
}

impl TnService {
    /// An empty service on the given clock and database. If the clock has
    /// an attached collector, the database inherits it so per-collection
    /// op latencies land in the same registry.
    pub fn new(clock: SimClock, db: Database) -> Self {
        let collector = clock.collector();
        if collector.is_enabled() {
            db.attach_obs(&collector);
        }
        TnService {
            clock,
            db,
            parties: RwLock::new(BTreeMap::new()),
            sessions: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            resumed: AtomicU64::new(0),
            resume_ttl_secs: AtomicU64::new(DEFAULT_RESUME_TTL_SECS),
        }
    }

    /// How many negotiations were resumed from a checkpoint so far.
    pub fn resumed_count(&self) -> u64 {
        self.resumed.load(Ordering::Relaxed)
    }

    /// Change the resume-token lifetime (simulated seconds). Tokens issued
    /// after the call use the new value.
    pub fn set_resume_ttl_secs(&self, secs: u64) {
        self.resume_ttl_secs.store(secs, Ordering::Relaxed);
    }

    /// Register a party: its profile and policies are persisted into the
    /// service database (one insert per document, charged as DB queries).
    pub fn register_party(&self, party: Party) {
        let profile_doc = party.profile.to_xml();
        self.db.with_collection("profiles", |c| {
            c.put(party.name.as_str(), profile_doc);
        });
        self.clock.charge(CostKind::DbQuery);
        let policy_docs: Vec<Element> = party
            .policies
            .iter()
            .map(trust_vo_policy::xml::policy_to_xml)
            .collect();
        self.clock
            .charge_n(CostKind::DbQuery, policy_docs.len() as u64);
        let fresh_count = policy_docs.len();
        self.db.with_collection("policies", |c| {
            for (i, doc) in policy_docs.into_iter().enumerate() {
                c.put(format!("{}#{}", party.name, i).as_str(), doc);
            }
            // Retire rows beyond the new policy count so a re-registration
            // with fewer policies leaves no stale documents live.
            let stale: Vec<_> = c
                .ids()
                .filter(|id| {
                    id.0.strip_prefix(&format!("{}#", party.name))
                        .and_then(|suffix| suffix.parse::<usize>().ok())
                        .is_some_and(|i| i >= fresh_count)
                })
                .cloned()
                .collect();
            for id in stale {
                c.delete(&id);
            }
        });
        self.parties.write().insert(party.name.clone(), party);
    }

    /// Snapshot of a registered party (for tests and the VO toolkit).
    pub fn party(&self, name: &str) -> Option<Party> {
        self.parties.read().get(name).cloned()
    }

    /// Update a registered party in place (e.g. new credential after
    /// re-issuance during the operation phase).
    pub fn update_party(&self, party: Party) {
        self.register_party(party);
    }

    /// The service database (shared with the VO toolkit).
    pub fn database(&self) -> &Database {
        &self.db
    }

    fn config(&self, strategy: Strategy) -> NegotiationConfig {
        let mut cfg = NegotiationConfig::new(strategy, self.clock.timestamp());
        cfg.format = CredentialFormat::Xtnl;
        cfg
    }

    /// Persist a checkpoint for a resumable session into the durable
    /// `checkpoints` collection (slot `ck_id`, overwritten on every
    /// progress step) and return the signed [`ResumeToken`] as XML to
    /// embed in the response. Charges one DB write plus one signature,
    /// both under a `tn.checkpoint` span linked at `link` so checkpoint
    /// I/O is separable from the rest of the operation in attribution.
    #[allow(clippy::too_many_arguments)]
    fn checkpoint(
        &self,
        link: SpanLink,
        ck_id: u64,
        requester: &str,
        controller: &str,
        resource: &str,
        strategy: Strategy,
        sequence: &TrustSequence,
        next: usize,
    ) -> Element {
        let obs = self.clock.collector();
        let mut span = obs.span_linked("tn.checkpoint", link);
        span.field("slot", ck_id as i64);
        span.field("next", next);
        let ck = ResumeCheckpoint::new(
            requester,
            controller,
            resource,
            strategy,
            sequence.clone(),
            next,
        );
        let digest = ck.digest();
        self.db.with_collection("checkpoints", |c| {
            c.put(ck_id.to_string().as_str(), ck.to_xml());
        });
        self.clock.charge(CostKind::DbQuery);
        let (holder_key, issuer_keys) = {
            let parties = self.parties.read();
            (
                parties.get(requester).expect("validated").keys.public,
                parties.get(controller).expect("validated").keys.clone(),
            )
        };
        let now = self.clock.timestamp();
        let ttl = self.resume_ttl_secs.load(Ordering::Relaxed);
        let validity = TimeRange::new(now, now.plus_seconds(ttl as i64));
        self.clock.charge(CostKind::SignatureSign);
        ResumeToken::issue(
            ck_id,
            requester,
            holder_key,
            controller,
            &issuer_keys,
            resource,
            digest,
            validity,
        )
        .to_xml()
    }

    /// Retire the checkpoint slot of a finished negotiation.
    fn drop_checkpoint(&self, ck_id: u64) {
        self.db.with_collection("checkpoints", |c| {
            c.delete(&trust_vo_store::DocId(ck_id.to_string()));
        });
        self.clock.charge(CostKind::DbQuery);
    }

    fn start_negotiation(&self, request: &Envelope) -> Result<Envelope, Fault> {
        let body = &request.body;
        let get = |name: &str| -> Result<String, Fault> {
            body.child_text(name)
                .ok_or_else(|| Fault::new("BadRequest", format!("missing <{name}>")))
        };
        let strategy_name = get("strategy")?;
        let strategy = Strategy::from_wire_name(&strategy_name).ok_or_else(|| {
            Fault::new("BadRequest", format!("unknown strategy '{strategy_name}'"))
        })?;
        let requester = get("requester")?;
        let controller = get("counterpartUrl")?;
        let resource = get("resource")?;
        {
            let parties = self.parties.read();
            for name in [&requester, &controller] {
                if !parties.contains_key(name) {
                    return Err(Fault::new(
                        "UnknownParty",
                        format!("party '{name}' not registered"),
                    ));
                }
            }
        }
        // "opens the connection with \[the\] database".
        self.clock.charge(CostKind::DbQuery);
        let resumable = body.get_attr("resumable") == Some("true");
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sessions.lock().insert(
            id,
            Session {
                requester,
                controller,
                resource,
                strategy,
                state: SessionState::Started,
                resumable,
                ck_id: id,
            },
        );
        Ok(Envelope::request(
            "StartNegotiationResponse",
            Element::new("StartNegotiationResponse")
                .child(Element::new("negotiationId").text(id.to_string())),
        )
        .with_negotiation(id))
    }

    fn policy_exchange(&self, request: &Envelope) -> Result<Envelope, Fault> {
        let id = request
            .negotiation_id
            .ok_or_else(|| Fault::new("BadRequest", "missing negotiation id"))?;
        let mut sessions = self.sessions.lock();
        let session = sessions
            .get_mut(&id)
            .ok_or_else(|| Fault::new("NoSuchNegotiation", format!("id {id} unknown")))?;
        if !matches!(session.state, SessionState::Started) {
            return Err(Fault::new("BadState", "policy exchange already performed"));
        }
        let parties = self.parties.read();
        let requester = parties.get(&session.requester).expect("validated at start");
        let controller = parties
            .get(&session.controller)
            .expect("validated at start");
        let cfg = self.config(session.strategy);
        let phase = evaluate_policies(requester, controller, &session.resource, &cfg);
        drop(parties);
        match phase {
            Ok(phase) => {
                // Charge the work phase 1 performed: one DB fetch plus one
                // evaluation per policy disclosed, and an ontology mapping
                // per concept-term encountered in either policy set.
                self.clock.charge_n(
                    CostKind::DbQuery,
                    phase.transcript.policies_disclosed as u64,
                );
                self.clock.charge_n(
                    CostKind::PolicyEvaluation,
                    phase.transcript.policies_disclosed as u64,
                );
                let concept_terms =
                    self.concept_term_count(&session.requester, &session.controller);
                self.clock
                    .charge_n(CostKind::OntologyMapping, concept_terms);
                let mut seq_el = Element::new("trustSequence");
                for d in phase.sequence.disclosures() {
                    seq_el.children.push(Node::Element(
                        Element::new("disclosure")
                            .attr("by", d.by.to_string())
                            .attr("credType", &d.cred_type)
                            .attr("credId", &d.cred_id.0),
                    ));
                }
                let mut response = Element::new("PolicyExchangeResponse")
                    .attr(
                        "policiesDisclosed",
                        phase.transcript.policies_disclosed.to_string(),
                    )
                    .attr("rounds", phase.transcript.policy_rounds.to_string())
                    .child(seq_el);
                if session.resumable {
                    // Phase 1 is the expensive part: checkpoint it now so a
                    // mid-phase-2 interruption never repeats it.
                    let token = self.checkpoint(
                        request.trace.as_ref().map(|t| t.link()).unwrap_or_default(),
                        session.ck_id,
                        &session.requester,
                        &session.controller,
                        &session.resource,
                        session.strategy,
                        &phase.sequence,
                        0,
                    );
                    response.children.push(Node::Element(token));
                }
                session.state = SessionState::Sequenced { phase, next: 0 };
                Ok(Envelope::request("PolicyExchangeResponse", response).with_negotiation(id))
            }
            Err(e) => {
                session.state = SessionState::Failed(e.to_string());
                Err(Fault::new("NoTrustSequence", e.to_string()))
            }
        }
    }

    fn concept_term_count(&self, requester: &str, controller: &str) -> u64 {
        let parties = self.parties.read();
        [requester, controller]
            .iter()
            .filter_map(|name| parties.get(*name))
            .flat_map(|p| p.policies.iter())
            .flat_map(|policy| policy.terms())
            .filter(|t| matches!(t.spec, trust_vo_policy::CredentialSpec::Concept(_)))
            .count() as u64
    }

    fn credential_exchange(&self, request: &Envelope) -> Result<Envelope, Fault> {
        let id = request
            .negotiation_id
            .ok_or_else(|| Fault::new("BadRequest", "missing negotiation id"))?;
        let mut sessions = self.sessions.lock();
        let session = sessions
            .get_mut(&id)
            .ok_or_else(|| Fault::new("NoSuchNegotiation", format!("id {id} unknown")))?;
        let SessionState::Sequenced { phase, next } = &mut session.state else {
            return Err(Fault::new("BadState", "run PolicyExchange first"));
        };
        let disclosures = phase.sequence.disclosures();
        if *next >= disclosures.len() {
            session.state = SessionState::Completed;
            if session.resumable {
                self.drop_checkpoint(session.ck_id);
            }
            return Ok(Envelope::request(
                "CredentialExchangeResponse",
                Element::new("CredentialExchangeResponse").attr("status", "completed"),
            )
            .with_negotiation(id));
        }
        let disclosure = disclosures[*next].clone();
        let parties = self.parties.read();
        let requester = parties.get(&session.requester).expect("validated");
        let controller = parties.get(&session.controller).expect("validated");
        let (sender, receiver) = match disclosure.by {
            Side::Requester => (requester, controller),
            Side::Controller => (controller, requester),
        };
        let cred: Credential = sender
            .profile
            .get(&disclosure.cred_id)
            .expect("sequence credentials exist")
            .clone();
        // Fetch + transmit + verify.
        self.clock.charge(CostKind::DbQuery);
        self.clock.charge(CostKind::SignatureVerify);
        let cfg = self.config(session.strategy);
        let nonce =
            trust_vo_negotiation::engine::session_nonce(requester, controller, &session.resource);
        let ownership = if cfg.strategy.requires_ownership_proof() {
            self.clock.charge(CostKind::SignatureSign);
            self.clock.charge(CostKind::SignatureVerify);
            Some(Credential::prove_ownership(&sender.keys, &nonce))
        } else {
            None
        };
        let check = trust_vo_negotiation::engine::verify_disclosure(
            &cred,
            receiver,
            &cfg,
            &nonce,
            ownership.as_ref(),
        );
        drop(parties);
        if let Err(cause) = check {
            let reason = cause.to_string();
            session.state = SessionState::Failed(reason.clone());
            if session.resumable {
                // A trust failure is terminal — resuming cannot fix it.
                self.drop_checkpoint(session.ck_id);
            }
            return Err(Fault::new("TrustFailure", reason));
        }
        *next += 1;
        let progressed = *next;
        let remaining = disclosures.len() - progressed;
        let sequence = (remaining > 0 && session.resumable).then(|| phase.sequence.clone());
        let status = if remaining == 0 {
            session.state = SessionState::Completed;
            if session.resumable {
                self.drop_checkpoint(session.ck_id);
            }
            "completed"
        } else {
            "in-progress"
        };
        let mut response = Element::new("CredentialExchangeResponse")
            .attr("status", status)
            .attr("remaining", remaining.to_string())
            .child(cred.to_xml());
        if let Some(sequence) = sequence {
            // Re-checkpoint after every verified disclosure: a resumed
            // session replays from here, not from the start of phase 2.
            let token = self.checkpoint(
                request.trace.as_ref().map(|t| t.link()).unwrap_or_default(),
                session.ck_id,
                &session.requester,
                &session.controller,
                &session.resource,
                session.strategy,
                &sequence,
                progressed,
            );
            response.children.push(Node::Element(token));
        }
        Ok(Envelope::request("CredentialExchangeResponse", response).with_negotiation(id))
    }

    /// `ResumeNegotiation`: verify a presented [`ResumeToken`], reload the
    /// durable checkpoint it names, and rebuild the session under a fresh
    /// negotiation id with the credential-exchange cursor restored. The
    /// token is checked for issuer signature, half-open validity at the
    /// current sim instant, and binding to the *registered* keys of both
    /// parties; the checkpoint row is cross-checked against the token's
    /// party and resource names. The controller's durable checkpoint is
    /// authoritative: if it is ahead of the checkpoint the client last saw
    /// (its response was lost in flight), resuming skips the disclosures
    /// the service already verified.
    fn resume_negotiation(&self, request: &Envelope) -> Result<Envelope, Fault> {
        let token_el = request
            .body
            .first("ResumeToken")
            .ok_or_else(|| Fault::new("BadRequest", "missing <ResumeToken>"))?;
        let token = ResumeToken::from_xml(token_el)
            .ok_or_else(|| Fault::new("BadRequest", "malformed <ResumeToken>"))?;
        {
            let parties = self.parties.read();
            let holder = parties.get(&token.holder).ok_or_else(|| {
                Fault::new(
                    "UnknownParty",
                    format!("party '{}' not registered", token.holder),
                )
            })?;
            let issuer = parties.get(&token.issuer).ok_or_else(|| {
                Fault::new(
                    "UnknownParty",
                    format!("party '{}' not registered", token.issuer),
                )
            })?;
            if token.holder_key != holder.keys.public || token.issuer_key != issuer.keys.public {
                return Err(Fault::new(
                    "InvalidToken",
                    "token keys do not match registered parties",
                ));
            }
        }
        self.clock.charge(CostKind::SignatureVerify);
        token
            .verify(self.clock.timestamp())
            .map_err(|e| Fault::new("InvalidToken", e.to_string()))?;
        self.clock.charge(CostKind::DbQuery);
        let stored = self.db.with_collection("checkpoints", |c| {
            c.get(&trust_vo_store::DocId(token.token_id.to_string()))
                .cloned()
        });
        let stored = stored.ok_or_else(|| {
            Fault::new(
                "NoSuchCheckpoint",
                format!("checkpoint slot {} is gone", token.token_id),
            )
        })?;
        let ck = ResumeCheckpoint::from_xml(&stored)
            .ok_or_else(|| Fault::new("BadCheckpoint", "stored checkpoint is malformed"))?;
        if ck.requester != token.holder
            || ck.controller != token.issuer
            || ck.resource != token.resource
        {
            return Err(Fault::new(
                "InvalidToken",
                "token does not match the stored checkpoint's session",
            ));
        }
        let (next, remaining) = (ck.next, ck.remaining());
        let (strategy, requester, controller, resource) = (
            ck.strategy,
            ck.requester.clone(),
            ck.controller.clone(),
            ck.resource.clone(),
        );
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sessions.lock().insert(
            id,
            Session {
                requester,
                controller,
                resource,
                strategy,
                state: SessionState::Sequenced {
                    phase: ck.into_phase(),
                    next,
                },
                resumable: true,
                ck_id: token.token_id,
            },
        );
        self.resumed.fetch_add(1, Ordering::Relaxed);
        let obs = self.clock.collector();
        if obs.is_enabled() {
            obs.counter_add("negotiation.resumed", 1);
        }
        Ok(Envelope::request(
            "ResumeNegotiationResponse",
            Element::new("ResumeNegotiationResponse")
                .attr("status", "resumed")
                .attr("next", next.to_string())
                .attr("remaining", remaining.to_string()),
        )
        .with_negotiation(id))
    }

    /// Is the negotiation completed successfully?
    pub fn is_completed(&self, id: u64) -> bool {
        matches!(
            self.sessions.lock().get(&id).map(|s| &s.state),
            Some(SessionState::Completed)
        )
    }

    /// The failure reason, if the negotiation failed.
    pub fn failure_reason(&self, id: u64) -> Option<String> {
        match self.sessions.lock().get(&id).map(|s| &s.state) {
            Some(SessionState::Failed(reason)) => Some(reason.clone()),
            _ => None,
        }
    }
}

impl ServiceEndpoint for TnService {
    fn handle(&self, request: &Envelope) -> Result<Envelope, Fault> {
        let obs = self.clock.collector();
        // A traced request parents the service-side span under the hop
        // that delivered it (bus dispatch / fault transport).
        let mut span = match &request.trace {
            Some(trace) => obs.span_linked("tn.operation", trace.link()),
            None => obs.span("tn.operation"),
        };
        if span.id().is_some() {
            span.field("operation", request.operation.as_str());
            let counter = match request.operation.as_str() {
                "StartNegotiation" => Some("tn.start_negotiation"),
                "PolicyExchange" => Some("tn.policy_exchange"),
                "CredentialExchange" => Some("tn.credential_exchange"),
                "ResumeNegotiation" => Some("tn.resume_negotiation"),
                _ => None,
            };
            if let Some(name) = counter {
                obs.counter_add(name, 1);
            }
        }
        // Re-stamp so spans opened inside the operation (checkpoint I/O)
        // parent under `tn.operation`; untraced requests skip the clone.
        let routed;
        let request = if request.trace.is_some() {
            routed = request.restamped(span.id().unwrap_or(0));
            &routed
        } else {
            request
        };
        let result = match request.operation.as_str() {
            "StartNegotiation" => self.start_negotiation(request),
            "PolicyExchange" => self.policy_exchange(request),
            "CredentialExchange" => self.credential_exchange(request),
            "ResumeNegotiation" => self.resume_negotiation(request),
            other => Err(Fault::new(
                "NoSuchOperation",
                format!("operation '{other}' not supported"),
            )),
        };
        if span.id().is_some() {
            span.field("ok", result.is_ok());
        }
        result
    }

    fn operations(&self) -> Vec<String> {
        vec![
            "StartNegotiation".into(),
            "PolicyExchange".into(),
            "CredentialExchange".into(),
            "ResumeNegotiation".into(),
        ]
    }

    /// A simulated crash/restart: in-flight sessions (volatile memory) are
    /// lost; the party registry, profiles, policies, and negotiation
    /// checkpoints (durable database) survive. Clients holding a resume
    /// token re-attach via `ResumeNegotiation`.
    fn on_crash(&self) {
        self.sessions.lock().clear();
        let obs = self.clock.collector();
        if obs.is_enabled() {
            obs.counter_add("tn.crashes", 1);
            obs.event("tn.crash", vec![]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simclock::CostModel;
    use trust_vo_credential::{CredentialAuthority, TimeRange, Timestamp};
    use trust_vo_policy::{DisclosurePolicy, Resource, Term};

    fn clock() -> SimClock {
        SimClock::new(
            CostModel::paper_testbed(),
            Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0),
        )
    }

    fn service_with_fig2() -> TnService {
        let mut ca = CredentialAuthority::new("AAA");
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
        let mut aircraft = Party::new("Aircraft");
        let mut aerospace = Party::new("Aerospace");
        let quality = ca
            .issue(
                "WebDesignerQuality",
                "Aerospace",
                aerospace.keys.public,
                vec![],
                window,
            )
            .unwrap();
        aerospace.profile.add(quality);
        let accr = ca
            .issue(
                "AAACreditation",
                "Aircraft",
                aircraft.keys.public,
                vec![],
                window,
            )
            .unwrap();
        aircraft.profile.add(accr);
        aircraft.policies.add(DisclosurePolicy::rule(
            "p1",
            Resource::service("VoMembership"),
            vec![Term::of_type("WebDesignerQuality")],
        ));
        aircraft.policies.add(DisclosurePolicy::deliv(
            "d1",
            Resource::credential("AAACreditation"),
        ));
        aerospace.policies.add(DisclosurePolicy::rule(
            "p2",
            Resource::credential("WebDesignerQuality"),
            vec![Term::of_type("AAACreditation")],
        ));
        aircraft.trust_root(ca.public_key());
        aerospace.trust_root(ca.public_key());
        let svc = TnService::new(clock(), Database::new());
        svc.register_party(aerospace);
        svc.register_party(aircraft);
        svc
    }

    fn start(svc: &TnService, strategy: &str) -> u64 {
        let resp = svc
            .handle(&Envelope::request(
                "StartNegotiation",
                Element::new("StartNegotiationRequest")
                    .child(Element::new("strategy").text(strategy))
                    .child(Element::new("requester").text("Aerospace"))
                    .child(Element::new("counterpartUrl").text("Aircraft"))
                    .child(Element::new("resource").text("VoMembership")),
            ))
            .unwrap();
        resp.body
            .child_text("negotiationId")
            .unwrap()
            .parse()
            .unwrap()
    }

    #[test]
    fn full_protocol_run() {
        let svc = service_with_fig2();
        let id = start(&svc, "standard");
        let policy_resp = svc
            .handle(
                &Envelope::request("PolicyExchange", Element::new("PolicyExchangeRequest"))
                    .with_negotiation(id),
            )
            .unwrap();
        let seq = policy_resp.body.first("trustSequence").unwrap();
        assert_eq!(seq.all("disclosure").count(), 2);
        // Two credential exchange calls then completed.
        for expected in ["in-progress", "completed"] {
            let resp = svc
                .handle(
                    &Envelope::request(
                        "CredentialExchange",
                        Element::new("CredentialExchangeRequest"),
                    )
                    .with_negotiation(id),
                )
                .unwrap();
            assert_eq!(resp.body.get_attr("status"), Some(expected));
        }
        assert!(svc.is_completed(id));
    }

    #[test]
    fn clock_advances_through_protocol() {
        let svc = service_with_fig2();
        let before = svc.clock.elapsed();
        let id = start(&svc, "standard");
        let _ = svc
            .handle(&Envelope::request("PolicyExchange", Element::new("r")).with_negotiation(id));
        assert!(svc.clock.elapsed() > before);
        let counts = svc.clock.counts();
        assert!(counts[&CostKind::DbQuery] >= 2);
        assert!(counts.contains_key(&CostKind::PolicyEvaluation));
    }

    #[test]
    fn bad_requests_fault() {
        let svc = service_with_fig2();
        // Unknown operation.
        let err = svc
            .handle(&Envelope::request("Frobnicate", Element::new("x")))
            .unwrap_err();
        assert_eq!(err.code, "NoSuchOperation");
        // Unknown strategy.
        let err = svc
            .handle(&Envelope::request(
                "StartNegotiation",
                Element::new("r")
                    .child(Element::new("strategy").text("yolo"))
                    .child(Element::new("requester").text("Aerospace"))
                    .child(Element::new("counterpartUrl").text("Aircraft"))
                    .child(Element::new("resource").text("VoMembership")),
            ))
            .unwrap_err();
        assert_eq!(err.code, "BadRequest");
        // Unknown party.
        let err = svc
            .handle(&Envelope::request(
                "StartNegotiation",
                Element::new("r")
                    .child(Element::new("strategy").text("standard"))
                    .child(Element::new("requester").text("Ghost"))
                    .child(Element::new("counterpartUrl").text("Aircraft"))
                    .child(Element::new("resource").text("VoMembership")),
            ))
            .unwrap_err();
        assert_eq!(err.code, "UnknownParty");
        // Credential exchange before policy exchange.
        let id = start(&svc, "standard");
        let err = svc
            .handle(
                &Envelope::request("CredentialExchange", Element::new("x")).with_negotiation(id),
            )
            .unwrap_err();
        assert_eq!(err.code, "BadState");
        // Unknown negotiation id.
        let err = svc
            .handle(&Envelope::request("PolicyExchange", Element::new("x")).with_negotiation(999))
            .unwrap_err();
        assert_eq!(err.code, "NoSuchNegotiation");
    }

    #[test]
    fn unsatisfiable_negotiation_faults_and_records() {
        let svc = service_with_fig2();
        // Strip the aerospace party of its quality credential.
        let mut aerospace = svc.party("Aerospace").unwrap();
        let id0 = aerospace.profile.credentials()[0].id().clone();
        aerospace.profile.remove(&id0);
        svc.update_party(aerospace);
        let id = start(&svc, "standard");
        let err = svc
            .handle(&Envelope::request("PolicyExchange", Element::new("x")).with_negotiation(id))
            .unwrap_err();
        assert_eq!(err.code, "NoTrustSequence");
        assert!(svc.failure_reason(id).is_some());
        assert!(!svc.is_completed(id));
    }

    #[test]
    fn suspicious_strategy_charges_ownership_proofs() {
        let svc = service_with_fig2();
        let id = start(&svc, "suspicious");
        svc.handle(&Envelope::request("PolicyExchange", Element::new("x")).with_negotiation(id))
            .unwrap();
        let signs_before = svc
            .clock
            .counts()
            .get(&CostKind::SignatureSign)
            .copied()
            .unwrap_or(0);
        svc.handle(
            &Envelope::request("CredentialExchange", Element::new("x")).with_negotiation(id),
        )
        .unwrap();
        assert_eq!(
            svc.clock.counts()[&CostKind::SignatureSign],
            signs_before + 1
        );
    }

    #[test]
    fn registration_persists_documents() {
        let svc = service_with_fig2();
        let stats = svc.database().stats();
        assert!(stats.collections >= 2);
        assert!(stats.documents >= 4); // 2 profiles + >= 2 policies
    }

    fn start_resumable(svc: &TnService) -> u64 {
        let resp = svc
            .handle(&Envelope::request(
                "StartNegotiation",
                Element::new("StartNegotiationRequest")
                    .attr("resumable", "true")
                    .child(Element::new("strategy").text("standard"))
                    .child(Element::new("requester").text("Aerospace"))
                    .child(Element::new("counterpartUrl").text("Aircraft"))
                    .child(Element::new("resource").text("VoMembership")),
            ))
            .unwrap();
        resp.negotiation_id.unwrap()
    }

    fn exchange(svc: &TnService, id: u64) -> Result<Envelope, Fault> {
        svc.handle(
            &Envelope::request(
                "CredentialExchange",
                Element::new("CredentialExchangeRequest"),
            )
            .with_negotiation(id),
        )
    }

    #[test]
    fn non_resumable_sessions_issue_no_tokens() {
        let svc = service_with_fig2();
        let id = start(&svc, "standard");
        let policy = svc
            .handle(&Envelope::request("PolicyExchange", Element::new("x")).with_negotiation(id))
            .unwrap();
        assert!(policy.body.first("ResumeToken").is_none());
        let resp = exchange(&svc, id).unwrap();
        assert!(resp.body.first("ResumeToken").is_none());
    }

    #[test]
    fn resumable_negotiation_survives_crash() {
        let svc = service_with_fig2();
        let id = start_resumable(&svc);
        let policy = svc
            .handle(&Envelope::request("PolicyExchange", Element::new("x")).with_negotiation(id))
            .unwrap();
        // Phase 1 checkpointed immediately: the response carries a token.
        assert!(policy.body.first("ResumeToken").is_some());
        // One verified disclosure; its response carries a fresher token.
        let resp = exchange(&svc, id).unwrap();
        assert_eq!(resp.body.get_attr("status"), Some("in-progress"));
        let token = resp.body.first("ResumeToken").unwrap().clone();

        // The endpoint crashes: volatile sessions are gone...
        svc.on_crash();
        let err = exchange(&svc, id).unwrap_err();
        assert_eq!(err.code, "NoSuchNegotiation");

        // ...but the durable checkpoint resumes under a fresh id, with the
        // cursor where the crash left it (1 of 2 disclosures done).
        let resume = svc
            .handle(&Envelope::request(
                "ResumeNegotiation",
                Element::new("ResumeNegotiationRequest").child(token),
            ))
            .unwrap();
        assert_eq!(resume.body.get_attr("status"), Some("resumed"));
        assert_eq!(resume.body.get_attr("next"), Some("1"));
        assert_eq!(resume.body.get_attr("remaining"), Some("1"));
        let new_id = resume.negotiation_id.unwrap();
        assert_ne!(new_id, id);

        let resp = exchange(&svc, new_id).unwrap();
        assert_eq!(resp.body.get_attr("status"), Some("completed"));
        assert!(svc.is_completed(new_id));
        assert_eq!(svc.resumed_count(), 1);
    }

    #[test]
    fn completed_negotiation_retires_its_checkpoint() {
        let svc = service_with_fig2();
        let id = start_resumable(&svc);
        let policy = svc
            .handle(&Envelope::request("PolicyExchange", Element::new("x")).with_negotiation(id))
            .unwrap();
        let token = policy.body.first("ResumeToken").unwrap().clone();
        while exchange(&svc, id).unwrap().body.get_attr("status") != Some("completed") {}
        assert_eq!(
            svc.database().with_collection("checkpoints", |c| c.len()),
            0,
            "checkpoint slot must be retired on completion"
        );
        // A stale token for the retired slot cannot resurrect the session.
        let err = svc
            .handle(&Envelope::request(
                "ResumeNegotiation",
                Element::new("ResumeNegotiationRequest").child(token),
            ))
            .unwrap_err();
        assert_eq!(err.code, "NoSuchCheckpoint");
    }

    #[test]
    fn expired_resume_token_is_rejected() {
        let svc = service_with_fig2();
        svc.set_resume_ttl_secs(1);
        let id = start_resumable(&svc);
        let policy = svc
            .handle(&Envelope::request("PolicyExchange", Element::new("x")).with_negotiation(id))
            .unwrap();
        let token = policy.body.first("ResumeToken").unwrap().clone();
        svc.on_crash();
        // Two virtual seconds later the 1 s token is past its (exclusive)
        // end instant.
        svc.clock
            .advance(crate::simclock::SimDuration::from_millis(2_000));
        let err = svc
            .handle(&Envelope::request(
                "ResumeNegotiation",
                Element::new("ResumeNegotiationRequest").child(token),
            ))
            .unwrap_err();
        assert_eq!(err.code, "InvalidToken");
        assert_eq!(svc.resumed_count(), 0);
    }

    #[test]
    fn tampered_resume_token_is_rejected() {
        let svc = service_with_fig2();
        let id = start_resumable(&svc);
        let policy = svc
            .handle(&Envelope::request("PolicyExchange", Element::new("x")).with_negotiation(id))
            .unwrap();
        let mut token = policy.body.first("ResumeToken").unwrap().clone();
        token.attrs.retain(|(n, _)| n != "resource");
        let token = token.attr("resource", "SomethingElse");
        let err = svc
            .handle(&Envelope::request(
                "ResumeNegotiation",
                Element::new("ResumeNegotiationRequest").child(token),
            ))
            .unwrap_err();
        assert_eq!(err.code, "InvalidToken");
    }
}

#[cfg(test)]
mod update_party_tests {
    use super::*;
    use crate::simclock::CostModel;
    use trust_vo_credential::Timestamp;
    use trust_vo_policy::{DisclosurePolicy, Resource};

    #[test]
    fn shrinking_policy_set_retires_stale_documents() {
        let svc = TnService::new(
            SimClock::new(CostModel::free(), Timestamp(0)),
            Database::new(),
        );
        let mut party = Party::new("P");
        for i in 0..3 {
            party.policies.add(DisclosurePolicy::deliv(
                format!("d{i}"),
                Resource::credential(format!("C{i}")),
            ));
        }
        svc.register_party(party);
        assert_eq!(svc.database().with_collection("policies", |c| c.len()), 3);
        // Re-register with a single policy: the two extra rows must go.
        let mut smaller = Party::new("P");
        smaller
            .policies
            .add(DisclosurePolicy::deliv("only", Resource::credential("C0")));
        svc.update_party(smaller);
        assert_eq!(svc.database().with_collection("policies", |c| c.len()), 1);
    }
}
