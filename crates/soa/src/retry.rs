//! Sim-time retry with capped exponential backoff.
//!
//! Transport faults (drops, timeouts, partitions — see
//! [`FaultKind::Transport`](crate::envelope::FaultKind)) are transient by
//! definition, so clients retry them. [`RetryPolicy`] describes how: a
//! bounded number of attempts, exponentially growing waits capped at a
//! ceiling, and a total sim-time budget per logical call. All waiting is
//! *simulated* — backoff is charged to the shared [`SimClock`](crate::simclock::SimClock) via
//! [`SimClock::advance`](crate::simclock::SimClock::advance), never to the host's wall clock — so chaos runs
//! are fast and, for a fixed fault-plan seed, fully deterministic.
//!
//! Application faults are never retried: the endpoint already processed the
//! request and deterministically rejected it.

use crate::bus::Transport;
use crate::envelope::{Envelope, Fault};
use crate::simclock::SimDuration;

/// Backoff histogram bucket bounds (µs): 1 ms … 4 s.
const BACKOFF_BOUNDS: [u64; 8] = [
    1_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 2_000_000, 4_000_000,
];

/// How a client retries transport faults, entirely in sim-time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum delivery attempts per logical call (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each further attempt.
    pub base_backoff: SimDuration,
    /// Ceiling on a single backoff wait.
    pub max_backoff: SimDuration,
    /// Total sim-time budget for one logical call: once the backoff spent
    /// on this call reaches the budget, the call fails even if attempts
    /// remain. The boundary is inclusive — a wait that would bring the
    /// spend exactly to the budget is refused, so `backoff_spent` stays
    /// strictly below the budget on every path.
    pub budget: SimDuration,
}

impl RetryPolicy {
    /// The default client policy: 4 attempts, 40 ms → 160 ms backoff,
    /// 5 s budget.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: SimDuration::from_millis(40),
            max_backoff: SimDuration::from_millis(1_000),
            budget: SimDuration::from_millis(5_000),
        }
    }

    /// A policy that never retries (one attempt, zero budget).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: SimDuration::ZERO,
            max_backoff: SimDuration::ZERO,
            budget: SimDuration::ZERO,
        }
    }

    /// The backoff to wait after failed attempt number `attempt` (1-based):
    /// `base * 2^(attempt-1)`, capped at [`RetryPolicy::max_backoff`].
    /// Out-of-contract inputs stay safe: attempt 0 behaves like attempt 1
    /// (no debug-mode underflow panic), and huge attempts saturate at the
    /// cap instead of overflowing the shift or the multiply.
    pub fn backoff_after(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(32);
        let raw = SimDuration(self.base_backoff.0.saturating_mul(1u64 << shift));
        raw.min(self.max_backoff)
    }
}

/// The outcome of [`call_with_retry`]: the final result plus how many
/// delivery attempts it took and how much sim-time was spent backing off.
#[derive(Debug, Clone)]
pub struct Attempted {
    /// The final response or the last fault observed.
    pub outcome: Result<Envelope, Fault>,
    /// Delivery attempts made (≥ 1).
    pub attempts: u32,
    /// Total backoff charged to the clock for this logical call.
    pub backoff_spent: SimDuration,
}

impl Attempted {
    /// Retries made beyond the first attempt.
    pub fn retries(&self) -> u64 {
        u64::from(self.attempts.saturating_sub(1))
    }
}

/// Dispatch `request` through `transport`, retrying transport faults per
/// `policy`. Backoff between attempts is charged to the transport's clock.
/// [`FaultKind::BudgetExhausted`](crate::envelope::FaultKind) and
/// [`FaultKind::Overloaded`](crate::envelope::FaultKind) faults are also
/// retried, waiting at least the fault's `retry_after_us` hint (the
/// sim-time until the party's flow budget regenerates, or the queue's
/// drain estimate). Application faults and
/// [`FaultKind::NoSuchService`](crate::envelope::FaultKind) return
/// immediately.
///
/// When obs is attached to the clock, emits `net.retries` (count of
/// attempts beyond the first) and a `net.backoff_us` histogram. On a
/// traced request each delivery attempt runs under its own `soa.attempt`
/// span (the envelope is re-stamped per attempt, so transport- and
/// bus-side spans parent under the attempt that carried them) and each
/// backoff wait under a sibling `retry.backoff` span.
pub fn call_with_retry<T: Transport + ?Sized>(
    transport: &T,
    service: &str,
    request: &Envelope,
    policy: &RetryPolicy,
) -> Attempted {
    let clock = transport.clock();
    let obs = clock.collector();
    let traced = obs.is_enabled() && request.trace.is_some();
    let mut attempts = 0u32;
    let mut backoff_spent = SimDuration::ZERO;
    let outcome = loop {
        attempts += 1;
        let result = if traced {
            let link = request.trace.as_ref().expect("traced").link();
            let mut span = obs.span_linked("soa.attempt", link);
            span.field("service", service);
            span.field("operation", request.operation.as_str());
            span.field("attempt", i64::from(attempts));
            let result = transport.call(service, &request.restamped(span.id().unwrap_or(0)));
            span.field("ok", result.is_ok());
            result
        } else {
            transport.call(service, request)
        };
        match result {
            Ok(resp) => break Ok(resp),
            Err(fault)
                if (fault.is_transport()
                    || fault.is_budget_exhausted()
                    || fault.is_overloaded())
                    && attempts < policy.max_attempts =>
            {
                // A flow-budget refusal or queue shed is retried like a
                // transport fault, but waits at least the fault's
                // retry-after hint: the bucket cannot admit the call (or
                // the queue drain) any sooner, so backing off less would
                // burn an attempt for nothing. This is how a flood
                // throttles itself — each refused caller sleeps (in
                // sim-time) until its own budget regenerates or the queue
                // has room.
                let mut wait = policy.backoff_after(attempts);
                if let Some(hint) = fault.retry_after_us {
                    wait = wait.max(SimDuration(hint));
                }
                if backoff_spent + wait >= policy.budget {
                    break Err(fault);
                }
                backoff_spent += wait;
                {
                    let _backoff_span = if traced {
                        let link = request.trace.as_ref().expect("traced").link();
                        let mut span = obs.span_linked("retry.backoff", link);
                        span.field("wait_us", wait.0 as i64);
                        Some(span)
                    } else {
                        None
                    };
                    clock.advance(wait);
                }
                if obs.is_enabled() {
                    obs.counter_add("net.retries", 1);
                    if let Some(reg) = obs.registry() {
                        reg.histogram("net.backoff_us", &BACKOFF_BOUNDS)
                            .record(wait.0);
                    }
                }
            }
            Err(fault) => break Err(fault),
        }
    };
    Attempted {
        outcome,
        attempts,
        backoff_spent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::ServiceBus;
    use crate::simclock::{CostModel, SimClock};
    use std::sync::atomic::{AtomicU32, Ordering};
    use trust_vo_credential::Timestamp;
    use trust_vo_xmldoc::Element;

    /// A transport that fails the first `fail_first` calls with a transport
    /// fault, then succeeds.
    struct Flaky {
        clock: SimClock,
        fail_first: u32,
        calls: AtomicU32,
        fault: Fault,
    }

    impl Flaky {
        fn new(fail_first: u32, fault: Fault) -> Self {
            Flaky {
                clock: SimClock::new(CostModel::paper_testbed(), Timestamp(0)),
                fail_first,
                calls: AtomicU32::new(0),
                fault,
            }
        }
    }

    impl Transport for Flaky {
        fn call(&self, _service: &str, request: &Envelope) -> Result<Envelope, Fault> {
            let n = self.calls.fetch_add(1, Ordering::SeqCst);
            if n < self.fail_first {
                Err(self.fault.clone())
            } else {
                Ok(Envelope::request(
                    format!("{}Response", request.operation),
                    Element::new("ok"),
                ))
            }
        }

        fn clock(&self) -> &SimClock {
            &self.clock
        }
    }

    fn req() -> Envelope {
        Envelope::request("Echo", Element::new("x"))
    }

    #[test]
    fn succeeds_after_transient_faults() {
        let t = Flaky::new(2, Fault::transport("Timeout", "lost"));
        let a = call_with_retry(&t, "svc", &req(), &RetryPolicy::standard());
        assert!(a.outcome.is_ok());
        assert_eq!(a.attempts, 3);
        assert_eq!(a.retries(), 2);
        // backoff 40 + 80 ms charged to the clock
        assert_eq!(a.backoff_spent, SimDuration::from_millis(120));
        assert_eq!(t.clock.elapsed(), SimDuration::from_millis(120));
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let t = Flaky::new(100, Fault::transport("Timeout", "lost"));
        let a = call_with_retry(&t, "svc", &req(), &RetryPolicy::standard());
        assert_eq!(a.attempts, 4);
        assert!(a.outcome.unwrap_err().is_transport());
    }

    #[test]
    fn application_faults_are_not_retried() {
        let t = Flaky::new(100, Fault::new("BadState", "nope"));
        let a = call_with_retry(&t, "svc", &req(), &RetryPolicy::standard());
        assert_eq!(a.attempts, 1);
        assert_eq!(a.backoff_spent, SimDuration::ZERO);
        assert_eq!(a.outcome.unwrap_err().code, "BadState");
    }

    #[test]
    fn no_such_service_is_not_retried() {
        let clock = SimClock::new(CostModel::paper_testbed(), Timestamp(0));
        let bus = ServiceBus::new(clock);
        let a = call_with_retry(&bus, "ghost", &req(), &RetryPolicy::standard());
        assert_eq!(a.attempts, 1);
        assert_eq!(
            a.outcome.unwrap_err().kind,
            crate::envelope::FaultKind::NoSuchService
        );
    }

    #[test]
    fn budget_caps_total_backoff() {
        let t = Flaky::new(100, Fault::transport("Timeout", "lost"));
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: SimDuration::from_millis(100),
            max_backoff: SimDuration::from_millis(10_000),
            budget: SimDuration::from_millis(250),
        };
        let a = call_with_retry(&t, "svc", &req(), &policy);
        // 100 ms fits, +200 ms would exceed 250 ms → stop after 2 attempts.
        assert_eq!(a.attempts, 2);
        assert_eq!(a.backoff_spent, SimDuration::from_millis(100));
        assert!(a.outcome.is_err());
    }

    #[test]
    fn budget_boundary_is_inclusive() {
        // The schedule lands exactly on the budget: 40 ms fits, the next
        // 80 ms wait would bring the spend to exactly 120 ms — "reaches
        // the budget" — so the call fails after 2 attempts with 40 ms
        // spent, instead of sleeping to the boundary and burning a third
        // attempt.
        let t = Flaky::new(2, Fault::transport("Timeout", "lost"));
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: SimDuration::from_millis(40),
            max_backoff: SimDuration::from_millis(1_000),
            budget: SimDuration::from_millis(120),
        };
        let a = call_with_retry(&t, "svc", &req(), &policy);
        assert!(a.outcome.is_err(), "reaching the budget must fail the call");
        assert_eq!(a.attempts, 2);
        assert_eq!(a.backoff_spent, SimDuration::from_millis(40));
        assert_eq!(t.clock.elapsed(), SimDuration::from_millis(40));
    }

    #[test]
    fn hint_equal_to_remaining_budget_fails_fast() {
        // A retry-after hint exactly equal to the remaining budget: waiting
        // it out would consume the entire allowance, so the call fails
        // immediately without sleeping. The hint is still honored — the
        // caller never retries before it elapses (here: never).
        let t = Flaky::new(1, Fault::budget_exhausted("Flooder", 5_000_000));
        let a = call_with_retry(&t, "svc", &req(), &RetryPolicy::standard());
        assert_eq!(a.attempts, 1);
        assert_eq!(a.backoff_spent, SimDuration::ZERO);
        assert_eq!(t.clock.elapsed(), SimDuration::ZERO);
        assert!(a.outcome.unwrap_err().is_budget_exhausted());
    }

    #[test]
    fn hint_one_us_under_remaining_budget_still_retries() {
        // One µs inside the budget: the wait is taken and the retry lands.
        let t = Flaky::new(1, Fault::budget_exhausted("Flooder", 4_999_999));
        let a = call_with_retry(&t, "svc", &req(), &RetryPolicy::standard());
        assert!(a.outcome.is_ok());
        assert_eq!(a.attempts, 2);
        assert_eq!(a.backoff_spent, SimDuration(4_999_999));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::standard();
        assert_eq!(p.backoff_after(1), SimDuration::from_millis(40));
        assert_eq!(p.backoff_after(2), SimDuration::from_millis(80));
        assert_eq!(p.backoff_after(3), SimDuration::from_millis(160));
        assert_eq!(p.backoff_after(10), SimDuration::from_millis(1_000));
    }

    #[test]
    fn backoff_is_total_over_out_of_contract_attempts() {
        let p = RetryPolicy::standard();
        // Attempt 0 is out of contract (attempts are 1-based) but must not
        // underflow: it behaves like attempt 1.
        assert_eq!(p.backoff_after(0), p.backoff_after(1));
        // The shift is capped at 32 and the multiply saturates, so even
        // absurd attempt numbers stay at the ceiling.
        assert_eq!(p.backoff_after(33), SimDuration::from_millis(1_000));
        assert_eq!(p.backoff_after(u32::MAX), SimDuration::from_millis(1_000));
        // Saturation without a cap in the way: a huge base times 2^32
        // would overflow u64; the multiply saturates and the explicit
        // max_backoff still wins.
        let huge = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff: SimDuration(u64::MAX / 2),
            max_backoff: SimDuration(u64::MAX),
            budget: SimDuration(u64::MAX),
        };
        assert_eq!(huge.backoff_after(u32::MAX), SimDuration(u64::MAX));
    }

    #[test]
    fn budget_exhausted_waits_at_least_the_hint() {
        // Hint (500 ms) dominates the 40/80 ms backoff schedule: each
        // retry waits the full regeneration time, not the smaller backoff.
        let t = Flaky::new(2, Fault::budget_exhausted("Flooder", 500_000));
        let a = call_with_retry(&t, "svc", &req(), &RetryPolicy::standard());
        assert!(a.outcome.is_ok());
        assert_eq!(a.attempts, 3);
        assert_eq!(a.backoff_spent, SimDuration::from_millis(1_000));
        assert_eq!(t.clock.elapsed(), SimDuration::from_millis(1_000));
    }

    #[test]
    fn budget_exhausted_respects_attempt_and_budget_caps() {
        let t = Flaky::new(100, Fault::budget_exhausted("Flooder", 1_000));
        let a = call_with_retry(&t, "svc", &req(), &RetryPolicy::standard());
        assert_eq!(a.attempts, 4);
        assert!(a.outcome.as_ref().unwrap_err().is_budget_exhausted());
        // A hint larger than the whole budget fails fast instead of
        // sleeping past the caller's sim-time allowance.
        let t = Flaky::new(100, Fault::budget_exhausted("Flooder", 60_000_000));
        let a = call_with_retry(&t, "svc", &req(), &RetryPolicy::standard());
        assert_eq!(a.attempts, 1);
        assert_eq!(a.backoff_spent, SimDuration::ZERO);
    }

    #[test]
    fn overloaded_is_retried_waiting_at_least_the_drain_hint() {
        // A queue shed behaves exactly like a budget refusal: the drain
        // estimate (300 ms) dominates the 40/80 ms backoff schedule.
        let t = Flaky::new(2, Fault::overloaded("bus", 300_000));
        let a = call_with_retry(&t, "svc", &req(), &RetryPolicy::standard());
        assert!(a.outcome.is_ok());
        assert_eq!(a.attempts, 3);
        assert_eq!(a.backoff_spent, SimDuration::from_millis(600));
        assert_eq!(t.clock.elapsed(), SimDuration::from_millis(600));
    }

    #[test]
    fn overloaded_respects_attempt_and_budget_caps() {
        let t = Flaky::new(100, Fault::overloaded("bus", 1_000));
        let a = call_with_retry(&t, "svc", &req(), &RetryPolicy::standard());
        assert_eq!(a.attempts, 4);
        assert!(a.outcome.as_ref().unwrap_err().is_overloaded());
        // A drain estimate larger than the whole budget fails fast.
        let t = Flaky::new(100, Fault::overloaded("bus", 60_000_000));
        let a = call_with_retry(&t, "svc", &req(), &RetryPolicy::standard());
        assert_eq!(a.attempts, 1);
        assert_eq!(a.backoff_spent, SimDuration::ZERO);
    }

    #[test]
    fn none_policy_is_single_shot() {
        let t = Flaky::new(100, Fault::transport("Timeout", "lost"));
        let a = call_with_retry(&t, "svc", &req(), &RetryPolicy::none());
        assert_eq!(a.attempts, 1);
    }
}
