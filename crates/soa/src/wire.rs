//! The wire path: canonical binary envelope codec and length framing.
//!
//! Every bus call crosses a real byte boundary (see
//! [`ServiceBus::call`](crate::bus::ServiceBus::call)): the request
//! envelope is encoded to the canonical binary payload below, framed
//! with the journal's `[len: u32 LE][crc32: u32 LE][payload]` discipline
//! ([`trust_vo_journal::frame`]), and decoded on the far side before the
//! endpoint sees it; the reply — response envelope or fault — crosses
//! back the same way. The XML serialization
//! ([`Envelope::to_xml`]/[`Envelope::from_xml`]) is retained as the
//! differential oracle: both codecs decode any envelope to the same
//! value (pinned by proptests in `tests/wire_differential.rs`).
//!
//! Payload layout (integers little-endian; `str` is `u32` length +
//! UTF-8; the body is the [`trust_vo_xmldoc::binary`] element codec):
//!
//! ```text
//! envelope := VERSION  kind:0x00  flags:u8  operation:str
//!             [negotiation_id:u64] [idempotency_key:u64]
//!             [trace_id:u64 span_id:u64 [parent_span_id:u64]]
//!             body:element
//! reply    := envelope                            (successful response)
//!           | VERSION kind:0x01 fault_kind:u8 flags:u8
//!             code:str reason:str [retry_after_us:u64]
//! ```
//!
//! Trace contexts ride the binary header (the PR 7 causal-tracing
//! contract): `trace_id` 0 is the untraced sentinel, mirroring the XML
//! path's lenient parse — a decoded trace with id 0 is dropped, so both
//! codecs agree on it. Decoding is total: torn frames, checksum
//! failures, and malformed payloads yield `None`, never a panic.
//!
//! # Kill-switch
//!
//! Set `TRUST_VO_WIRE=0` (or `off`/`false`/`no`) to keep calls
//! in-process: the bus skips the byte boundary entirely — no encode, no
//! counters — byte-identical behavior and obs output to a bus built
//! with the wire explicitly disabled (ci.sh pins this).

use crate::envelope::{Envelope, Fault, FaultKind};
use std::sync::LazyLock;
use trust_vo_journal::frame;
use trust_vo_obs::TraceContext;
use trust_vo_xmldoc::binary as xbin;

/// Wire format version byte; bump on incompatible layout changes.
pub const VERSION: u8 = 1;

/// Payload kind byte: a request/response envelope.
const KIND_ENVELOPE: u8 = 0x00;
/// Payload kind byte: a fault reply.
const KIND_FAULT: u8 = 0x01;

/// Is the wire path enabled? Reads `TRUST_VO_WIRE` once at first use;
/// `0`/`off`/`false`/`no` disables (same contract as
/// `TRUST_VO_ADMISSION` and the cache switches). Disabled, bus calls
/// stay in-process function calls — the pre-wire shape.
pub fn wire_enabled() -> bool {
    static ENABLED: LazyLock<bool> = LazyLock::new(|| match std::env::var("TRUST_VO_WIRE") {
        Ok(v) => !matches!(
            v.to_ascii_lowercase().as_str(),
            "0" | "off" | "false" | "no"
        ),
        Err(_) => true,
    });
    *ENABLED
}

/// Encode `env` to its canonical binary payload (unframed).
pub fn encode_envelope(env: &Envelope) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + env.operation.len());
    encode_envelope_into(&mut out, env);
    out
}

/// Append the canonical binary payload of `env` to `out`.
pub fn encode_envelope_into(out: &mut Vec<u8>, env: &Envelope) {
    out.push(VERSION);
    out.push(KIND_ENVELOPE);
    let mut flags = 0u8;
    if env.negotiation_id.is_some() {
        flags |= 1;
    }
    if env.idempotency_key.is_some() {
        flags |= 2;
    }
    if let Some(trace) = &env.trace {
        flags |= 4;
        if trace.parent_span_id.is_some() {
            flags |= 8;
        }
    }
    out.push(flags);
    put_str(out, &env.operation);
    if let Some(id) = env.negotiation_id {
        out.extend_from_slice(&id.to_le_bytes());
    }
    if let Some(key) = env.idempotency_key {
        out.extend_from_slice(&key.to_le_bytes());
    }
    if let Some(trace) = &env.trace {
        out.extend_from_slice(&trace.trace_id.to_le_bytes());
        out.extend_from_slice(&trace.span_id.to_le_bytes());
        if let Some(parent) = trace.parent_span_id {
            out.extend_from_slice(&parent.to_le_bytes());
        }
    }
    xbin::encode_element_into(out, &env.body);
}

/// Decode a canonical binary payload back to an envelope. `None` on any
/// malformation (wrong version/kind, truncation, trailing bytes). A
/// trace with `trace_id` 0 decodes as untraced — the same lenient
/// sentinel rule as the XML header parse.
pub fn decode_envelope(bytes: &[u8]) -> Option<Envelope> {
    let mut pos = 0usize;
    let env = decode_envelope_at(bytes, &mut pos)?;
    if pos == bytes.len() {
        Some(env)
    } else {
        None
    }
}

fn decode_envelope_at(bytes: &[u8], pos: &mut usize) -> Option<Envelope> {
    if get_u8(bytes, pos)? != VERSION || get_u8(bytes, pos)? != KIND_ENVELOPE {
        return None;
    }
    let flags = get_u8(bytes, pos)?;
    if flags & !0x0F != 0 {
        return None;
    }
    let operation = get_str(bytes, pos)?;
    let negotiation_id = if flags & 1 != 0 {
        Some(get_u64(bytes, pos)?)
    } else {
        None
    };
    let idempotency_key = if flags & 2 != 0 {
        Some(get_u64(bytes, pos)?)
    } else {
        None
    };
    let trace = if flags & 4 != 0 {
        let trace_id = get_u64(bytes, pos)?;
        let span_id = get_u64(bytes, pos)?;
        let parent_span_id = if flags & 8 != 0 {
            Some(get_u64(bytes, pos)?)
        } else {
            None
        };
        // 0 is the untraced sentinel, exactly like the XML header path.
        (trace_id != 0).then_some(TraceContext {
            trace_id,
            span_id,
            parent_span_id,
        })
    } else {
        None
    };
    let body = xbin::decode_element_at(bytes, pos)?;
    let mut env = Envelope::request(operation, body);
    env.negotiation_id = negotiation_id;
    env.idempotency_key = idempotency_key;
    env.trace = trace;
    Some(env)
}

/// Encode a reply — response envelope or fault — to its binary payload.
pub fn encode_reply(reply: &Result<Envelope, Fault>) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_reply_into(&mut out, reply);
    out
}

/// Append the binary reply payload to `out` (the zero-intermediate-
/// buffer path [`frame_reply`] encodes straight into its frame with).
pub fn encode_reply_into(out: &mut Vec<u8>, reply: &Result<Envelope, Fault>) {
    match reply {
        // Reuse a cached request encoding when one exists; replies are
        // typically fresh envelopes, encoded straight into the frame.
        Ok(env) if env.wire_cached() => out.extend_from_slice(env.wire_bytes()),
        Ok(env) => encode_envelope_into(out, env),
        Err(fault) => {
            out.reserve(12 + fault.code.len() + fault.reason.len());
            out.push(VERSION);
            out.push(KIND_FAULT);
            out.push(fault_kind_tag(fault.kind));
            out.push(u8::from(fault.retry_after_us.is_some()));
            put_str(out, &fault.code);
            put_str(out, &fault.reason);
            if let Some(hint) = fault.retry_after_us {
                out.extend_from_slice(&hint.to_le_bytes());
            }
        }
    }
}

/// Decode a binary reply payload. `None` on any malformation.
pub fn decode_reply(bytes: &[u8]) -> Option<Result<Envelope, Fault>> {
    match bytes.get(1).copied()? {
        KIND_ENVELOPE => Some(Ok(decode_envelope(bytes)?)),
        KIND_FAULT => {
            let mut pos = 0usize;
            if get_u8(bytes, &mut pos)? != VERSION || get_u8(bytes, &mut pos)? != KIND_FAULT {
                return None;
            }
            let kind = fault_kind_from_tag(get_u8(bytes, &mut pos)?)?;
            let has_hint = match get_u8(bytes, &mut pos)? {
                0 => false,
                1 => true,
                _ => return None,
            };
            let code = get_str(bytes, &mut pos)?;
            let reason = get_str(bytes, &mut pos)?;
            let retry_after_us = if has_hint {
                Some(get_u64(bytes, &mut pos)?)
            } else {
                None
            };
            if pos != bytes.len() {
                return None;
            }
            Some(Err(Fault {
                code,
                reason,
                kind,
                retry_after_us,
            }))
        }
        _ => None,
    }
}

/// Frame a request envelope for transmission: one journal-framed record
/// holding the (cached) canonical payload.
pub fn frame_envelope(env: &Envelope) -> Vec<u8> {
    let payload = env.wire_bytes();
    let mut out = Vec::with_capacity(frame::HEADER_LEN + payload.len());
    frame::push_record(&mut out, payload);
    out
}

/// Frame a reply for transmission back to the caller, encoding straight
/// into the frame buffer (no intermediate payload allocation).
pub fn frame_reply(reply: &Result<Envelope, Fault>) -> Vec<u8> {
    let mut out = Vec::with_capacity(frame::HEADER_LEN + 64);
    let start = frame::begin_record(&mut out);
    encode_reply_into(&mut out, reply);
    frame::end_record(&mut out, start);
    out
}

/// Unframe and decode one request envelope: exactly one intact record
/// whose payload is a well-formed envelope. `None` otherwise.
pub fn unframe_envelope(bytes: &[u8]) -> Option<Envelope> {
    decode_envelope(frame::single_record(bytes)?)
}

/// Unframe and decode one reply. `None` on torn or malformed frames.
pub fn unframe_reply(bytes: &[u8]) -> Option<Result<Envelope, Fault>> {
    decode_reply(frame::single_record(bytes)?)
}

fn fault_kind_tag(kind: FaultKind) -> u8 {
    match kind {
        FaultKind::Application => 0,
        FaultKind::NoSuchService => 1,
        FaultKind::Transport => 2,
        FaultKind::BudgetExhausted => 3,
        FaultKind::Overloaded => 4,
    }
}

fn fault_kind_from_tag(tag: u8) -> Option<FaultKind> {
    Some(match tag {
        0 => FaultKind::Application,
        1 => FaultKind::NoSuchService,
        2 => FaultKind::Transport,
        3 => FaultKind::BudgetExhausted,
        4 => FaultKind::Overloaded,
        _ => return None,
    })
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_u8(bytes: &[u8], pos: &mut usize) -> Option<u8> {
    let b = bytes.get(*pos).copied()?;
    *pos += 1;
    Some(b)
}

fn get_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let end = pos.checked_add(8)?;
    let slice = bytes.get(*pos..end)?;
    *pos = end;
    Some(u64::from_le_bytes(slice.try_into().ok()?))
}

fn get_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let len = u32::from_le_bytes(bytes.get(*pos..*pos + 4)?.try_into().ok()?) as usize;
    *pos += 4;
    let end = pos.checked_add(len)?;
    let slice = bytes.get(*pos..end)?;
    *pos = end;
    Some(std::str::from_utf8(slice).ok()?.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trust_vo_xmldoc::Element;

    fn traced() -> Envelope {
        Envelope::request(
            "CredentialExchange",
            Element::new("CredentialExchangeRequest").child(Element::new("requester").text("INFN")),
        )
        .with_negotiation(42)
        .with_idempotency(0xDEAD_BEEF_u64)
        .with_trace(TraceContext {
            trace_id: 11,
            span_id: 7,
            parent_span_id: Some(3),
        })
    }

    #[test]
    fn envelope_roundtrips_exactly() {
        for env in [
            traced(),
            Envelope::request("StartNegotiation", Element::new("x")),
            Envelope::request("PolicyExchange", Element::new("p")).with_negotiation(1),
        ] {
            assert_eq!(decode_envelope(&encode_envelope(&env)), Some(env));
        }
    }

    #[test]
    fn zero_trace_id_is_the_untraced_sentinel() {
        let mut env = traced();
        env.trace = Some(TraceContext {
            trace_id: 0,
            span_id: 9,
            parent_span_id: None,
        });
        let back = decode_envelope(&encode_envelope(&env)).unwrap();
        assert_eq!(back.trace, None);
        // The XML oracle agrees: both paths drop the sentinel.
        let xml = Envelope::from_xml(&env.to_xml()).unwrap();
        assert_eq!(xml.trace, None);
    }

    #[test]
    fn replies_roundtrip_for_every_fault_kind() {
        let ok: Result<Envelope, Fault> = Ok(traced());
        assert_eq!(decode_reply(&encode_reply(&ok)), Some(ok));
        for fault in [
            Fault::new("NoSuchNegotiation", "id 9 unknown"),
            Fault::no_such_service("ghost"),
            Fault::transport("Timeout", "request lost"),
            Fault::budget_exhausted("Flooder", 250_000),
            Fault::overloaded("tn", 1_250),
        ] {
            let reply: Result<Envelope, Fault> = Err(fault);
            assert_eq!(decode_reply(&encode_reply(&reply)), Some(reply));
        }
    }

    #[test]
    fn framed_roundtrip_and_torn_frames_fail_clean() {
        let env = traced();
        let frame = frame_envelope(&env);
        assert_eq!(unframe_envelope(&frame), Some(env.clone()));
        for cut in 0..frame.len() {
            assert_eq!(unframe_envelope(&frame[..cut]), None);
        }
        // A flipped payload byte fails the CRC, not the decoder.
        let mut corrupt = frame.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        assert_eq!(unframe_envelope(&corrupt), None);
        let reply = frame_reply(&Ok(env));
        assert!(unframe_reply(&reply).is_some());
        assert_eq!(unframe_reply(&reply[..reply.len() - 1]), None);
    }

    /// The encode-once hot path: one canonical encoding per logical
    /// call, shared by clones, invalidated by builder mutations.
    #[test]
    fn encode_is_cached_once_per_envelope() {
        let env = traced();
        assert!(!env.wire_cached());
        let first = env.wire_bytes().clone();
        assert!(env.wire_cached());
        // Same Arc (pointer-equal), not a re-encoding.
        assert!(std::sync::Arc::ptr_eq(&first, env.wire_bytes()));
        // Clones carry the cache; builder mutations clear it.
        let copy = env.clone();
        assert!(copy.wire_cached());
        assert!(std::sync::Arc::ptr_eq(&first, copy.wire_bytes()));
        let moved = copy.with_negotiation(99);
        assert!(!moved.wire_cached());
        assert_ne!(moved.wire_bytes(), &first);
    }

    #[test]
    fn version_and_kind_are_checked() {
        let mut bytes = encode_envelope(&traced());
        bytes[0] = VERSION + 1;
        assert_eq!(decode_envelope(&bytes), None);
        bytes[0] = VERSION;
        bytes[1] = 0x7F;
        assert_eq!(decode_envelope(&bytes), None);
        assert_eq!(decode_reply(&bytes), None);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_envelope(&traced());
        bytes.push(0);
        assert_eq!(decode_envelope(&bytes), None);
    }
}
