//! Sharded work-stealing dispatch with bounded queues and backpressure.
//!
//! Two architectures for driving many concurrent negotiations over the
//! wire path, deliberately kept side by side:
//!
//! * [`run_sharded`] — N per-shard bounded queues, one owning worker per
//!   shard, idle workers stealing from the back of other shards. A job
//!   (typically one whole negotiation or formation) runs *on* its shard
//!   worker, so every bus call it makes dispatches inline — encode,
//!   frame, decode, handle — with no per-message cross-thread handoff.
//!   This is the thread-per-core shape: the shard owns both the
//!   negotiation state machine and its dispatch.
//! * [`QueuedBus`] — the classic single-queue bus: every call is framed
//!   and enqueued on one global bounded queue served by one dispatcher
//!   thread, the caller blocking on the reply frame. Each message pays
//!   two thread handoffs; the E15 bench prices exactly that against the
//!   sharded drive.
//!
//! Backpressure is the same in both: queues are bounded; a submission
//! finding every queue full is *shed* before any bytes are enqueued —
//! surfaced as the `bus.shed` counter, the `bus.queue_depth` high-water
//! gauge, and a typed [`Fault::overloaded`] carrying a
//! `retry_after_us` drain estimate (the same shape as PR 8's
//! `budget_exhausted`: never blindly retried, never reply-cached).
//!
//! Determinism: shards change *where* a job runs, never what it
//! observes — netsim fault decisions key on `(service, op,
//! idempotency-key, attempt)` and sim-time charges are commutative
//! atomics, so a sharded drive admits the same members and burns the
//! same simulated time as a serial one (pinned by the `vo` crate's
//! serial ≡ parallel tests and the E15 equality asserts).

use crate::envelope::Fault;
use crate::simclock::{CostKind, SimClock};
use crate::{ServiceBus, Transport};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex as StdMutex};

use crate::envelope::Envelope;
use crate::wire;

/// Shape of a sharded run: how many shard queues/workers and how deep
/// each shard's bounded queue is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Shard count — one queue and one owning worker per shard.
    pub shards: usize,
    /// Per-shard queue bound; submissions beyond it back off or shed.
    pub capacity: usize,
}

impl ShardConfig {
    /// `shards` shards with the given per-shard `capacity` (both clamped
    /// to at least 1).
    pub fn new(shards: usize, capacity: usize) -> Self {
        ShardConfig {
            shards: shards.max(1),
            capacity: capacity.max(1),
        }
    }
}

/// What a submitter does when every shard queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Wait for a slot: flow control, every job eventually runs.
    Block,
    /// Refuse the job with a typed [`Fault::overloaded`]; its result
    /// slot stays `None` and the fault is reported in
    /// [`ShardRun::sheds`]. The caller owns the retry (after the
    /// fault's `retry_after_us` hint).
    Shed,
}

/// Outcome of [`run_sharded`].
#[derive(Debug)]
pub struct ShardRun<R> {
    /// Per-job results in submission order; `None` only for jobs shed
    /// under [`Backpressure::Shed`].
    pub results: Vec<Option<R>>,
    /// Jobs refused with every queue full: `(job index, fault)`. Empty
    /// under [`Backpressure::Block`].
    pub sheds: Vec<(usize, Fault)>,
    /// Submission rounds that found every shard full (each one is a
    /// would-be `Overloaded`; under `Block` the submitter then waited).
    pub shed_rounds: u64,
    /// Jobs executed by a worker other than their home shard's.
    pub stolen: u64,
    /// High-water mark of any single shard queue's depth.
    pub peak_depth: usize,
}

/// The sim-time hint attached to an overload shed: a drain estimate of
/// one SOAP round trip per queued message ahead of the refused one.
pub fn overload_hint(clock: &SimClock, queue_depth: usize) -> u64 {
    (queue_depth as u64 + 1) * clock.model().cost_of(CostKind::SoapRoundTrip).0
}

struct Shard {
    queue: Mutex<VecDeque<usize>>,
    depth: AtomicUsize,
}

/// The queues job `index` probes for a slot: its home shard first, then
/// every other shard starting at a rotation derived from the job index.
/// The old fixed `(home + off) % shards` order sent *all* overflow from a
/// hot home shard to `home + 1`, re-creating the hotspot one shard over;
/// rotating the start by `index / shards` (decorrelated from
/// `home = index % shards`) spreads consecutive same-home overflows
/// across every other shard.
fn probe_order(home: usize, index: usize, shards: usize) -> impl Iterator<Item = usize> {
    let others = shards.saturating_sub(1);
    let start = if others > 0 {
        (index / shards) % others
    } else {
        0
    };
    std::iter::once(home).chain((0..others).map(move |k| {
        let off = 1 + (start + k) % others;
        (home + off) % shards
    }))
}

/// Run `jobs` over `config.shards` bounded queues with one stealing
/// worker per shard, returning every job's result (and any sheds).
///
/// Job `i`'s home shard is `i % shards`; a full home queue overflows to
/// the other shards — probed in an order rotated by the job index, so
/// overflow from a hot shard spreads instead of herding onto `home + 1`
/// — before the submission counts as refused. Workers
/// drain their own queue front-first and steal from other queues
/// back-first, so skewed job sizes rebalance instead of idling shards.
/// Emits `bus.queue_depth` (high-water), `bus.shed`, and `bus.steals`
/// when obs is attached to `clock`.
pub fn run_sharded<R, F>(
    config: ShardConfig,
    clock: &SimClock,
    jobs: Vec<F>,
    backpressure: Backpressure,
) -> ShardRun<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    let config = ShardConfig::new(config.shards, config.capacity);
    let n = jobs.len();
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let shards: Vec<Shard> = (0..config.shards)
        .map(|_| Shard {
            queue: Mutex::new(VecDeque::with_capacity(config.capacity)),
            depth: AtomicUsize::new(0),
        })
        .collect();
    let feeding = AtomicBool::new(true);
    let stolen = AtomicU64::new(0);
    let shed_rounds = AtomicU64::new(0);
    let peak_depth = AtomicUsize::new(0);
    let mut sheds: Vec<(usize, Fault)> = Vec::new();

    let run_job = |index: usize, home: usize, worker: usize| {
        let job = slots[index].lock().take();
        if let Some(job) = job {
            if worker != home {
                stolen.fetch_add(1, Ordering::Relaxed);
            }
            *results[index].lock() = Some(job());
        }
    };

    crossbeam::thread::scope(|scope| {
        for w in 0..config.shards {
            let shards = &shards;
            let feeding = &feeding;
            let run_job = &run_job;
            scope.spawn(move |_| loop {
                // Own queue first (front: submission order)…
                if let Some(i) = shards[w].queue.lock().pop_front() {
                    shards[w].depth.fetch_sub(1, Ordering::Relaxed);
                    run_job(i, w, w);
                    continue;
                }
                // …then steal from the back of the busiest neighbours.
                let mut stole = false;
                for off in 1..shards.len() {
                    let t = (w + off) % shards.len();
                    let taken = shards[t].queue.lock().pop_back();
                    if let Some(i) = taken {
                        shards[t].depth.fetch_sub(1, Ordering::Relaxed);
                        run_job(i, t, w);
                        stole = true;
                        break;
                    }
                }
                if stole {
                    continue;
                }
                if !feeding.load(Ordering::Acquire)
                    && shards.iter().all(|s| s.depth.load(Ordering::Relaxed) == 0)
                {
                    break;
                }
                std::thread::yield_now();
            });
        }

        // Submitter: home shard first, overflow to the others in
        // index-rotated order, then block or shed.
        for i in 0..n {
            let home = i % config.shards;
            loop {
                let mut pushed = false;
                for t in probe_order(home, i, config.shards) {
                    let mut queue = shards[t].queue.lock();
                    if queue.len() < config.capacity {
                        queue.push_back(i);
                        let depth = shards[t].depth.fetch_add(1, Ordering::Relaxed) + 1;
                        peak_depth.fetch_max(depth, Ordering::Relaxed);
                        pushed = true;
                        break;
                    }
                }
                if pushed {
                    break;
                }
                shed_rounds.fetch_add(1, Ordering::Relaxed);
                match backpressure {
                    Backpressure::Block => std::thread::yield_now(),
                    Backpressure::Shed => {
                        sheds.push((
                            i,
                            Fault::overloaded("bus", overload_hint(clock, config.capacity)),
                        ));
                        break;
                    }
                }
            }
        }
        feeding.store(false, Ordering::Release);
    })
    .expect("shard workers do not panic");

    let obs = clock.collector();
    if obs.is_enabled() {
        if let Some(registry) = obs.registry() {
            registry
                .gauge("bus.queue_depth")
                .set_max(peak_depth.load(Ordering::Relaxed) as i64);
        }
        let rounds = shed_rounds.load(Ordering::Relaxed);
        if rounds > 0 {
            obs.counter_add("bus.shed", rounds);
        }
        let steals = stolen.load(Ordering::Relaxed);
        if steals > 0 {
            obs.counter_add("bus.steals", steals);
        }
    }

    ShardRun {
        results: results.into_iter().map(|m| m.into_inner()).collect(),
        sheds,
        shed_rounds: shed_rounds.load(Ordering::Relaxed),
        stolen: stolen.load(Ordering::Relaxed),
        peak_depth: peak_depth.load(Ordering::Relaxed),
    }
}

/// A framed call parked on the [`QueuedBus`] dispatch queue.
struct QueuedCall {
    service: String,
    /// The request, already on the wire: one framed record.
    frame: Vec<u8>,
    /// Where the dispatcher sends the framed reply.
    reply: mpsc::SyncSender<Vec<u8>>,
}

struct QueueState {
    /// `std` mutex (not `parking_lot`): the dispatcher parks on the
    /// paired [`Condvar`], which the vendored `parking_lot` shim lacks.
    queue: StdMutex<VecDeque<QueuedCall>>,
    ready: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
}

impl QueueState {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<QueuedCall>> {
        self.queue.lock().expect("dispatch queue lock")
    }
}

/// The single-queue dispatcher bus: every call crosses the byte
/// boundary *and* one global bounded queue served by a single
/// dispatcher thread.
///
/// This is the architecture the sharded drive is measured against: each
/// message pays an enqueue, a dispatcher wake-up, and a reply hand-back
/// — two thread handoffs — where the sharded drive dispatches inline on
/// the shard worker. It is a real [`Transport`]: the admission gate is
/// consulted *before* the request is encoded, a full queue sheds with
/// [`Fault::overloaded`] (counted on `bus.shed`), and request and reply
/// genuinely cross the thread boundary as framed bytes.
pub struct QueuedBus {
    inner: ServiceBus,
    state: Arc<QueueState>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl QueuedBus {
    /// Wrap `bus` behind one bounded dispatch queue of `capacity` calls.
    pub fn new(bus: ServiceBus, capacity: usize) -> Self {
        let state = Arc::new(QueueState {
            queue: StdMutex::new(VecDeque::with_capacity(capacity.max(1))),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            shutdown: AtomicBool::new(false),
        });
        let dispatcher = {
            let state = Arc::clone(&state);
            let bus = bus.clone();
            std::thread::spawn(move || loop {
                let call = {
                    let mut queue = state.lock();
                    loop {
                        if let Some(call) = queue.pop_front() {
                            break call;
                        }
                        if state.shutdown.load(Ordering::Acquire) {
                            return;
                        }
                        queue = state.ready.wait(queue).expect("dispatch queue lock");
                    }
                };
                let reply = match wire::unframe_envelope(&call.frame) {
                    Some(request) => bus.dispatch(&call.service, &request),
                    None => Err(Fault::transport(
                        "WireDecode",
                        "request frame torn or corrupt",
                    )),
                };
                // A hung-up caller is fine; drop the reply.
                let _ = call.reply.send(wire::frame_reply(&reply));
            })
        };
        QueuedBus {
            inner: bus,
            state,
            dispatcher: Some(dispatcher),
        }
    }

    /// Current dispatch queue depth.
    pub fn depth(&self) -> usize {
        self.state.lock().len()
    }
}

impl Transport for QueuedBus {
    fn call(&self, service: &str, request: &Envelope) -> Result<Envelope, Fault> {
        // Gate first: a refused call never encodes a byte.
        self.inner.admit(service, request)?;
        let obs = self.inner.clock().collector();
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        {
            let mut queue = self.state.lock();
            // Capacity check before encoding: a shed call never encodes
            // a byte either. Framing under the queue lock is deliberate
            // — the single global queue *is* this bus's bottleneck.
            if queue.len() >= self.state.capacity {
                drop(queue);
                if obs.is_enabled() {
                    obs.counter_add("bus.shed", 1);
                }
                return Err(Fault::overloaded(
                    service,
                    overload_hint(self.inner.clock(), self.state.capacity),
                ));
            }
            queue.push_back(QueuedCall {
                service: service.to_owned(),
                frame: wire::frame_envelope(request),
                reply: reply_tx,
            });
            if obs.is_enabled() {
                if let Some(registry) = obs.registry() {
                    registry
                        .gauge("bus.queue_depth")
                        .set_max(queue.len() as i64);
                }
                obs.counter_add("bus.wire.frames", 1);
            }
            self.state.ready.notify_one();
        }
        let reply_frame = reply_rx
            .recv()
            .map_err(|_| Fault::transport("Dispatcher", "dispatcher thread gone"))?;
        if obs.is_enabled() {
            obs.counter_add("bus.wire.frames", 1);
        }
        wire::unframe_reply(&reply_frame).unwrap_or_else(|| {
            Err(Fault::transport(
                "WireDecode",
                "reply frame torn or corrupt",
            ))
        })
    }

    fn clock(&self) -> &SimClock {
        self.inner.clock()
    }
}

impl Drop for QueuedBus {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        self.state.ready.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::FaultKind;
    use crate::simclock::CostModel;
    use crate::ServiceEndpoint;
    use trust_vo_credential::Timestamp;
    use trust_vo_xmldoc::Element;

    fn clock() -> SimClock {
        SimClock::new(CostModel::paper_testbed(), Timestamp(0))
    }

    #[test]
    fn sharded_runs_every_job_once() {
        let clock = clock();
        let counter = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..100)
            .map(|i| {
                let counter = &counter;
                move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    i * 2
                }
            })
            .collect();
        let run = run_sharded(ShardConfig::new(4, 8), &clock, jobs, Backpressure::Block);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert!(run.sheds.is_empty());
        assert_eq!(
            run.results.into_iter().collect::<Option<Vec<_>>>(),
            Some((0..100).map(|i| i * 2).collect::<Vec<_>>())
        );
        assert!(run.peak_depth <= 8);
    }

    #[test]
    fn skewed_jobs_are_stolen() {
        // One shard gets all the slow jobs; with stealing, the other
        // workers take them off its queue.
        let clock = clock();
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
            .map(|i| {
                Box::new(move || {
                    if i % 4 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    i
                }) as _
            })
            .collect();
        let run = run_sharded(ShardConfig::new(4, 2), &clock, jobs, Backpressure::Block);
        assert_eq!(run.results.iter().flatten().count(), 64);
        // Not asserted > 0 strictly (scheduling-dependent), but the
        // counter must at least be consistent with the run.
        assert!(run.stolen <= 64);
    }

    #[test]
    fn probe_order_is_home_first_then_a_permutation() {
        for shards in [1usize, 2, 3, 4, 8] {
            for index in 0..64 {
                let home = index % shards;
                let order: Vec<usize> = probe_order(home, index, shards).collect();
                assert_eq!(order.len(), shards);
                assert_eq!(order[0], home, "home shard is always probed first");
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(
                    sorted,
                    (0..shards).collect::<Vec<_>>(),
                    "every shard is probed exactly once"
                );
            }
        }
    }

    #[test]
    fn overflow_first_choice_is_distributed_not_herded() {
        // ISSUE-10 regression: consecutive jobs sharing a home shard must
        // *not* all pick `home + 1` as their first overflow target. Count
        // the first non-home probe across many same-home jobs.
        let shards = 8usize;
        let home = 3usize;
        let mut first_choice = vec![0usize; shards];
        let rounds = 7 * 40; // full rotation cycles, so the split is exact
        for round in 0..rounds {
            let index = home + round * shards; // all map to the same home
            let t = probe_order(home, index, shards)
                .nth(1)
                .expect("more than one shard");
            assert_ne!(t, home);
            first_choice[t] += 1;
        }
        assert_eq!(first_choice[home], 0);
        let max = *first_choice.iter().max().unwrap();
        assert!(
            max < rounds,
            "fixed probe order would pile all {rounds} overflows onto one shard"
        );
        for (t, &count) in first_choice.iter().enumerate() {
            if t == home {
                continue;
            }
            assert_eq!(
                count,
                rounds / (shards - 1),
                "first overflow choice must spread evenly (shard {t}: {count})"
            );
        }
    }

    #[test]
    fn shed_mode_refuses_with_typed_overload() {
        let clock = clock();
        // 1 shard × capacity 1, and the single worker is blocked until
        // we let it go — so at most capacity+1 jobs are taken, the rest
        // must shed.
        let gate = Arc::new(AtomicBool::new(false));
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                let gate = Arc::clone(&gate);
                Box::new(move || {
                    while !gate.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                    i
                }) as _
            })
            .collect();
        let gate_release = Arc::clone(&gate);
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            gate_release.store(true, Ordering::Release);
        });
        let run = run_sharded(ShardConfig::new(1, 1), &clock, jobs, Backpressure::Shed);
        releaser.join().unwrap();
        assert!(!run.sheds.is_empty(), "flood over a 1-slot queue must shed");
        for (i, fault) in &run.sheds {
            assert!(fault.is_overloaded());
            assert_eq!(fault.kind, FaultKind::Overloaded);
            assert_eq!(
                fault.retry_after_us,
                Some(overload_hint(&clock, 1)),
                "shed {i} carries the drain hint"
            );
            assert!(run.results[*i].is_none());
        }
        let completed = run.results.iter().flatten().count();
        assert_eq!(completed + run.sheds.len(), 8);
        assert!(run.shed_rounds >= run.sheds.len() as u64);
    }

    struct Echo;
    impl ServiceEndpoint for Echo {
        fn handle(&self, request: &Envelope) -> Result<Envelope, Fault> {
            Ok(Envelope::request(
                format!("{}Response", request.operation),
                request.body.clone(),
            ))
        }
        fn operations(&self) -> Vec<String> {
            vec!["echo".into()]
        }
    }

    #[test]
    fn queued_bus_round_trips_and_charges_like_the_bare_bus() {
        let bus = ServiceBus::new(clock());
        bus.register("svc", Arc::new(Echo));
        let queued = QueuedBus::new(bus.clone(), 16);
        let resp = queued
            .call("svc", &Envelope::request("echo", Element::new("hi")))
            .unwrap();
        assert_eq!(resp.operation, "echoResponse");
        assert_eq!(resp.body.name, "hi");
        assert_eq!(
            queued.clock().elapsed(),
            bus.clock().model().cost_of(CostKind::SoapRoundTrip)
        );
    }

    /// Endpoint that flags entry and then spins until released —
    /// deterministically parks the dispatcher thread mid-call.
    struct Holding {
        entered: Arc<AtomicBool>,
        release: Arc<AtomicBool>,
    }
    impl ServiceEndpoint for Holding {
        fn handle(&self, request: &Envelope) -> Result<Envelope, Fault> {
            self.entered.store(true, Ordering::Release);
            while !self.release.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            Ok(Envelope::request("heldResponse", request.body.clone()))
        }
        fn operations(&self) -> Vec<String> {
            vec!["hold".into()]
        }
    }

    #[test]
    fn queued_bus_sheds_when_full_without_encoding() {
        let bus = ServiceBus::new(clock());
        let entered = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        bus.register(
            "svc",
            Arc::new(Holding {
                entered: Arc::clone(&entered),
                release: Arc::clone(&release),
            }),
        );
        let queued = Arc::new(QueuedBus::new(bus.clone(), 1));

        // First call occupies the dispatcher thread inside the endpoint…
        let q1 = Arc::clone(&queued);
        let t1 = std::thread::spawn(move || {
            q1.call("svc", &Envelope::request("hold", Element::new("a")))
        });
        while !entered.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        // …and a second call parks in the queue, filling capacity 1.
        let q2 = Arc::clone(&queued);
        let t2 = std::thread::spawn(move || {
            q2.call("svc", &Envelope::request("hold", Element::new("b")))
        });
        while queued.depth() == 0 {
            std::thread::yield_now();
        }

        // The dispatcher is blocked, so nothing charges between here and
        // the shed.
        let spent = bus.clock().elapsed();
        let request = Envelope::request("hold", Element::new("c"));
        let err = queued.call("svc", &request).unwrap_err();
        assert!(err.is_overloaded());
        assert_eq!(
            err.retry_after_us,
            Some(overload_hint(bus.clock(), 1)),
            "shed carries the drain estimate"
        );
        // Shed before charging and before a single byte was encoded.
        assert_eq!(bus.clock().elapsed(), spent);
        assert!(!request.wire_cached());

        release.store(true, Ordering::Release);
        assert!(t1.join().unwrap().is_ok());
        assert!(t2.join().unwrap().is_ok());
    }
}
