//! The SOA substrate: envelopes, service bus, the TN web service, and the
//! simulated-latency clock (paper §6).
//!
//! The prototype deploys trust negotiation as a Web Service (Tomcat + Axis
//! SOAP + Oracle) exposing three operations — `StartNegotiation`,
//! `PolicyExchange`, `CredentialExchange` — "each corresponding to one of
//! the main phases of the negotiation process" (§6.2), and the VO
//! Management toolkit invokes it "as a web service when needed" (§6).
//!
//! This crate reproduces that architecture in-process:
//!
//! * [`envelope`] — SOAP-style request/response envelopes carrying XML
//!   bodies,
//! * [`bus`] — a service registry + dispatcher with per-call latency
//!   accounting,
//! * [`simclock`] — the simulated wall-clock. Every SOAP round-trip, DB
//!   query, signature operation, and JSP/GUI step is charged a latency
//!   calibrated to the paper's 2006-era testbed so that Fig. 9's *shape*
//!   can be regenerated (see `simclock::CostModel`),
//! * [`tn_service`] — the TN web service: negotiation state keyed by
//!   negotiation id, backed by a policy/credential [`trust_vo_store`]
//!   database per party,
//! * [`client`] — the `ClientWS` analogue that drives a whole negotiation
//!   through the service operations,
//! * [`retry`] — sim-time capped exponential backoff for transport faults,
//!   used by the resilient client driver and `vo::formation` when the bus
//!   is wrapped in the fault-injecting `trust-vo-netsim` transport,
//! * [`wire`] — the real byte boundary every bus call crosses: a
//!   length-framed (`[len][crc32][payload]`) canonical binary codec for
//!   envelopes and replies, with the XML path kept as a differential
//!   oracle and a `TRUST_VO_WIRE` kill-switch,
//! * [`shard`] — the sharded work-stealing executor (per-shard bounded
//!   queues, `bus.queue_depth`/`bus.shed` backpressure, typed
//!   `Overloaded` sheds) and the single-queue dispatcher bus it is
//!   benchmarked against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod client;
pub mod envelope;
pub mod retry;
pub mod shard;
pub mod simclock;
pub mod tn_service;
pub mod wire;

pub use bus::{CallGate, ServiceBus, ServiceEndpoint, Transport};
pub use client::{
    run_negotiation, run_negotiation_resilient, ClientRun, ResilientRun, ResumePolicy,
};
pub use envelope::{Envelope, Fault, FaultKind};
pub use retry::{call_with_retry, Attempted, RetryPolicy};
pub use shard::{QueuedBus, ShardConfig, ShardRun};
pub use simclock::{CostModel, SimClock, SimDuration};
pub use tn_service::TnService;
pub use wire::wire_enabled;
