//! The client application driving a negotiation through the web service.
//!
//! "A client application has also been developed, ClientWS.java,
//! implementing the negotiation protocol by invoking the Web service's
//! operations." (§6.2) This is its Rust analogue: it issues
//! `StartNegotiation`, one `PolicyExchange`, and then `CredentialExchange`
//! calls until the service reports completion, returning the accounting a
//! GUI would display.
//!
//! Two drivers are provided: [`run_negotiation`] assumes a reliable bus
//! (any transport fault is fatal), while [`run_negotiation_resilient`]
//! survives a lossy one — every call carries an idempotency key and is
//! retried under a [`RetryPolicy`], and when retries are exhausted the
//! driver falls back to the checkpointed-resume protocol: it reconnects
//! and presents the freshest `ResumeToken` the service handed out, so the
//! negotiation continues from the last verified disclosure instead of
//! restarting phase 1.

use crate::bus::{ServiceBus, Transport};
use crate::envelope::{Envelope, Fault};
use crate::retry::{call_with_retry, RetryPolicy};
use crate::simclock::SimDuration;
use trust_vo_negotiation::Strategy;
use trust_vo_obs::{Collector, FlightRecorder, SpanGuard, SpanLink, TraceContext};
use trust_vo_xmldoc::Element;

/// Stamp `env` with the context of the `client.call` span just opened
/// under `parent`, so every downstream hop (retry attempt, fault
/// transport, bus, service) parents its spans under that call. Inert
/// guards (disabled obs) and untraced links leave the envelope alone.
fn stamp(env: Envelope, span: &SpanGuard, parent: SpanLink) -> Envelope {
    match span.id() {
        Some(id) if span.trace_id() != 0 => env.with_trace(TraceContext {
            trace_id: span.trace_id(),
            span_id: id,
            parent_span_id: parent.parent,
        }),
        _ => env,
    }
}

/// The result of a driven negotiation, as the client observes it.
#[derive(Debug, Clone)]
pub struct ClientRun {
    /// The negotiation id the service assigned.
    pub negotiation_id: u64,
    /// Number of credential-exchange calls made.
    pub credential_calls: usize,
    /// Disclosures listed in the trust sequence.
    pub sequence_len: usize,
    /// Simulated time consumed by this run.
    pub sim_elapsed: SimDuration,
}

/// Issue one traced call over the bus: a `client.call` span under
/// `parent` wrapping the dispatch of the stamped envelope.
fn bus_call(
    bus: &ServiceBus,
    obs: &Collector,
    parent: SpanLink,
    service: &str,
    env: Envelope,
) -> Result<Envelope, Fault> {
    let mut span = obs.span_linked("client.call", parent);
    span.field("operation", env.operation.as_str());
    let result = bus.call(service, &stamp(env, &span, parent));
    span.field("ok", result.is_ok());
    result
}

/// Drive a full negotiation over the bus against the TN service
/// registered under `service`.
///
/// When obs is attached to the bus clock, the run mints a fresh trace:
/// one `client.negotiation` root span with a `client.call` child per
/// operation, and every envelope carries the call's [`TraceContext`].
pub fn run_negotiation(
    bus: &ServiceBus,
    service: &str,
    requester: &str,
    controller: &str,
    resource: &str,
    strategy: Strategy,
) -> Result<ClientRun, Fault> {
    let started_at = bus.clock().elapsed();
    let obs = bus.clock().collector();
    let mut neg_span = obs.span_linked(
        "client.negotiation",
        SpanLink {
            trace_id: obs.new_trace_id(),
            parent: None,
        },
    );
    neg_span.field("requester", requester);
    neg_span.field("resource", resource);
    let neg_link = neg_span.link();
    // StartNegotiation.
    let start = bus_call(
        bus,
        &obs,
        neg_link,
        service,
        Envelope::request(
            "StartNegotiation",
            Element::new("StartNegotiationRequest")
                .child(Element::new("strategy").text(strategy.wire_name()))
                .child(Element::new("requester").text(requester))
                .child(Element::new("counterpartUrl").text(controller))
                .child(Element::new("resource").text(resource)),
        ),
    )?;
    let negotiation_id: u64 = start
        .body
        .child_text("negotiationId")
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| Fault::new("BadResponse", "missing negotiation id"))?;

    // PolicyExchange (one call resolves the whole policy evaluation phase).
    let policy = bus_call(
        bus,
        &obs,
        neg_link,
        service,
        Envelope::request("PolicyExchange", Element::new("PolicyExchangeRequest"))
            .with_negotiation(negotiation_id),
    )?;
    let sequence_len = policy
        .body
        .first("trustSequence")
        .map(|seq| seq.all("disclosure").count())
        .unwrap_or(0);

    // CredentialExchange until completed.
    let mut credential_calls = 0;
    loop {
        let resp = bus_call(
            bus,
            &obs,
            neg_link,
            service,
            Envelope::request(
                "CredentialExchange",
                Element::new("CredentialExchangeRequest"),
            )
            .with_negotiation(negotiation_id),
        )?;
        credential_calls += 1;
        if resp.body.get_attr("status") == Some("completed") {
            break;
        }
        if credential_calls > sequence_len + 1 {
            return Err(Fault::new(
                "ProtocolError",
                "service never reported completion",
            ));
        }
    }
    let sim_elapsed = SimDuration(bus.clock().elapsed().0 - started_at.0);
    Ok(ClientRun {
        negotiation_id,
        credential_calls,
        sequence_len,
        sim_elapsed,
    })
}

/// Reconnect behaviour of the resilient driver, on top of the per-call
/// [`RetryPolicy`]: how many times a *session* may be re-established
/// (fresh start or token resume) and how long to back off before each
/// reconnect, charged to the sim clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumePolicy {
    /// Maximum session re-establishment cycles before giving up.
    pub max_cycles: u32,
    /// Sim-time pause before each reconnect attempt.
    pub reconnect_delay: SimDuration,
}

impl ResumePolicy {
    /// Default profile used by the benches: up to 8 reconnect cycles,
    /// 500 ms (sim) apart.
    pub fn standard() -> Self {
        ResumePolicy {
            max_cycles: 8,
            reconnect_delay: SimDuration::from_millis(500),
        }
    }

    /// Never reconnect: the first exhausted retry budget is fatal.
    pub fn none() -> Self {
        ResumePolicy {
            max_cycles: 0,
            reconnect_delay: SimDuration::ZERO,
        }
    }
}

/// Accounting for a resilient run: the underlying [`ClientRun`] plus the
/// recovery work it took to get there.
#[derive(Debug, Clone)]
pub struct ResilientRun {
    /// The completed negotiation, as a plain run.
    pub run: ClientRun,
    /// Transport-level call retries across all operations.
    pub retries: u64,
    /// Sessions re-established via `ResumeNegotiation` with a token.
    pub resumes: u64,
    /// Sessions restarted from scratch (no token held yet).
    pub restarts: u64,
}

/// SplitMix64 finalizer: derives a fresh idempotency key for each logical
/// call from the driver's `key_seed` and a monotone counter, so retries of
/// the same call share a key while distinct calls never collide.
fn mix_key(seed: u64, counter: u64) -> u64 {
    let mut z = seed ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Faults the driver answers by re-establishing the session rather than
/// giving up: exhausted transport retries, and `NoSuchNegotiation`, which
/// is what a crashed-and-restarted endpoint reports for a session that
/// lived only in its volatile memory.
fn session_lost(fault: &Fault) -> bool {
    fault.is_transport() || fault.code == "NoSuchNegotiation"
}

#[allow(clippy::too_many_arguments)]
fn call_attempt<T: Transport + ?Sized>(
    transport: &T,
    obs: &Collector,
    parent: SpanLink,
    service: &str,
    request: Envelope,
    retry: &RetryPolicy,
    retries: &mut u64,
    flight: &mut FlightRecorder,
) -> Result<Envelope, Fault> {
    let mut span = obs.span_linked("client.call", parent);
    span.field("operation", request.operation.as_str());
    let request = stamp(request, &span, parent);
    let sim_now = |t: &T| t.clock().elapsed().0;
    flight.note(sim_now(transport), "call", request.operation.clone());
    let attempted = call_with_retry(transport, service, &request, retry);
    *retries += attempted.retries();
    if attempted.retries() > 0 {
        flight.note(
            sim_now(transport),
            "retry",
            format!(
                "{} needed {} attempts",
                request.operation, attempted.attempts
            ),
        );
    }
    if let Err(f) = &attempted.outcome {
        flight.note(
            sim_now(transport),
            "fault",
            format!("{} {f}", request.operation),
        );
    }
    span.field("ok", attempted.outcome.is_ok());
    attempted.outcome
}

/// Record a terminal failure: note it in the flight recorder, dump the
/// recorder as a post-mortem artifact, and hand the fault back.
fn give_up(
    obs: &Collector,
    flight: &mut FlightRecorder,
    sim_us: u64,
    reason: &str,
    label: &str,
    fault: Fault,
) -> Fault {
    flight.note(sim_us, "dead", format!("{reason}: {fault}"));
    flight.dump(obs, reason, label);
    fault
}

/// Drive a negotiation to completion over an unreliable [`Transport`].
///
/// Every call carries an idempotency key derived from `key_seed` and is
/// retried under `retry`; when a call's retry budget is exhausted — or the
/// service forgot the session after a crash — the driver reconnects under
/// `resume`: with the freshest `ResumeToken` it holds it replays from the
/// service's durable checkpoint, otherwise it restarts from phase 1. The
/// negotiation is requested with `resumable="true"`, so the service
/// checkpoints after phase 1 and after every verified disclosure.
///
/// Tracing: the whole run — every session cycle, resume, and restart —
/// lives under **one** `client.negotiation` span parented at `link`, so
/// pre-crash work and post-resume work stay causally linked in the same
/// trace (keyed by the negotiation, not by the session). Callers without
/// a trace pass `SpanLink::default()`; when obs is enabled the run then
/// mints its own trace id and becomes a root. A [`FlightRecorder`] notes
/// every call/retry/resume/restart and is dumped into the collector on a
/// terminal fault, abandonment (reconnect budget exhausted), or failed
/// resume.
#[allow(clippy::too_many_arguments)]
pub fn run_negotiation_resilient<T: Transport + ?Sized>(
    transport: &T,
    service: &str,
    requester: &str,
    controller: &str,
    resource: &str,
    strategy: Strategy,
    retry: &RetryPolicy,
    resume: &ResumePolicy,
    key_seed: u64,
    link: SpanLink,
) -> Result<ResilientRun, Fault> {
    let clock = transport.clock();
    let started_at = clock.elapsed();
    let mut key_counter = 0u64;
    let mut retries = 0u64;
    let mut resumes = 0u64;
    let mut restarts = 0u64;
    let mut cycles = 0u32;
    let mut token: Option<Element> = None;
    let mut credential_calls = 0usize;
    let mut sequence_len = 0usize;
    let mut negotiation_id;

    let obs = clock.collector();
    let link = if obs.is_enabled() && link.trace_id == 0 {
        SpanLink {
            trace_id: obs.new_trace_id(),
            parent: link.parent,
        }
    } else {
        link
    };
    let mut neg_span = obs.span_linked("client.negotiation", link);
    neg_span.field("requester", requester);
    neg_span.field("resource", resource);
    let neg_link = neg_span.link();
    let mut flight = FlightRecorder::for_collector(&obs);
    let label = format!("neg-{key_seed:016x}");
    // Burn one reconnect cycle: charge the delay (under its own span, so
    // the wait is attributable) and report whether the budget allowed it.
    let reconnect = |cycles: &mut u32| -> bool {
        if *cycles >= resume.max_cycles {
            return false;
        }
        *cycles += 1;
        let mut span = obs.span_linked("client.reconnect", neg_link);
        span.field("cycle", *cycles);
        clock.advance(resume.reconnect_delay);
        true
    };

    'session: loop {
        // Establish a session: resume from the freshest token if one is
        // held, otherwise start over from phase 1.
        let remaining_bound;
        if let Some(tok) = token.clone() {
            key_counter += 1;
            let env = Envelope::request(
                "ResumeNegotiation",
                Element::new("ResumeNegotiationRequest").child(tok),
            )
            .with_idempotency(mix_key(key_seed, key_counter));
            match call_attempt(
                transport,
                &obs,
                neg_link,
                service,
                env,
                retry,
                &mut retries,
                &mut flight,
            ) {
                Ok(resp) => {
                    resumes += 1;
                    if obs.is_enabled() {
                        obs.counter_add("client.resumes", 1);
                    }
                    negotiation_id = match resp.negotiation_id {
                        Some(id) => id,
                        None => {
                            return Err(give_up(
                                &obs,
                                &mut flight,
                                clock.elapsed().0,
                                "failed-resume",
                                &label,
                                Fault::new("BadResponse", "resume lacks negotiation id"),
                            ))
                        }
                    };
                    flight.note(
                        clock.elapsed().0,
                        "resume",
                        format!("negotiation {negotiation_id} resumed from checkpoint"),
                    );
                    remaining_bound = resp
                        .body
                        .get_attr("remaining")
                        .and_then(|t| t.parse().ok())
                        .unwrap_or(sequence_len);
                }
                Err(f) if session_lost(&f) && reconnect(&mut cycles) => {
                    continue 'session;
                }
                Err(f) => {
                    let reason = if session_lost(&f) {
                        "abandoned"
                    } else {
                        "failed-resume"
                    };
                    return Err(give_up(
                        &obs,
                        &mut flight,
                        clock.elapsed().0,
                        reason,
                        &label,
                        f,
                    ));
                }
            }
        } else {
            key_counter += 1;
            let env = Envelope::request(
                "StartNegotiation",
                Element::new("StartNegotiationRequest")
                    .attr("resumable", "true")
                    .child(Element::new("strategy").text(strategy.wire_name()))
                    .child(Element::new("requester").text(requester))
                    .child(Element::new("counterpartUrl").text(controller))
                    .child(Element::new("resource").text(resource)),
            )
            .with_idempotency(mix_key(key_seed, key_counter));
            let start = match call_attempt(
                transport,
                &obs,
                neg_link,
                service,
                env,
                retry,
                &mut retries,
                &mut flight,
            ) {
                Ok(resp) => resp,
                Err(f) if f.is_transport() && reconnect(&mut cycles) => {
                    restarts += 1;
                    flight.note(
                        clock.elapsed().0,
                        "restart",
                        "no token held; restarting from phase 1",
                    );
                    continue 'session;
                }
                Err(f) => {
                    let reason = if f.is_transport() {
                        "abandoned"
                    } else {
                        "terminal-fault"
                    };
                    return Err(give_up(
                        &obs,
                        &mut flight,
                        clock.elapsed().0,
                        reason,
                        &label,
                        f,
                    ));
                }
            };
            let id: u64 = match start
                .body
                .child_text("negotiationId")
                .and_then(|t| t.parse().ok())
            {
                Some(id) => id,
                None => {
                    return Err(give_up(
                        &obs,
                        &mut flight,
                        clock.elapsed().0,
                        "terminal-fault",
                        &label,
                        Fault::new("BadResponse", "missing negotiation id"),
                    ))
                }
            };

            key_counter += 1;
            let env = Envelope::request("PolicyExchange", Element::new("PolicyExchangeRequest"))
                .with_negotiation(id)
                .with_idempotency(mix_key(key_seed, key_counter));
            match call_attempt(
                transport,
                &obs,
                neg_link,
                service,
                env,
                retry,
                &mut retries,
                &mut flight,
            ) {
                Ok(policy) => {
                    sequence_len = policy
                        .body
                        .first("trustSequence")
                        .map(|seq| seq.all("disclosure").count())
                        .unwrap_or(0);
                    token = policy.body.first("ResumeToken").cloned();
                    negotiation_id = id;
                    remaining_bound = sequence_len;
                }
                Err(f) if session_lost(&f) && reconnect(&mut cycles) => {
                    if token.is_none() {
                        restarts += 1;
                        flight.note(
                            clock.elapsed().0,
                            "restart",
                            "no token held; restarting from phase 1",
                        );
                    }
                    continue 'session;
                }
                Err(f) => {
                    let reason = if session_lost(&f) {
                        "abandoned"
                    } else {
                        "terminal-fault"
                    };
                    return Err(give_up(
                        &obs,
                        &mut flight,
                        clock.elapsed().0,
                        reason,
                        &label,
                        f,
                    ));
                }
            }
        }

        // Phase 2 on this session: exchange credentials until completion,
        // refreshing the held token after every verified disclosure.
        let mut calls_this_session = 0usize;
        loop {
            key_counter += 1;
            let env = Envelope::request(
                "CredentialExchange",
                Element::new("CredentialExchangeRequest"),
            )
            .with_negotiation(negotiation_id)
            .with_idempotency(mix_key(key_seed, key_counter));
            match call_attempt(
                transport,
                &obs,
                neg_link,
                service,
                env,
                retry,
                &mut retries,
                &mut flight,
            ) {
                Ok(resp) => {
                    credential_calls += 1;
                    calls_this_session += 1;
                    if let Some(t) = resp.body.first("ResumeToken") {
                        token = Some(t.clone());
                    }
                    if resp.body.get_attr("status") == Some("completed") {
                        break 'session;
                    }
                    if calls_this_session > remaining_bound + 1 {
                        return Err(give_up(
                            &obs,
                            &mut flight,
                            clock.elapsed().0,
                            "terminal-fault",
                            &label,
                            Fault::new("ProtocolError", "service never reported completion"),
                        ));
                    }
                }
                Err(f) if session_lost(&f) && reconnect(&mut cycles) => {
                    if token.is_none() {
                        restarts += 1;
                        flight.note(
                            clock.elapsed().0,
                            "restart",
                            "no token held; restarting from phase 1",
                        );
                    }
                    continue 'session;
                }
                Err(f) => {
                    let reason = if session_lost(&f) {
                        "abandoned"
                    } else {
                        "terminal-fault"
                    };
                    return Err(give_up(
                        &obs,
                        &mut flight,
                        clock.elapsed().0,
                        reason,
                        &label,
                        f,
                    ));
                }
            }
        }
    }

    neg_span.field("resumes", resumes as i64);
    neg_span.field("restarts", restarts as i64);
    let sim_elapsed = SimDuration(clock.elapsed().0 - started_at.0);
    Ok(ResilientRun {
        run: ClientRun {
            negotiation_id,
            credential_calls,
            sequence_len,
            sim_elapsed,
        },
        retries,
        resumes,
        restarts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simclock::{CostModel, SimClock};
    use crate::tn_service::TnService;
    use std::sync::Arc;
    use trust_vo_credential::{CredentialAuthority, TimeRange, Timestamp};
    use trust_vo_negotiation::Party;
    use trust_vo_policy::{DisclosurePolicy, Resource, Term};
    use trust_vo_store::Database;

    fn setup() -> ServiceBus {
        let clock = SimClock::new(
            CostModel::paper_testbed(),
            Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0),
        );
        let bus = ServiceBus::new(clock.clone());
        let svc = TnService::new(clock, Database::new());

        let mut ca = CredentialAuthority::new("AAA");
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
        let mut aircraft = Party::new("Aircraft");
        let mut aerospace = Party::new("Aerospace");
        let quality = ca
            .issue(
                "WebDesignerQuality",
                "Aerospace",
                aerospace.keys.public,
                vec![],
                window,
            )
            .unwrap();
        aerospace.profile.add(quality);
        aircraft.policies.add(DisclosurePolicy::rule(
            "p1",
            Resource::service("VoMembership"),
            vec![Term::of_type("WebDesignerQuality")],
        ));
        aircraft.trust_root(ca.public_key());
        aerospace.trust_root(ca.public_key());
        svc.register_party(aerospace);
        svc.register_party(aircraft);
        bus.register("tn", Arc::new(svc));
        bus
    }

    #[test]
    fn client_drives_negotiation_to_completion() {
        let bus = setup();
        let run = run_negotiation(
            &bus,
            "tn",
            "Aerospace",
            "Aircraft",
            "VoMembership",
            Strategy::Standard,
        )
        .unwrap();
        assert_eq!(run.sequence_len, 1);
        assert!(run.credential_calls >= 1);
        assert!(run.sim_elapsed > SimDuration::ZERO);
    }

    #[test]
    fn client_surfaces_faults() {
        let bus = setup();
        let err = run_negotiation(
            &bus,
            "tn",
            "Ghost",
            "Aircraft",
            "VoMembership",
            Strategy::Standard,
        )
        .unwrap_err();
        assert_eq!(err.code, "UnknownParty");
        let err = run_negotiation(&bus, "nope", "a", "b", "r", Strategy::Standard).unwrap_err();
        assert_eq!(err.code, "NoSuchService");
    }

    /// A deterministic chaos wrapper: fails chosen call indices with a
    /// transport fault and can crash the endpoint before a chosen call.
    struct Chaos {
        bus: ServiceBus,
        calls: std::sync::atomic::AtomicU64,
        fail_calls: std::collections::HashSet<u64>,
        fail_all: bool,
        crash_before: Option<u64>,
    }

    impl Chaos {
        fn new(bus: ServiceBus) -> Self {
            Chaos {
                bus,
                calls: std::sync::atomic::AtomicU64::new(0),
                fail_calls: Default::default(),
                fail_all: false,
                crash_before: None,
            }
        }
    }

    impl Transport for Chaos {
        fn call(&self, service: &str, request: &Envelope) -> Result<Envelope, Fault> {
            let n = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if self.crash_before == Some(n) {
                if let Some(ep) = self.bus.endpoint(service) {
                    ep.on_crash();
                }
            }
            if self.fail_all || self.fail_calls.contains(&n) {
                return Err(Fault::transport("Timeout", "injected"));
            }
            self.bus.call(service, request)
        }

        fn clock(&self) -> &crate::simclock::SimClock {
            self.bus.clock()
        }
    }

    fn resilient(
        chaos: &Chaos,
        retry: &RetryPolicy,
        resume: &ResumePolicy,
    ) -> Result<ResilientRun, Fault> {
        run_negotiation_resilient(
            chaos,
            "tn",
            "Aerospace",
            "Aircraft",
            "VoMembership",
            Strategy::Standard,
            retry,
            resume,
            0xD00D,
            SpanLink::default(),
        )
    }

    #[test]
    fn resilient_driver_matches_plain_on_reliable_transport() {
        let bus = setup();
        let plain = run_negotiation(
            &bus,
            "tn",
            "Aerospace",
            "Aircraft",
            "VoMembership",
            Strategy::Standard,
        )
        .unwrap();
        let bus2 = setup();
        let chaos = Chaos::new(bus2);
        let run = resilient(&chaos, &RetryPolicy::standard(), &ResumePolicy::standard()).unwrap();
        assert_eq!(run.retries, 0);
        assert_eq!(run.resumes, 0);
        assert_eq!(run.restarts, 0);
        assert_eq!(run.run.sequence_len, plain.sequence_len);
        assert_eq!(run.run.credential_calls, plain.credential_calls);
    }

    #[test]
    fn resilient_driver_retries_transport_faults() {
        let bus = setup();
        let mut chaos = Chaos::new(bus);
        // Calls: 0 = Start, 1 = Policy, 2 = first CredentialExchange.
        chaos.fail_calls.insert(2);
        let run = resilient(&chaos, &RetryPolicy::standard(), &ResumePolicy::none()).unwrap();
        assert_eq!(run.retries, 1);
        assert_eq!(run.resumes, 0);
        assert_eq!(run.restarts, 0);
        assert_eq!(run.run.credential_calls, 1);
    }

    #[test]
    fn resilient_driver_resumes_after_endpoint_crash() {
        let bus = setup();
        let mut chaos = Chaos::new(bus);
        // Crash the service right before the first CredentialExchange:
        // volatile sessions are wiped, the durable checkpoint survives.
        chaos.crash_before = Some(2);
        let run = resilient(&chaos, &RetryPolicy::none(), &ResumePolicy::standard()).unwrap();
        assert_eq!(run.resumes, 1);
        assert_eq!(run.restarts, 0);
        assert_eq!(run.run.credential_calls, 1);
        assert_eq!(run.run.sequence_len, 1);
    }

    #[test]
    fn resilient_driver_restarts_when_no_token_is_held() {
        let bus = setup();
        let mut chaos = Chaos::new(bus);
        // Fail the very first StartNegotiation; no token exists yet, so
        // the driver must start over from phase 1.
        chaos.fail_calls.insert(0);
        let run = resilient(&chaos, &RetryPolicy::none(), &ResumePolicy::standard()).unwrap();
        assert_eq!(run.restarts, 1);
        assert_eq!(run.resumes, 0);
    }

    #[test]
    fn resilient_driver_gives_up_after_max_cycles() {
        let bus = setup();
        let mut chaos = Chaos::new(bus);
        chaos.fail_all = true;
        let err = resilient(
            &chaos,
            &RetryPolicy::none(),
            &ResumePolicy {
                max_cycles: 2,
                reconnect_delay: SimDuration::from_millis(1),
            },
        )
        .unwrap_err();
        assert!(err.is_transport());
        // 1 original + 2 reconnect cycles = 3 StartNegotiation attempts.
        assert_eq!(chaos.calls.load(std::sync::atomic::Ordering::SeqCst), 3);
    }

    #[test]
    fn sim_elapsed_scales_with_strategy() {
        // Suspicious adds ownership-proof charges, so it must cost at
        // least as much virtual time as standard on the same workload.
        let bus1 = setup();
        let standard = run_negotiation(
            &bus1,
            "tn",
            "Aerospace",
            "Aircraft",
            "VoMembership",
            Strategy::Standard,
        )
        .unwrap();
        let bus2 = setup();
        let suspicious = run_negotiation(
            &bus2,
            "tn",
            "Aerospace",
            "Aircraft",
            "VoMembership",
            Strategy::Suspicious,
        )
        .unwrap();
        assert!(suspicious.sim_elapsed >= standard.sim_elapsed);
    }
}
