//! The client application driving a negotiation through the web service.
//!
//! "A client application has also been developed, ClientWS.java,
//! implementing the negotiation protocol by invoking the Web service's
//! operations." (§6.2) This is its Rust analogue: it issues
//! `StartNegotiation`, one `PolicyExchange`, and then `CredentialExchange`
//! calls until the service reports completion, returning the accounting a
//! GUI would display.

use crate::bus::ServiceBus;
use crate::envelope::{Envelope, Fault};
use crate::simclock::SimDuration;
use trust_vo_negotiation::Strategy;
use trust_vo_xmldoc::Element;

/// The result of a driven negotiation, as the client observes it.
#[derive(Debug, Clone)]
pub struct ClientRun {
    /// The negotiation id the service assigned.
    pub negotiation_id: u64,
    /// Number of credential-exchange calls made.
    pub credential_calls: usize,
    /// Disclosures listed in the trust sequence.
    pub sequence_len: usize,
    /// Simulated time consumed by this run.
    pub sim_elapsed: SimDuration,
}

/// Drive a full negotiation over the bus against the TN service
/// registered under `service`.
pub fn run_negotiation(
    bus: &ServiceBus,
    service: &str,
    requester: &str,
    controller: &str,
    resource: &str,
    strategy: Strategy,
) -> Result<ClientRun, Fault> {
    let started_at = bus.clock().elapsed();
    // StartNegotiation.
    let start = bus.call(
        service,
        &Envelope::request(
            "StartNegotiation",
            Element::new("StartNegotiationRequest")
                .child(Element::new("strategy").text(strategy.wire_name()))
                .child(Element::new("requester").text(requester))
                .child(Element::new("counterpartUrl").text(controller))
                .child(Element::new("resource").text(resource)),
        ),
    )?;
    let negotiation_id: u64 = start
        .body
        .child_text("negotiationId")
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| Fault::new("BadResponse", "missing negotiation id"))?;

    // PolicyExchange (one call resolves the whole policy evaluation phase).
    let policy = bus.call(
        service,
        &Envelope::request("PolicyExchange", Element::new("PolicyExchangeRequest"))
            .with_negotiation(negotiation_id),
    )?;
    let sequence_len = policy
        .body
        .first("trustSequence")
        .map(|seq| seq.all("disclosure").count())
        .unwrap_or(0);

    // CredentialExchange until completed.
    let mut credential_calls = 0;
    loop {
        let resp = bus.call(
            service,
            &Envelope::request(
                "CredentialExchange",
                Element::new("CredentialExchangeRequest"),
            )
            .with_negotiation(negotiation_id),
        )?;
        credential_calls += 1;
        if resp.body.get_attr("status") == Some("completed") {
            break;
        }
        if credential_calls > sequence_len + 1 {
            return Err(Fault::new(
                "ProtocolError",
                "service never reported completion",
            ));
        }
    }
    let sim_elapsed = SimDuration(bus.clock().elapsed().0 - started_at.0);
    Ok(ClientRun {
        negotiation_id,
        credential_calls,
        sequence_len,
        sim_elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simclock::{CostModel, SimClock};
    use crate::tn_service::TnService;
    use std::sync::Arc;
    use trust_vo_credential::{CredentialAuthority, TimeRange, Timestamp};
    use trust_vo_negotiation::Party;
    use trust_vo_policy::{DisclosurePolicy, Resource, Term};
    use trust_vo_store::Database;

    fn setup() -> ServiceBus {
        let clock = SimClock::new(
            CostModel::paper_testbed(),
            Timestamp::from_ymd_hms(2009, 6, 1, 0, 0, 0),
        );
        let bus = ServiceBus::new(clock.clone());
        let svc = TnService::new(clock, Database::new());

        let mut ca = CredentialAuthority::new("AAA");
        let window = TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0));
        let mut aircraft = Party::new("Aircraft");
        let mut aerospace = Party::new("Aerospace");
        let quality = ca
            .issue(
                "WebDesignerQuality",
                "Aerospace",
                aerospace.keys.public,
                vec![],
                window,
            )
            .unwrap();
        aerospace.profile.add(quality);
        aircraft.policies.add(DisclosurePolicy::rule(
            "p1",
            Resource::service("VoMembership"),
            vec![Term::of_type("WebDesignerQuality")],
        ));
        aircraft.trust_root(ca.public_key());
        aerospace.trust_root(ca.public_key());
        svc.register_party(aerospace);
        svc.register_party(aircraft);
        bus.register("tn", Arc::new(svc));
        bus
    }

    #[test]
    fn client_drives_negotiation_to_completion() {
        let bus = setup();
        let run = run_negotiation(
            &bus,
            "tn",
            "Aerospace",
            "Aircraft",
            "VoMembership",
            Strategy::Standard,
        )
        .unwrap();
        assert_eq!(run.sequence_len, 1);
        assert!(run.credential_calls >= 1);
        assert!(run.sim_elapsed > SimDuration::ZERO);
    }

    #[test]
    fn client_surfaces_faults() {
        let bus = setup();
        let err = run_negotiation(
            &bus,
            "tn",
            "Ghost",
            "Aircraft",
            "VoMembership",
            Strategy::Standard,
        )
        .unwrap_err();
        assert_eq!(err.code, "UnknownParty");
        let err = run_negotiation(&bus, "nope", "a", "b", "r", Strategy::Standard).unwrap_err();
        assert_eq!(err.code, "NoSuchService");
    }

    #[test]
    fn sim_elapsed_scales_with_strategy() {
        // Suspicious adds ownership-proof charges, so it must cost at
        // least as much virtual time as standard on the same workload.
        let bus1 = setup();
        let standard = run_negotiation(
            &bus1,
            "tn",
            "Aerospace",
            "Aircraft",
            "VoMembership",
            Strategy::Standard,
        )
        .unwrap();
        let bus2 = setup();
        let suspicious = run_negotiation(
            &bus2,
            "tn",
            "Aerospace",
            "Aircraft",
            "VoMembership",
            Strategy::Suspicious,
        )
        .unwrap();
        assert!(suspicious.sim_elapsed >= standard.sim_elapsed);
    }
}
