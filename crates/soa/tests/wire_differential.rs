//! Differential properties pinning the binary wire codec against the XML
//! path, which is kept as the oracle: for envelopes, credentials, and
//! policies, `decode(binary(x)) == parse(xml(x)) == x`. Plus the torn-frame
//! property: any byte prefix of a framed stream decodes to the longest
//! clean record prefix and never panics.

use proptest::prelude::*;
use std::sync::Arc;
use trust_vo_credential::{Attribute, Credential, Timestamp};
use trust_vo_credential::{CredentialAuthority, TimeRange};
use trust_vo_obs::TraceContext;
use trust_vo_policy::xml::{policy_from_xml, policy_to_xml};
use trust_vo_policy::{DisclosurePolicy, Resource, Term};
use trust_vo_soa::wire;
use trust_vo_soa::Envelope;
use trust_vo_xmldoc::{decode_element, encode_element, Element, Node};

/// `Option`-valued strategy (the vendored proptest has no `option` module).
fn opt<S>(s: S) -> impl Strategy<Value = Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: std::fmt::Debug + Clone,
{
    prop_oneof![Just(None), s.prop_map(Some)]
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_.-]{0,8}"
}

fn arb_text() -> impl Strategy<Value = String> {
    // Printable, never whitespace-only (not canonical through the parser).
    "[ -~]{1,20}"
}

/// Canonical trees — deduped attribute keys, merged adjacent text — the
/// same shape the XML parser's own round-trip property generates.
fn arb_element() -> impl Strategy<Value = Element> {
    let leaf = (
        arb_name(),
        proptest::collection::vec((arb_name(), arb_text()), 0..3),
    )
        .prop_map(|(name, attrs)| {
            let mut seen = std::collections::HashSet::new();
            let mut e = Element::new(name);
            for (k, v) in attrs {
                if seen.insert(k.clone()) {
                    e.attrs.push((k, v));
                }
            }
            e
        });
    leaf.prop_recursive(3, 16, 4, |inner| {
        (
            arb_name(),
            proptest::collection::vec(
                prop_oneof![
                    inner.prop_map(Node::Element),
                    arb_text().prop_map(Node::Text),
                ],
                0..4,
            ),
        )
            .prop_map(|(name, children)| {
                let mut e = Element::new(name);
                for c in children {
                    match (e.children.last_mut(), c) {
                        (Some(Node::Text(prev)), Node::Text(t)) => prev.push_str(&t),
                        (_, c) => e.children.push(c),
                    }
                }
                e
            })
    })
}

fn arb_trace() -> impl Strategy<Value = TraceContext> {
    (any::<u64>(), any::<u64>(), opt(any::<u64>())).prop_map(
        |(trace_id, span_id, parent_span_id)| TraceContext {
            // 0 is the "untraced" sentinel; keep generated traces real.
            trace_id: trace_id.max(1),
            span_id,
            parent_span_id,
        },
    )
}

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (
        "[A-Za-z][A-Za-z0-9]{0,15}",
        arb_element(),
        opt(any::<u64>()),
        opt(any::<u64>()),
        opt(arb_trace()),
    )
        .prop_map(|(operation, body, negotiation, idempotency, trace)| {
            let mut env = Envelope::request(operation, body);
            if let Some(id) = negotiation {
                env = env.with_negotiation(id);
            }
            if let Some(key) = idempotency {
                env = env.with_idempotency(key);
            }
            if let Some(trace) = trace {
                env = env.with_trace(trace);
            }
            env
        })
}

fn xml_roundtrip(env: &Envelope) -> Envelope {
    let text = trust_vo_xmldoc::to_string(&env.to_xml());
    Envelope::from_xml(&trust_vo_xmldoc::parse(&text).expect("canonical XML parses"))
        .expect("canonical envelope parses")
}

proptest! {
    /// Binary and XML envelope codecs agree with each other and with the
    /// original, for the whole header surface (ids, keys, trace chains).
    #[test]
    fn envelope_binary_matches_xml_oracle(env in arb_envelope()) {
        let binary = wire::decode_envelope(&wire::encode_envelope(&env));
        prop_assert_eq!(binary.as_ref(), Some(&env));
        let xml = xml_roundtrip(&env);
        prop_assert_eq!(binary, Some(xml));
    }

    /// The 0 trace-id sentinel decodes to "untraced" in both codecs: a
    /// trace context with `trace_id == 0` is dropped identically by the
    /// lenient XML parse and the binary decoder.
    #[test]
    fn zero_trace_sentinel_agrees(span in any::<u64>(), parent in opt(any::<u64>())) {
        let env = Envelope::request("Echo", Element::new("x")).with_trace(TraceContext {
            trace_id: 0,
            span_id: span,
            parent_span_id: parent,
        });
        let binary = wire::decode_envelope(&wire::encode_envelope(&env)).unwrap();
        let xml = xml_roundtrip(&env);
        prop_assert_eq!(binary.trace, None);
        prop_assert_eq!(xml.trace, None);
        prop_assert_eq!(binary, xml);
    }

    /// Signed credentials survive both paths byte-for-byte: the XML tree a
    /// credential serializes to round-trips identically through the binary
    /// element codec, and re-parses to an equal credential either way.
    #[test]
    fn credential_binary_matches_xml_oracle(
        cred_type in arb_name(),
        subject in arb_name(),
        attrs in proptest::collection::vec((arb_name(), arb_text()), 0..4),
    ) {
        let mut ca = CredentialAuthority::new("DiffOracle CA");
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let keys = trust_vo_crypto::KeyPair::generate(&mut rng);
        let mut seen = std::collections::HashSet::new();
        let content: Vec<Attribute> = attrs
            .into_iter()
            .filter(|(name, _)| seen.insert(name.clone()))
            .map(|(name, value)| Attribute::new(name, value.as_str()))
            .collect();
        let cred = ca
            .issue(
                &cred_type,
                &subject,
                keys.public,
                content,
                TimeRange::one_year_from(Timestamp::from_ymd_hms(2009, 1, 1, 0, 0, 0)),
            )
            .unwrap();
        let tree = cred.to_xml();
        let via_binary = decode_element(&encode_element(&tree)).expect("binary roundtrip");
        let via_xml = trust_vo_xmldoc::parse(&trust_vo_xmldoc::to_string(&tree)).unwrap();
        prop_assert_eq!(&via_binary, &via_xml);
        let back_b = Credential::from_xml(&via_binary).unwrap();
        let back_x = Credential::from_xml(&via_xml).unwrap();
        prop_assert_eq!(&back_b, &cred);
        prop_assert_eq!(back_b, back_x);
    }

    /// Disclosure policies: same differential, over the policy XML schema.
    #[test]
    fn policy_binary_matches_xml_oracle(
        id in arb_name(),
        service in arb_name(),
        types in proptest::collection::vec(arb_name(), 1..4),
    ) {
        let policy = DisclosurePolicy::rule(
            id,
            Resource::service(service),
            types.into_iter().map(Term::of_type).collect(),
        );
        let tree = policy_to_xml(&policy);
        let via_binary = decode_element(&encode_element(&tree)).expect("binary roundtrip");
        let via_xml = trust_vo_xmldoc::parse(&trust_vo_xmldoc::to_string(&tree)).unwrap();
        prop_assert_eq!(&via_binary, &via_xml);
        let back_b = policy_from_xml(&via_binary).unwrap();
        let back_x = policy_from_xml(&via_xml).unwrap();
        prop_assert_eq!(&back_b, &policy);
        prop_assert_eq!(back_b, back_x);
    }

    /// Torn frames: any prefix of a framed envelope stream never panics
    /// the scanner and yields exactly the records whose frames fit.
    #[test]
    fn torn_frame_stream_decodes_longest_clean_prefix(
        envs in proptest::collection::vec(arb_envelope(), 1..5),
        cut_ratio in 0u64..=1024,
    ) {
        let mut stream = Vec::new();
        let mut ends = Vec::new();
        for env in &envs {
            stream.extend_from_slice(&wire::frame_envelope(env));
            ends.push(stream.len());
        }
        let cut = (stream.len() as u64 * cut_ratio / 1024) as usize;
        let torn = &stream[..cut.min(stream.len())];
        let outcome = trust_vo_journal::frame::scan(torn);
        // Exactly the whole frames that fit before the cut survive…
        let whole = ends.iter().filter(|&&e| e <= torn.len()).count();
        prop_assert_eq!(outcome.payloads.len(), whole);
        prop_assert_eq!(outcome.clean_len, ends[..whole].last().copied().unwrap_or(0));
        // …and each surviving payload decodes to its original envelope.
        for (payload, env) in outcome.payloads.iter().zip(&envs) {
            let decoded = wire::decode_envelope(payload);
            prop_assert_eq!(decoded.as_ref(), Some(env));
        }
    }

    /// Arbitrary byte soup through the unframers never panics.
    #[test]
    fn garbage_frames_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::unframe_envelope(&bytes);
        let _ = wire::unframe_reply(&bytes);
        let _ = wire::decode_envelope(&bytes);
        let _ = wire::decode_reply(&bytes);
    }
}

/// Non-proptest sanity: the differential corpus includes an Arc-shared
/// body — encode-once means framing twice reuses one cached encoding.
#[test]
fn framing_reuses_the_cached_encoding() {
    let env = Envelope::request("PolicyExchange", Element::new("big"))
        .with_negotiation(1)
        .with_idempotency(2);
    let first = env.wire_bytes().clone();
    let again = env.wire_bytes().clone();
    assert!(Arc::ptr_eq(&first, &again));
    assert_eq!(wire::frame_envelope(&env), wire::frame_envelope(&env));
}
